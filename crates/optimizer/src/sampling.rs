//! Sampling-based cardinality estimation for rank-aware operators
//! (Section 5.2 of the paper).
//!
//! Cardinalities of rank-aware operators cannot be propagated bottom-up: how
//! many tuples an operator consumes and produces depends on how many results
//! are requested *of it*, which is unknown for a subplan during enumeration.
//! The paper's estimator works around this:
//!
//! 1. draw an `s%` sample of every table and evaluate all predicates on it;
//! 2. run the original query on the samples (any conventional plan) asking
//!    for `k' = ⌈k · s%⌉` results; the score `x'` of the `k'`-th answer
//!    estimates `x`, the score of the `k`-th answer over the full data;
//! 3. to estimate a subplan's output cardinality, execute it over the samples
//!    and count the outputs `u` whose upper-bound score is at least `x'`
//!    (tuples below `x'` will never need to leave the operator), then scale:
//!    * scan: `card = u / s%`;
//!    * unary operator over subplan `P'`: `card = u · card(P') / card_s(P')`;
//!    * binary operator over `P1`, `P2`:
//!      `card = u · (card(P1)/card_s(P1) + card(P2)/card_s(P2)) / 2`,
//!
//!    where `card_s` is the subplan's output cardinality observed during the
//!    sample execution and `card` its previously estimated cardinality.

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::Mutex;
use ranksql_algebra::{LogicalPlan, RankQuery};
use ranksql_common::{RankSqlError, Result, Score};
use ranksql_executor::{execute_plan, oracle_top_k};
use ranksql_expr::{BoolExpr, CompareOp, RankingContext, ScalarExpr};
use ranksql_storage::{sample_fraction, Catalog};

/// Smoothing count used when a sample execution produces zero tuples, so that
/// downstream costs never divide by zero and empty-looking subplans keep a
/// small non-zero cardinality (random sampling over joins is known to
/// under-produce; see the paper's discussion of [CMN99]).
const ZERO_SMOOTHING: f64 = 0.5;

/// The sampling-based estimator, built once per query.
pub struct SamplingEstimator {
    /// Catalog holding the per-table samples under the original table names.
    sample_catalog: Catalog,
    /// The original (full) catalog, for base-table row counts.
    full_catalog_rows: HashMap<String, f64>,
    /// Per-table sampling ratio actually achieved (sample rows / full rows).
    ratios: HashMap<String, f64>,
    /// Estimate of the k-th result score over the full data.
    x_threshold: Score,
    /// Ranking context used for sample executions (shares the query's
    /// predicates but not its evaluation counters).
    est_ctx: Arc<RankingContext>,
    /// Memoised estimates keyed by the plan's structural debug string.
    memo: Mutex<HashMap<String, f64>>,
    /// The nominal sampling ratio requested.
    nominal_ratio: f64,
    /// Qualified-column-name → sketch NDV, snapshotted from each query
    /// table's statistics catalog.  Consulted when a sample execution of a
    /// join produces *no* qualifying output (random sampling over joins
    /// under-produces, [CMN99]): the analytic `|L|·|R| / max(ndv)` estimate
    /// from the sketches is sharper there than scaled zero-smoothing.
    column_ndv: HashMap<String, f64>,
}

impl SamplingEstimator {
    /// Draws samples, estimates `x'` and prepares the estimator.
    pub fn build(
        query: &RankQuery,
        catalog: &Catalog,
        sample_ratio: f64,
        seed: u64,
    ) -> Result<Self> {
        if !(sample_ratio > 0.0 && sample_ratio <= 1.0) {
            return Err(RankSqlError::Optimizer(format!(
                "sample ratio must be in (0, 1], got {sample_ratio}"
            )));
        }
        let sample_catalog = Catalog::new();
        let mut full_catalog_rows = HashMap::new();
        let mut ratios = HashMap::new();
        let mut column_ndv = HashMap::new();
        for name in &query.tables {
            let table = catalog.table(name)?;
            for summary in &table.stats_catalog().columns {
                column_ndv.insert(summary.name.clone(), summary.ndv() as f64);
            }
            let sample = sample_fraction(&table, sample_ratio, seed);
            let full_rows = table.row_count() as f64;
            let achieved = if full_rows > 0.0 {
                sample.len() as f64 / full_rows
            } else {
                sample_ratio
            };
            // Re-create the table (same name/schema) holding only the sample.
            let schema_unqualified = ranksql_common::Schema::new(
                table
                    .schema()
                    .fields()
                    .iter()
                    .map(|f| ranksql_common::Field::new(f.name.clone(), f.data_type))
                    .collect(),
            );
            let sample_table = sample_catalog.create_table(name, schema_unqualified)?;
            for t in &sample {
                sample_table.insert(t.values().to_vec())?;
            }
            full_catalog_rows.insert(name.clone(), full_rows);
            ratios.insert(name.clone(), achieved.max(f64::EPSILON));
        }

        // Estimate x: run the query over the samples asking for k' results.
        let k_prime = ((query.k as f64 * sample_ratio).ceil() as usize).max(1);
        let mut sample_query = query.clone();
        sample_query.k = k_prime;
        let sample_top = oracle_top_k(&sample_query, &sample_catalog)?;
        let x_threshold = match sample_top.last() {
            Some(t) => query.ranking.upper_bound(&t.state),
            // The sample produced no qualifying answer at all: every tuple
            // may matter, so the threshold is -∞ (no pruning).
            None => Score::new(f64::NEG_INFINITY),
        };

        // A private ranking context so sample executions do not pollute the
        // query's evaluation counters.
        let est_ctx = RankingContext::new(
            query.ranking.predicates().to_vec(),
            query.ranking.scoring().clone(),
        );

        Ok(SamplingEstimator {
            sample_catalog,
            full_catalog_rows,
            ratios,
            x_threshold,
            est_ctx,
            memo: Mutex::new(HashMap::new()),
            nominal_ratio: sample_ratio,
            column_ndv,
        })
    }

    /// The estimated score of the k-th answer (`x'`).
    pub fn x_threshold(&self) -> Score {
        self.x_threshold
    }

    /// The catalog of samples (one table per query table, same names).
    pub fn sample_catalog(&self) -> &Catalog {
        &self.sample_catalog
    }

    /// Full row count of the base table scanned by a scan node.
    pub fn table_cardinality(&self, plan: &LogicalPlan) -> Result<f64> {
        match plan {
            LogicalPlan::Scan { table, .. } => {
                self.full_catalog_rows.get(table).copied().ok_or_else(|| {
                    RankSqlError::Optimizer(format!("no cardinality for table `{table}`"))
                })
            }
            _ => Err(RankSqlError::Optimizer(
                "table_cardinality expects a scan node".into(),
            )),
        }
    }

    fn ratio_for(&self, table: &str) -> f64 {
        self.ratios
            .get(table)
            .copied()
            .unwrap_or(self.nominal_ratio)
    }

    /// Executes `plan` over the samples and returns the per-operator output
    /// cardinalities (post-order, matching the executor's metric
    /// registration) together with the root outputs above the threshold.
    fn run_on_sample(&self, plan: &LogicalPlan) -> Result<(Vec<u64>, f64)> {
        let result = execute_plan(plan, &self.sample_catalog, &self.est_ctx)?;
        let u = result
            .tuples
            .iter()
            .filter(|t| self.est_ctx.upper_bound(&t.state) >= self.x_threshold)
            .count() as f64;
        let cards: Vec<u64> = result
            .metrics
            .snapshot()
            .iter()
            .map(|m| m.tuples_out())
            .collect();
        Ok((cards, u))
    }

    /// Estimates the output cardinality of `plan` over the full data.
    pub fn estimate_cardinality(&self, plan: &LogicalPlan) -> Result<f64> {
        let key = format!("{plan:?}");
        if let Some(v) = self.memo.lock().get(&key) {
            return Ok(*v);
        }
        let estimate = self.estimate_uncached(plan)?;
        self.memo.lock().insert(key, estimate);
        Ok(estimate)
    }

    fn estimate_uncached(&self, plan: &LogicalPlan) -> Result<f64> {
        let (sample_cards, u) = self.run_on_sample(plan)?;
        let estimate = match plan {
            LogicalPlan::Scan { table, .. } => u.max(ZERO_SMOOTHING) / self.ratio_for(table),
            // Unary operators: scale by the input subplan's estimated-to-
            // sample cardinality ratio.
            LogicalPlan::Select { input, .. }
            | LogicalPlan::Project { input, .. }
            | LogicalPlan::Rank { input, .. }
            | LogicalPlan::Sort { input, .. }
            | LogicalPlan::Limit { input, .. } => {
                let child_est = self.estimate_cardinality(input)?;
                let child_sample = sample_cards
                    .get(input.node_count() - 1)
                    .copied()
                    .unwrap_or(0) as f64;
                let scale = child_est / child_sample.max(ZERO_SMOOTHING);
                let scaled = u.max(ZERO_SMOOTHING) * scale;
                // A limit caps the true cardinality at k.
                if let LogicalPlan::Limit { k, .. } = plan {
                    scaled.min(*k as f64)
                } else {
                    scaled
                }
            }
            LogicalPlan::Join { left, right, .. } | LogicalPlan::SetOp { left, right, .. } => {
                let left_est = self.estimate_cardinality(left)?;
                let right_est = self.estimate_cardinality(right)?;
                // A join whose sample execution produced no qualifying
                // output gives the scaling rule nothing to work with; the
                // sketch-NDV analytic estimate is sharper than smoothing.
                if u == 0.0 {
                    if let LogicalPlan::Join {
                        condition: Some(cond),
                        ..
                    } = plan
                    {
                        if let Some(sel) = self.equi_join_selectivity(cond) {
                            return Ok((left_est * right_est * sel).max(0.0));
                        }
                    }
                }
                let left_sample = sample_cards
                    .get(left.node_count() - 1)
                    .copied()
                    .unwrap_or(0) as f64;
                let right_sample = sample_cards
                    .get(left.node_count() + right.node_count() - 1)
                    .copied()
                    .unwrap_or(0) as f64;
                let scale = (left_est / left_sample.max(ZERO_SMOOTHING)
                    + right_est / right_sample.max(ZERO_SMOOTHING))
                    / 2.0;
                u.max(ZERO_SMOOTHING) * scale
            }
        };
        Ok(estimate.max(0.0))
    }

    /// The analytic selectivity of a conjunction of column-equality
    /// predicates, `Π 1 / max(ndv_left, ndv_right)` with sketch NDVs from
    /// the statistics catalog; `None` when the condition contains anything
    /// the sketches cannot analyse.
    fn equi_join_selectivity(&self, cond: &BoolExpr) -> Option<f64> {
        match cond {
            BoolExpr::And(l, r) => {
                Some(self.equi_join_selectivity(l)? * self.equi_join_selectivity(r)?)
            }
            BoolExpr::Compare {
                op: CompareOp::Eq,
                left: ScalarExpr::Column(l),
                right: ScalarExpr::Column(r),
            } => {
                let ndv = |c: &ranksql_expr::ColumnRef| {
                    let key = match &c.relation {
                        Some(rel) => format!("{rel}.{}", c.name),
                        None => c.name.clone(),
                    };
                    self.column_ndv.get(&key).copied().or_else(|| {
                        let suffix = format!(".{}", c.name);
                        self.column_ndv
                            .iter()
                            .find(|(name, _)| *name == &c.name || name.ends_with(&suffix))
                            .map(|(_, v)| *v)
                    })
                };
                let d = ndv(l)?.max(ndv(r)?).max(1.0);
                Some(1.0 / d)
            }
            _ => None,
        }
    }

    /// Estimated output cardinality of every operator in `plan`, post-order
    /// (the same order in which the executor registers operator metrics).
    /// This is the estimated series of the Figure 13 experiment.
    pub fn estimate_per_operator(&self, plan: &LogicalPlan) -> Result<Vec<(String, f64)>> {
        let mut out = Vec::new();
        self.walk_estimates(plan, &mut out)?;
        Ok(out)
    }

    fn walk_estimates(&self, plan: &LogicalPlan, out: &mut Vec<(String, f64)>) -> Result<()> {
        for child in plan.children() {
            self.walk_estimates(child, out)?;
        }
        let est = self.estimate_cardinality(plan)?;
        out.push((plan.node_label(Some(&self.est_ctx)), est));
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ranksql_algebra::JoinAlgorithm;
    use ranksql_common::{DataType, Field, Schema, Value};
    use ranksql_expr::{BoolExpr, RankPredicate, ScoringFunction};

    /// Two joinable tables with ranking predicates and a boolean filter.
    fn setup(rows: usize) -> (Catalog, RankQuery) {
        let cat = Catalog::new();
        let a = cat
            .create_table(
                "A",
                Schema::new(vec![
                    Field::new("jc", DataType::Int64),
                    Field::new("p1", DataType::Float64),
                    Field::new("b", DataType::Bool),
                ]),
            )
            .unwrap();
        let b = cat
            .create_table(
                "B",
                Schema::new(vec![
                    Field::new("jc", DataType::Int64),
                    Field::new("p2", DataType::Float64),
                ]),
            )
            .unwrap();
        for i in 0..rows {
            a.insert(vec![
                Value::from((i % 50) as i64),
                Value::from(((i * 37) % 1000) as f64 / 1000.0),
                Value::from(i % 5 != 0),
            ])
            .unwrap();
            b.insert(vec![
                Value::from((i % 50) as i64),
                Value::from(((i * 61) % 1000) as f64 / 1000.0),
            ])
            .unwrap();
        }
        let ranking = RankingContext::new(
            vec![
                RankPredicate::attribute("p1", "A.p1"),
                RankPredicate::attribute("p2", "B.p2"),
            ],
            ScoringFunction::Sum,
        );
        let query = RankQuery::new(
            vec!["A".into(), "B".into()],
            vec![
                BoolExpr::col_eq_col("A.jc", "B.jc"),
                BoolExpr::column_is_true("A.b"),
            ],
            ranking,
            10,
        );
        (cat, query)
    }

    #[test]
    fn build_rejects_bad_ratio() {
        let (cat, query) = setup(100);
        assert!(SamplingEstimator::build(&query, &cat, 0.0, 1).is_err());
        assert!(SamplingEstimator::build(&query, &cat, 1.5, 1).is_err());
        assert!(SamplingEstimator::build(&query, &cat, 0.5, 1).is_ok());
    }

    #[test]
    fn threshold_is_a_plausible_score() {
        let (cat, query) = setup(2000);
        let est = SamplingEstimator::build(&query, &cat, 0.05, 7).unwrap();
        let x = est.x_threshold().value();
        assert!(
            x > 0.0 && x <= 2.0,
            "x' = {x} outside the feasible score range"
        );
    }

    #[test]
    fn seq_scan_estimate_recovers_table_size() {
        let (cat, query) = setup(1000);
        let est = SamplingEstimator::build(&query, &cat, 0.1, 7).unwrap();
        let a = cat.table("A").unwrap();
        let scan = LogicalPlan::scan(&a);
        let card = est.estimate_cardinality(&scan).unwrap();
        assert!(
            (card - 1000.0).abs() < 1.0,
            "sequential scan estimate {card} should equal the table size"
        );
        assert_eq!(est.table_cardinality(&scan).unwrap(), 1000.0);
    }

    #[test]
    fn selection_estimate_tracks_selectivity() {
        let (cat, query) = setup(2000);
        let est = SamplingEstimator::build(&query, &cat, 0.1, 3).unwrap();
        let a = cat.table("A").unwrap();
        // A.b is true for 80% of rows.
        let plan = LogicalPlan::scan(&a).select(BoolExpr::column_is_true("A.b"));
        let card = est.estimate_cardinality(&plan).unwrap();
        assert!(
            (card - 1600.0).abs() < 400.0,
            "selection estimate {card} too far from the true 1600"
        );
    }

    #[test]
    fn rank_operator_estimate_is_k_aware() {
        let (cat, query) = setup(2000);
        let est = SamplingEstimator::build(&query, &cat, 0.1, 3).unwrap();
        let a = cat.table("A").unwrap();
        // A rank-scan feeding µ: only tuples that can still reach the top-k
        // threshold are counted, so the estimate must be (much) smaller than
        // the table.
        let plan = LogicalPlan::rank_scan(&a, 0);
        let card = est.estimate_cardinality(&plan).unwrap();
        assert!(
            card < 2000.0,
            "rank-scan estimate {card} should be below the table size"
        );
        assert!(card > 0.0);
    }

    #[test]
    fn join_estimate_combines_sides() {
        let (cat, query) = setup(1500);
        let est = SamplingEstimator::build(&query, &cat, 0.2, 11).unwrap();
        let a = cat.table("A").unwrap();
        let b = cat.table("B").unwrap();
        let plan = LogicalPlan::scan(&a).join(
            LogicalPlan::scan(&b),
            Some(BoolExpr::col_eq_col("A.jc", "B.jc")),
            JoinAlgorithm::Hash,
        );
        let card = est.estimate_cardinality(&plan).unwrap();
        // True cardinality: 1500 * 1500 / 50 = 45_000.
        assert!(card > 1_000.0, "join estimate {card} unreasonably small");
        let per_op = est.estimate_per_operator(&plan).unwrap();
        assert_eq!(per_op.len(), 3);
        assert!(per_op[2].0.contains("HashJoin"));
    }

    #[test]
    fn blind_sample_join_falls_back_to_sketch_ndv_estimate() {
        // A key–key join (1000 distinct on both sides, B stored in reverse
        // key order): a 0.4 % sample (4 rows per side) almost surely holds
        // no common key, so the sample execution of the join produces no
        // qualifying output.  The estimator must then use the analytic
        // sketch-NDV form |A|·|B| / max(ndv) = 1000 instead of scaled
        // zero-smoothing (which would claim ~125 for an arbitrary join).
        let cat = Catalog::new();
        let a = cat
            .create_table(
                "A",
                Schema::new(vec![
                    Field::new("jc", DataType::Int64),
                    Field::new("p1", DataType::Float64),
                ]),
            )
            .unwrap();
        let b = cat
            .create_table(
                "B",
                Schema::new(vec![
                    Field::new("jc", DataType::Int64),
                    Field::new("p2", DataType::Float64),
                ]),
            )
            .unwrap();
        for i in 0..1000i64 {
            a.insert(vec![Value::from(i), Value::from((i % 100) as f64 / 100.0)])
                .unwrap();
            b.insert(vec![
                Value::from(999 - i),
                Value::from(((i * 7) % 100) as f64 / 100.0),
            ])
            .unwrap();
        }
        let ranking = RankingContext::new(
            vec![
                RankPredicate::attribute("p1", "A.p1"),
                RankPredicate::attribute("p2", "B.p2"),
            ],
            ScoringFunction::Sum,
        );
        let query = RankQuery::new(
            vec!["A".into(), "B".into()],
            vec![BoolExpr::col_eq_col("A.jc", "B.jc")],
            ranking,
            10,
        );
        let est = SamplingEstimator::build(&query, &cat, 0.004, 5).unwrap();
        let plan = LogicalPlan::scan(&a).join(
            LogicalPlan::scan(&b),
            Some(BoolExpr::col_eq_col("A.jc", "B.jc")),
            JoinAlgorithm::Hash,
        );
        let card = est.estimate_cardinality(&plan).unwrap();
        // The true cardinality is 1000 (every key matches exactly once).
        assert!(
            (card - 1000.0).abs() < 1.0,
            "join estimate {card} should hit the analytic 1000"
        );
    }

    #[test]
    fn estimates_are_memoised() {
        let (cat, query) = setup(500);
        let est = SamplingEstimator::build(&query, &cat, 0.1, 3).unwrap();
        let a = cat.table("A").unwrap();
        let plan = LogicalPlan::scan(&a).select(BoolExpr::column_is_true("A.b"));
        let first = est.estimate_cardinality(&plan).unwrap();
        let second = est.estimate_cardinality(&plan).unwrap();
        assert_eq!(first, second);
    }
}
