//! The ranking-blind System-R baseline: join-order enumeration only, with a
//! blocking sort and top-k limit glued on top — the only plan shape a
//! traditional optimizer can produce for a ranking query (Section 2.2).

use std::collections::HashMap;

use ranksql_algebra::{JoinAlgorithm, LogicalPlan, RankQuery};
use ranksql_common::{BitSet64, RankSqlError, Result};
use ranksql_storage::Catalog;

use crate::cost::{Cost, CostModel};
use crate::enumerate::EnumerationStats;
use crate::sampling::SamplingEstimator;
use crate::OptimizedPlan;

/// Optimizes a query with the traditional (membership-only) strategy:
/// Selinger-style join order enumeration over table subsets, selections
/// pushed to the scans, then `Sort` over the full scoring function and
/// `Limit k` at the root.
pub fn optimize_traditional(
    query: &RankQuery,
    catalog: &Catalog,
    estimator: &SamplingEstimator,
    cost_model: &CostModel,
) -> Result<OptimizedPlan> {
    let h = query.tables.len();
    if h == 0 {
        return Err(RankSqlError::Optimizer("query has no tables".into()));
    }
    let mut stats = EnumerationStats::default();
    let mut memo: HashMap<u64, (LogicalPlan, Cost)> = HashMap::new();

    // Base case: single-table access paths with selections pushed down.
    for (ti, name) in query.tables.iter().enumerate() {
        let table = catalog.table(name)?;
        let sr = BitSet64::singleton(ti);
        let mut plan = LogicalPlan::scan(&table);
        if let Some(filter) = ranksql_expr::BoolExpr::conjoin(query.bool_predicates_on(sr)?) {
            plan = plan.select(filter);
        }
        let (cost, _) = cost_model.cost_plan(&plan, &query.ranking, estimator)?;
        stats.plans_considered += 1;
        memo.insert(sr.bits(), (plan, cost));
    }

    // Join enumeration over subset sizes.
    let all = BitSet64::all(h);
    for size in 2..=h {
        for sr in all.subsets().filter(|s| s.len() == size) {
            let mut best: Option<(LogicalPlan, Cost)> = None;
            for sr1 in sr.subsets() {
                if sr1.is_empty() || sr1 == sr {
                    continue;
                }
                let sr2 = sr.difference(sr1);
                let (Some((left, _)), Some((right, _))) =
                    (memo.get(&sr1.bits()), memo.get(&sr2.bits()))
                else {
                    continue;
                };
                let join_preds = query.join_predicates_between(sr1, sr2)?;
                let condition = ranksql_expr::BoolExpr::conjoin(join_preds);
                // Avoid Cartesian products unless the subset is disconnected.
                if condition.is_none() && size > 1 {
                    let connected_split_exists =
                        sr.subsets().filter(|s| !s.is_empty() && *s != sr).any(|s| {
                            query
                                .join_predicates_between(s, sr.difference(s))
                                .map(|p| !p.is_empty())
                                .unwrap_or(false)
                        });
                    if connected_split_exists {
                        continue;
                    }
                }
                let algorithms: &[JoinAlgorithm] = if condition.is_some() {
                    &[
                        JoinAlgorithm::Hash,
                        JoinAlgorithm::SortMerge,
                        JoinAlgorithm::NestedLoop,
                    ]
                } else {
                    &[JoinAlgorithm::NestedLoop]
                };
                for &alg in algorithms {
                    // Hash / sort-merge need an equi-key; the executor rejects
                    // them otherwise, so skip rather than fail.
                    if matches!(alg, JoinAlgorithm::Hash | JoinAlgorithm::SortMerge) {
                        let has_equi = condition
                            .as_ref()
                            .map(|c| {
                                c.split_conjuncts().iter().any(|cj| {
                                    matches!(
                                        cj,
                                        ranksql_expr::BoolExpr::Compare {
                                            op: ranksql_expr::CompareOp::Eq,
                                            left: ranksql_expr::ScalarExpr::Column(_),
                                            right: ranksql_expr::ScalarExpr::Column(_),
                                        }
                                    )
                                })
                            })
                            .unwrap_or(false);
                        if !has_equi {
                            continue;
                        }
                    }
                    let plan = left.clone().join(right.clone(), condition.clone(), alg);
                    let Ok((cost, _)) = cost_model.cost_plan(&plan, &query.ranking, estimator)
                    else {
                        continue;
                    };
                    stats.plans_considered += 1;
                    if best.as_ref().map(|(_, c)| cost < *c).unwrap_or(true) {
                        best = Some((plan, cost));
                    }
                }
            }
            if let Some(b) = best {
                memo.insert(sr.bits(), b);
            }
        }
    }
    stats.signatures_kept = memo.len();

    let (join_plan, _) = memo
        .remove(&all.bits())
        .ok_or_else(|| RankSqlError::Optimizer("no traditional plan found".into()))?;

    let mut plan = join_plan;
    if query.num_rank_predicates() > 0 {
        plan = plan.sort(query.all_rank_predicates());
    }
    plan = plan.limit(query.k);
    if let Some(cols) = &query.projection {
        plan = plan.project(cols.clone());
    }
    let (cost, card) = cost_model.cost_plan(&plan, &query.ranking, estimator)?;
    let physical =
        crate::lower::lower_with_estimates(&plan, &query.ranking, estimator, cost_model)?;
    Ok(OptimizedPlan {
        plan,
        physical,
        cost,
        estimated_cardinality: card,
        stats,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ranksql_common::{DataType, Field, Schema, Value};
    use ranksql_expr::{BoolExpr, RankPredicate, RankingContext, ScoringFunction};

    fn setup() -> (Catalog, RankQuery) {
        let cat = Catalog::new();
        for (name, pcol) in [("A", "p1"), ("B", "p2"), ("C", "p3")] {
            let t = cat
                .create_table(
                    name,
                    Schema::new(vec![
                        Field::new("jc", DataType::Int64),
                        Field::new(pcol, DataType::Float64),
                    ]),
                )
                .unwrap();
            for i in 0..200 {
                t.insert(vec![
                    Value::from((i % 10) as i64),
                    Value::from(((i * 17) % 100) as f64 / 100.0),
                ])
                .unwrap();
            }
        }
        let ranking = RankingContext::new(
            vec![
                RankPredicate::attribute("p1", "A.p1"),
                RankPredicate::attribute("p2", "B.p2"),
                RankPredicate::attribute("p3", "C.p3"),
            ],
            ScoringFunction::Sum,
        );
        let query = RankQuery::new(
            vec!["A".into(), "B".into(), "C".into()],
            vec![
                BoolExpr::col_eq_col("A.jc", "B.jc"),
                BoolExpr::col_eq_col("B.jc", "C.jc"),
            ],
            ranking,
            5,
        );
        (cat, query)
    }

    #[test]
    fn traditional_plan_is_materialise_then_sort() {
        let (cat, query) = setup();
        let est = SamplingEstimator::build(&query, &cat, 0.1, 1).unwrap();
        let model = CostModel::default();
        let opt = optimize_traditional(&query, &cat, &est, &model).unwrap();
        assert!(opt.plan.has_blocking_sort());
        assert_eq!(opt.plan.rank_operator_count(), 0);
        assert_eq!(opt.plan.relations().len(), 3);
        assert!(opt.cost.is_finite());
        assert!(opt.stats.plans_considered > 3);
    }

    #[test]
    fn traditional_plan_returns_correct_results() {
        let (cat, query) = setup();
        let est = SamplingEstimator::build(&query, &cat, 0.2, 1).unwrap();
        let model = CostModel::default();
        let opt = optimize_traditional(&query, &cat, &est, &model).unwrap();
        let result = ranksql_executor::execute_query_plan(&query, &opt.plan, &cat).unwrap();
        let oracle = ranksql_executor::oracle_top_k(&query, &cat).unwrap();
        let s = |ts: &[ranksql_expr::RankedTuple]| -> Vec<f64> {
            ts.iter()
                .map(|t| query.ranking.upper_bound(&t.state).value())
                .collect()
        };
        assert_eq!(s(&result.tuples), s(&oracle));
    }
}
