//! The parallelization pass: lowering serial physical plans onto the
//! morsel-driven parallel execution engine.
//!
//! Given a lowered [`PhysicalPlan`] and a worker-thread budget, this pass
//! rewrites **parallel-safe subtrees** to run under an
//! [`Exchange`](PhysicalOp::Exchange):
//!
//! * a *spine* of `SeqScan` → σ/π → hash-join probes is morsel-partitioned
//!   by wrapping the driving scan in a
//!   [`Repartition`](PhysicalOp::Repartition) marker;
//! * a blocking `Sort` over a spine becomes a per-partition sort whose runs
//!   an ordered exchange k-way merges (classic parallel sort-merge);
//! * a fused `SortLimit` over a spine becomes a per-partition top-k whose
//!   merged stream the exchange re-limits to the global `k`;
//! * a hash join's *build* side that is itself a spine is wrapped in a
//!   nested concat-exchange, so the build scan is partitioned too.
//!
//! Exchanges are inserted only where the subtree is fully drained anyway
//! (under τ / τ+λ) — rank-aware operators (µ, MPro, HRJN/NRJN, rank-scans)
//! are never placed inside an exchange and keep their incremental
//! single-threaded top-k semantics above it.  The rewrite never changes
//! results: exchange output is deterministic and byte-identical to serial
//! execution for any thread count (`tests/parallel_equivalence.rs` checks
//! exactly this).

use ranksql_algebra::{ExchangeMerge, PhysicalOp, PhysicalPlan};
use ranksql_common::Cost;

/// Abstract cost units charged per tuple moved through an exchange merge
/// (slot write + heap step); the bulk of the subtree's work is divided by
/// the thread count.
const EXCHANGE_TUPLE_COST: f64 = 0.01;

/// Rewrites `plan` to run its parallel-safe subtrees across `threads`
/// workers.  With `threads <= 1` — or on a plan that already contains an
/// exchange — the plan is returned unchanged, so the pass is idempotent and
/// serial configurations pay nothing.
pub fn parallelize(plan: PhysicalPlan, threads: usize) -> PhysicalPlan {
    if threads <= 1 || plan.contains_exchange() {
        return plan;
    }
    rewrite(plan, threads)
}

/// The part of a spine's cumulative cost that runs exactly once, serially,
/// no matter how many workers probe it: the build sides of its hash and
/// nested-loops joins (a nested build-side exchange already carries its own
/// parallel-adjusted cost and is included as-is).
fn pinned_serial_cost(plan: &PhysicalPlan) -> f64 {
    match &plan.op {
        PhysicalOp::Filter { input, .. }
        | PhysicalOp::Project { input, .. }
        | PhysicalOp::Sort { input, .. }
        | PhysicalOp::SortLimit { input, .. } => pinned_serial_cost(input),
        PhysicalOp::HashJoin { left, right, .. }
        | PhysicalOp::NestedLoopsJoin { left, right, .. } => {
            pinned_serial_cost(left) + right.estimated_cost.value()
        }
        _ => 0.0,
    }
}

/// Annotates an exchange over `input`: the per-morsel work is split across
/// the workers, the once-only build work stays serial, and every merged
/// tuple pays a small reassembly surcharge.
fn exchange_over(input: PhysicalPlan, merge: ExchangeMerge, threads: usize) -> PhysicalPlan {
    let rows = input.estimated_rows;
    let serial = pinned_serial_cost(&input);
    let scaled = (input.estimated_cost.value() - serial).max(0.0) / threads as f64;
    let cost = Cost(serial + scaled + rows * EXCHANGE_TUPLE_COST);
    PhysicalPlan {
        estimated_cost: cost,
        estimated_rows: rows,
        op: PhysicalOp::Exchange {
            input: Box::new(input),
            merge,
        },
    }
}

fn rewrite(plan: PhysicalPlan, threads: usize) -> PhysicalPlan {
    let old_children_cost: f64 = plan
        .children()
        .iter()
        .map(|c| c.estimated_cost.value())
        .sum();
    let PhysicalPlan {
        op,
        estimated_cost,
        estimated_rows,
    } = plan;
    // Rebuilds this node over its (possibly rewritten) children, keeping the
    // cumulative cost annotation coherent: whatever the children saved is
    // subtracted from this node's cumulative cost, so explain's root cost
    // reflects exchanges inserted anywhere in the tree.
    let annotated = move |op: PhysicalOp| {
        let rebuilt = PhysicalPlan {
            op,
            estimated_cost,
            estimated_rows,
        };
        let new_children_cost: f64 = rebuilt
            .children()
            .iter()
            .map(|c| c.estimated_cost.value())
            .sum();
        let saved = old_children_cost - new_children_cost;
        PhysicalPlan {
            estimated_cost: Cost((estimated_cost.value() - saved).max(0.0)),
            ..rebuilt
        }
    };
    match op {
        PhysicalOp::Sort { input, predicates } => {
            if let Some(spine) = spine_of(&input, threads) {
                let partial = annotated(PhysicalOp::Sort {
                    input: Box::new(spine),
                    predicates,
                });
                return exchange_over(partial, ExchangeMerge::Ordered { limit: None }, threads);
            }
            annotated(PhysicalOp::Sort {
                input: Box::new(rewrite(*input, threads)),
                predicates,
            })
        }
        PhysicalOp::SortLimit {
            input,
            predicates,
            k,
        } => {
            if let Some(spine) = spine_of(&input, threads) {
                let partial = annotated(PhysicalOp::SortLimit {
                    input: Box::new(spine),
                    predicates,
                    k,
                });
                return exchange_over(partial, ExchangeMerge::Ordered { limit: Some(k) }, threads);
            }
            annotated(PhysicalOp::SortLimit {
                input: Box::new(rewrite(*input, threads)),
                predicates,
                k,
            })
        }
        // Every other node keeps its shape; recurse into the children.
        PhysicalOp::Filter { input, predicate } => annotated(PhysicalOp::Filter {
            input: Box::new(rewrite(*input, threads)),
            predicate,
        }),
        PhysicalOp::Project { input, columns } => annotated(PhysicalOp::Project {
            input: Box::new(rewrite(*input, threads)),
            columns,
        }),
        PhysicalOp::RankMaterialize { input, predicate } => {
            annotated(PhysicalOp::RankMaterialize {
                input: Box::new(rewrite(*input, threads)),
                predicate,
            })
        }
        PhysicalOp::MproProbe { input, schedule } => annotated(PhysicalOp::MproProbe {
            input: Box::new(rewrite(*input, threads)),
            schedule,
        }),
        PhysicalOp::Limit { input, k } => annotated(PhysicalOp::Limit {
            input: Box::new(rewrite(*input, threads)),
            k,
        }),
        PhysicalOp::NestedLoopsJoin {
            left,
            right,
            condition,
        } => annotated(PhysicalOp::NestedLoopsJoin {
            left: Box::new(rewrite(*left, threads)),
            right: Box::new(rewrite(*right, threads)),
            condition,
        }),
        PhysicalOp::HashJoin {
            left,
            right,
            condition,
        } => annotated(PhysicalOp::HashJoin {
            left: Box::new(rewrite(*left, threads)),
            right: Box::new(rewrite(*right, threads)),
            condition,
        }),
        PhysicalOp::SortMergeJoin {
            left,
            right,
            condition,
        } => annotated(PhysicalOp::SortMergeJoin {
            left: Box::new(rewrite(*left, threads)),
            right: Box::new(rewrite(*right, threads)),
            condition,
        }),
        PhysicalOp::HashRankJoin {
            left,
            right,
            condition,
        } => annotated(PhysicalOp::HashRankJoin {
            left: Box::new(rewrite(*left, threads)),
            right: Box::new(rewrite(*right, threads)),
            condition,
        }),
        PhysicalOp::NestedLoopsRankJoin {
            left,
            right,
            condition,
        } => annotated(PhysicalOp::NestedLoopsRankJoin {
            left: Box::new(rewrite(*left, threads)),
            right: Box::new(rewrite(*right, threads)),
            condition,
        }),
        PhysicalOp::SetOp { kind, left, right } => annotated(PhysicalOp::SetOp {
            kind,
            left: Box::new(rewrite(*left, threads)),
            right: Box::new(rewrite(*right, threads)),
        }),
        // Leaves and already-parallel nodes are untouched.
        op @ (PhysicalOp::SeqScan { .. }
        | PhysicalOp::RankScan { .. }
        | PhysicalOp::AttributeIndexScan { .. }
        | PhysicalOp::Exchange { .. }
        | PhysicalOp::Repartition { .. }) => annotated(op),
    }
}

/// Rewrites a subtree into a morsel-partitionable spine — the driving
/// `SeqScan` wrapped in a `Repartition` marker — or `None` when the subtree
/// contains anything the exchange executor cannot run per-morsel.
fn spine_of(plan: &PhysicalPlan, threads: usize) -> Option<PhysicalPlan> {
    let annotated = |op| PhysicalPlan {
        op,
        estimated_cost: plan.estimated_cost,
        estimated_rows: plan.estimated_rows,
    };
    match &plan.op {
        PhysicalOp::SeqScan { .. } => Some(annotated(PhysicalOp::Repartition {
            input: Box::new(plan.clone()),
        })),
        PhysicalOp::Filter { input, predicate } => spine_of(input, threads).map(|s| {
            annotated(PhysicalOp::Filter {
                input: Box::new(s),
                predicate: predicate.clone(),
            })
        }),
        PhysicalOp::Project { input, columns } => spine_of(input, threads).map(|s| {
            annotated(PhysicalOp::Project {
                input: Box::new(s),
                columns: columns.clone(),
            })
        }),
        PhysicalOp::HashJoin {
            left,
            right,
            condition,
        } => {
            if right.is_rank_aware() || right.contains_exchange() {
                return None;
            }
            let probe = spine_of(left, threads)?;
            // The build side runs once; if it is itself a spine, a nested
            // concat-exchange partitions the build scan too.
            let build = match spine_of(right, threads) {
                Some(build_spine) => exchange_over(build_spine, ExchangeMerge::Concat, threads),
                None => right.as_ref().clone(),
            };
            Some(annotated(PhysicalOp::HashJoin {
                left: Box::new(probe),
                right: Box::new(build),
                condition: condition.clone(),
            }))
        }
        PhysicalOp::NestedLoopsJoin {
            left,
            right,
            condition,
        } => {
            if right.is_rank_aware() || right.contains_exchange() {
                return None;
            }
            let outer = spine_of(left, threads)?;
            let inner = match spine_of(right, threads) {
                Some(inner_spine) => exchange_over(inner_spine, ExchangeMerge::Concat, threads),
                None => right.as_ref().clone(),
            };
            Some(annotated(PhysicalOp::NestedLoopsJoin {
                left: Box::new(outer),
                right: Box::new(inner),
                condition: condition.clone(),
            }))
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ranksql_algebra::{JoinAlgorithm, LogicalPlan};
    use ranksql_common::{BitSet64, DataType, Field, Schema, Value};
    use ranksql_storage::{Table, TableBuilder};

    fn table(name: &str, id: u32) -> Table {
        let schema = Schema::new(vec![
            Field::new("a", DataType::Int64),
            Field::new("p", DataType::Float64),
        ])
        .qualify_all(name);
        TableBuilder::new(name, schema)
            .row(vec![Value::from(1), Value::from(0.5)])
            .build(id)
            .unwrap()
    }

    #[test]
    fn sort_limit_over_a_join_spine_is_parallelized() {
        let r = table("R", 0);
        let s = table("S", 1);
        let logical = LogicalPlan::scan(&r)
            .join(
                LogicalPlan::scan(&s),
                Some(ranksql_expr::BoolExpr::col_eq_col("R.a", "S.a")),
                JoinAlgorithm::Hash,
            )
            .sort(BitSet64::all(2))
            .limit(5);
        let physical = PhysicalPlan::from_logical(&logical).unwrap();
        let par = parallelize(physical.clone(), 4);
        let text = par.explain(None);
        assert!(text.contains("Exchange(merge; k=5)"), "{text}");
        assert!(text.contains("Repartition(morsels)"), "{text}");
        // The build side is partitioned through a nested concat exchange.
        assert!(text.contains("Exchange(concat)"), "{text}");
        // Idempotent: a second pass changes nothing.
        assert_eq!(parallelize(par.clone(), 4), par);
        // Serial thread budgets leave the plan untouched.
        assert_eq!(parallelize(physical.clone(), 1), physical);
    }

    #[test]
    fn rank_aware_subtrees_stay_serial() {
        let r = table("R", 0);
        let logical = LogicalPlan::rank_scan(&r, 0).limit(3);
        let physical = PhysicalPlan::from_logical(&logical).unwrap();
        let par = parallelize(physical.clone(), 8);
        assert_eq!(par, physical, "rank-scan pipelines must not be exchanged");
    }

    #[test]
    fn plain_sort_gets_an_ordered_merge_exchange_with_cost() {
        let r = table("R", 0);
        let logical = LogicalPlan::scan(&r).sort(BitSet64::singleton(0));
        let mut physical = PhysicalPlan::from_logical(&logical).unwrap();
        physical.estimated_cost = Cost(100.0);
        physical.estimated_rows = 50.0;
        let par = parallelize(physical, 4);
        assert!(matches!(
            par.op,
            PhysicalOp::Exchange {
                merge: ExchangeMerge::Ordered { limit: None },
                ..
            }
        ));
        // 100/4 + 50 * 0.01 = 25.5
        assert!((par.estimated_cost.value() - 25.5).abs() < 1e-9);
        assert_eq!(par.estimated_rows, 50.0);
    }
}
