//! The rank-aware query optimizer of RankSQL (Section 5).
//!
//! Three pieces make up the optimizer:
//!
//! * a **sampling-based cardinality estimator** ([`sampling`]) for rank-aware
//!   operators: a small per-table sample is drawn, the query is evaluated on
//!   the samples to estimate `x'` — the score of the `k'`-th answer — and a
//!   candidate subplan's output cardinality is obtained by executing it over
//!   the samples and scaling the number of outputs whose upper bound exceeds
//!   `x'` (Section 5.2);
//! * a **cost model** ([`cost`]) combining scan, predicate-evaluation, join
//!   and sort costs over the estimated cardinalities;
//! * the **two-dimensional dynamic-programming enumeration** ([`enumerate`]):
//!   subplan signatures are pairs `(SR, SP)` of the joined relations and the
//!   evaluated ranking predicates (Figure 8), optionally restricted by the
//!   left-deep and greedy rank-scheduling heuristics of Figure 10; a
//!   ranking-blind System-R style baseline ([`traditional`]) provides the
//!   materialise-then-sort comparison point.
//!
//! [`RankOptimizer`] ties the pieces together behind one entry point.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod cache;
pub mod columnar;
pub mod cost;
pub mod enumerate;
pub mod histogram;
pub mod lower;
pub mod parallel;
pub mod rulebased;
pub mod sampling;
pub mod traditional;

use std::sync::Arc;

use ranksql_algebra::{LogicalPlan, PhysicalPlan, RankQuery};
use ranksql_common::Result;
use ranksql_storage::Catalog;

pub use cache::normalized_cache_key;
pub use columnar::columnarize;
pub use cost::{Cost, CostModel};
pub use enumerate::{DpOptimizer, EnumerationStats};
pub use histogram::{sampled_statistics, HistogramEstimator, ScoreHistogram, StatsSource};
pub use lower::{fuse_mu_chains, lower_with_estimates, physical_estimates};
pub use parallel::parallelize;
pub use rulebased::{RuleBasedConfig, RuleBasedOptimizer};
pub use sampling::SamplingEstimator;
pub use traditional::optimize_traditional;

/// Which plan-search strategy to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OptimizerMode {
    /// Full two-dimensional dynamic programming over `(SR, SP)` signatures
    /// (Figure 8), including bushy join trees.
    RankAwareExhaustive,
    /// The DP restricted by the heuristics of Figure 10: left-deep join
    /// trees and greedy rank-metric scheduling of µ operators.
    RankAwareHeuristic,
    /// A Volcano/Cascades-style top-down search: the Figure 5 laws act as
    /// transformation rules and physical algorithm / access-path choices act
    /// as implementation rules, explored under a plan budget.
    RankAwareRuleBased,
    /// A ranking-blind System-R baseline: join order enumeration only, with a
    /// blocking sort and limit on top (the only plans a traditional engine
    /// can produce).
    Traditional,
}

/// Configuration of the optimizer.
#[derive(Debug, Clone)]
pub struct OptimizerConfig {
    /// Search strategy.
    pub mode: OptimizerMode,
    /// Sampling ratio for cardinality estimation (the paper uses 0.1 %).
    pub sample_ratio: f64,
    /// RNG seed for sampling (deterministic plans for a given seed).
    pub seed: u64,
    /// Whether to also cost the traditional materialise-then-sort plan and
    /// return it if it is cheaper (it can win when joins are very selective,
    /// cf. Figure 12(c)).
    pub compare_with_traditional: bool,
    /// Whether physical lowering fuses chains of two or more µ operators
    /// into one MPro minimal-probing operator (scheduled cheapest predicate
    /// first).  Off by default so the default plans mirror the paper's
    /// µ-chain execution model.
    pub fuse_mu_chains: bool,
}

impl Default for OptimizerConfig {
    fn default() -> Self {
        OptimizerConfig {
            mode: OptimizerMode::RankAwareHeuristic,
            sample_ratio: 0.01,
            seed: 0xC0FFEE,
            compare_with_traditional: true,
            fuse_mu_chains: false,
        }
    }
}

/// The outcome of optimization.
#[derive(Debug, Clone)]
pub struct OptimizedPlan {
    /// The chosen plan (already wrapped in the top-k limit).
    pub plan: LogicalPlan,
    /// The physical plan the executor will run, with per-node cost and
    /// cardinality estimates.
    pub physical: PhysicalPlan,
    /// Its estimated cost.
    pub cost: Cost,
    /// Estimated cardinality of the plan root before the limit.
    pub estimated_cardinality: f64,
    /// Search statistics (plans generated, signatures kept, ...).
    pub stats: EnumerationStats,
}

/// The rank-aware optimizer: builds the sampling estimator once per query and
/// runs the configured enumeration strategy.
pub struct RankOptimizer {
    config: OptimizerConfig,
}

impl RankOptimizer {
    /// Creates an optimizer with the given configuration.
    pub fn new(config: OptimizerConfig) -> Self {
        RankOptimizer { config }
    }

    /// Creates an optimizer with default configuration.
    pub fn with_defaults() -> Self {
        RankOptimizer::new(OptimizerConfig::default())
    }

    /// The configuration in use.
    pub fn config(&self) -> &OptimizerConfig {
        &self.config
    }

    /// Optimizes a query against a catalog.
    ///
    /// The returned plan is always serial; morsel-driven parallelization is
    /// a separate, explicit post-pass ([`parallelize`]) owned by whoever
    /// knows the runtime thread budget (e.g. `Database::plan`), so exactly
    /// one layer decides plan parallelism.
    pub fn optimize(&self, query: &RankQuery, catalog: &Catalog) -> Result<OptimizedPlan> {
        let mut best = self.search(query, catalog)?;
        if self.config.fuse_mu_chains {
            best.physical = lower::fuse_mu_chains(best.physical, &query.ranking);
        }
        Ok(best)
    }

    /// Runs the configured search strategy without post-lowering rewrites.
    fn search(&self, query: &RankQuery, catalog: &Catalog) -> Result<OptimizedPlan> {
        let estimator = Arc::new(SamplingEstimator::build(
            query,
            catalog,
            self.config.sample_ratio,
            self.config.seed,
        )?);
        let cost_model = CostModel::default();

        match self.config.mode {
            OptimizerMode::Traditional => {
                traditional::optimize_traditional(query, catalog, &estimator, &cost_model)
            }
            OptimizerMode::RankAwareRuleBased => {
                let rb = RuleBasedOptimizer::new(
                    query,
                    catalog,
                    Arc::clone(&estimator),
                    cost_model.clone(),
                );
                let mut best = rb.optimize()?;
                if self.config.compare_with_traditional {
                    let trad =
                        traditional::optimize_traditional(query, catalog, &estimator, &cost_model)?;
                    if trad.cost < best.cost {
                        let stats = best.stats;
                        best = trad;
                        best.stats = stats;
                    }
                }
                Ok(best)
            }
            OptimizerMode::RankAwareExhaustive | OptimizerMode::RankAwareHeuristic => {
                let heuristic = self.config.mode == OptimizerMode::RankAwareHeuristic;
                let dp = DpOptimizer::new(
                    query,
                    catalog,
                    Arc::clone(&estimator),
                    cost_model.clone(),
                    heuristic,
                );
                let mut best = dp.optimize()?;
                if self.config.compare_with_traditional {
                    let trad =
                        traditional::optimize_traditional(query, catalog, &estimator, &cost_model)?;
                    if trad.cost < best.cost {
                        let stats = best.stats;
                        best = trad;
                        best.stats = stats;
                    }
                }
                Ok(best)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ranksql_common::{DataType, Field, Schema, Value};
    use ranksql_executor::{execute_query_plan, oracle_top_k};
    use ranksql_expr::{BoolExpr, RankPredicate, RankingContext, ScoringFunction};

    fn setup(rows: usize) -> (Catalog, RankQuery) {
        let cat = Catalog::new();
        let a = cat
            .create_table(
                "A",
                Schema::new(vec![
                    Field::new("jc", DataType::Int64),
                    Field::new("p1", DataType::Float64),
                    Field::new("b", DataType::Bool),
                ]),
            )
            .unwrap();
        let b = cat
            .create_table(
                "B",
                Schema::new(vec![
                    Field::new("jc", DataType::Int64),
                    Field::new("p2", DataType::Float64),
                ]),
            )
            .unwrap();
        for i in 0..rows {
            a.insert(vec![
                Value::from((i % 23) as i64),
                Value::from(((i * 37) % 100) as f64 / 100.0),
                Value::from(i % 5 != 0),
            ])
            .unwrap();
            b.insert(vec![
                Value::from((i % 23) as i64),
                Value::from(((i * 61) % 100) as f64 / 100.0),
            ])
            .unwrap();
        }
        let ranking = RankingContext::new(
            vec![
                RankPredicate::attribute_with_cost("p1", "A.p1", 1),
                RankPredicate::attribute_with_cost("p2", "B.p2", 1),
            ],
            ScoringFunction::Sum,
        );
        let query = RankQuery::new(
            vec!["A".into(), "B".into()],
            vec![
                BoolExpr::col_eq_col("A.jc", "B.jc"),
                BoolExpr::column_is_true("A.b"),
            ],
            ranking,
            5,
        );
        (cat, query)
    }

    fn result_scores(query: &RankQuery, cat: &Catalog, plan: &LogicalPlan) -> Vec<f64> {
        execute_query_plan(query, plan, cat)
            .unwrap()
            .tuples
            .iter()
            .map(|t| query.ranking.upper_bound(&t.state).value())
            .collect()
    }

    #[test]
    fn all_modes_produce_plans_matching_the_oracle() {
        let (cat, query) = setup(300);
        let oracle: Vec<f64> = oracle_top_k(&query, &cat)
            .unwrap()
            .iter()
            .map(|t| query.ranking.upper_bound(&t.state).value())
            .collect();
        for mode in [
            OptimizerMode::Traditional,
            OptimizerMode::RankAwareExhaustive,
            OptimizerMode::RankAwareHeuristic,
        ] {
            let opt = RankOptimizer::new(OptimizerConfig {
                mode,
                sample_ratio: 0.1,
                ..OptimizerConfig::default()
            });
            let plan = opt.optimize(&query, &cat).unwrap();
            let scores = result_scores(&query, &cat, &plan.plan);
            assert_eq!(scores, oracle, "mode {mode:?} returned wrong top-k");
        }
    }

    #[test]
    fn rank_aware_optimizer_prefers_pipelined_plans_for_expensive_predicates() {
        let (cat, mut query) = setup(400);
        // Make the ranking predicates expensive so the materialise-then-sort
        // plan (which evaluates them on every join result) is clearly worse.
        query.ranking = RankingContext::new(
            vec![
                RankPredicate::attribute_with_cost("p1", "A.p1", 200),
                RankPredicate::attribute_with_cost("p2", "B.p2", 200),
            ],
            ScoringFunction::Sum,
        );
        let opt = RankOptimizer::new(OptimizerConfig {
            mode: OptimizerMode::RankAwareHeuristic,
            sample_ratio: 0.1,
            ..OptimizerConfig::default()
        });
        let chosen = opt.optimize(&query, &cat).unwrap();
        assert!(
            chosen.plan.rank_operator_count() > 0,
            "expected a rank-aware plan, got:\n{}",
            chosen.plan.explain(Some(&query.ranking))
        );
    }

    #[test]
    fn mpro_fusion_keeps_results_identical() {
        use ranksql_executor::{execute_physical_plan, ExecutionContext};

        let (cat, mut query) = setup(300);
        // Expensive predicates force µ operators into the chosen plan.
        query.ranking = RankingContext::new(
            vec![
                RankPredicate::attribute_with_cost("p1", "A.p1", 100),
                RankPredicate::attribute_with_cost("p2", "B.p2", 300),
            ],
            ScoringFunction::Sum,
        );
        let oracle: Vec<f64> = oracle_top_k(&query, &cat)
            .unwrap()
            .iter()
            .map(|t| query.ranking.upper_bound(&t.state).value())
            .collect();
        let opt = RankOptimizer::new(OptimizerConfig {
            mode: OptimizerMode::RankAwareHeuristic,
            sample_ratio: 0.1,
            fuse_mu_chains: true,
            ..OptimizerConfig::default()
        });
        let chosen = opt.optimize(&query, &cat).unwrap();
        let exec = ExecutionContext::new(std::sync::Arc::clone(&query.ranking));
        let result = execute_physical_plan(&chosen.physical, &cat, &exec).unwrap();
        let scores: Vec<f64> = result
            .tuples
            .iter()
            .map(|t| query.ranking.upper_bound(&t.state).value())
            .collect();
        assert_eq!(scores, oracle);
    }

    #[test]
    fn default_config_is_sane() {
        let cfg = OptimizerConfig::default();
        assert_eq!(cfg.mode, OptimizerMode::RankAwareHeuristic);
        assert!(cfg.sample_ratio > 0.0 && cfg.sample_ratio < 1.0);
        let opt = RankOptimizer::with_defaults();
        assert!(opt.config().compare_with_traditional);
    }
}
