//! The plan-invariant validator: an independent, mechanical checker over
//! the [`LogicalPlan`](ranksql_algebra::LogicalPlan) and
//! [`PhysicalPlan`](ranksql_algebra::PhysicalPlan) IR.
//!
//! The engine's correctness rests on structural invariants the type system
//! cannot express — rank-aware operators pinned serial above `Exchange`,
//! pushed filters referencing only scanned columns, the `SortLimit`/ordered
//! merge `k` agreement that `extend_limit` relies on, cumulative cost
//! annotations staying monotone through the `columnarize` and `parallelize`
//! rewrites.  Until now those invariants only failed indirectly, as wrong
//! answers under the equivalence proptests.  This crate encodes each one as
//! a named [`Rule`] producing typed [`Diagnostic`]s, so a broken rewrite
//! fails *at plan time* with the rule id and the offending node's path.
//!
//! The validator is deliberately **independent of the optimizer**: it
//! depends only on `common`, `expr` and `algebra`, and re-derives what a
//! legal plan looks like from the IR documentation rather than calling into
//! the passes it checks — the checker and the checked share no code that
//! could be wrong in the same way.
//!
//! Wiring: `ranksql-core` runs [`validate_physical`] after every optimizer
//! pass when [`enabled`] says so (on under `debug_assertions`, overridable
//! either way with `RANKSQL_VERIFY=0|1`), surfaces it as
//! `Database::verify_plan` / `Session::verify_plan`, and appends a
//! validation footer to `explain` output.  Any [`Severity::Error`]
//! diagnostic hard-fails planning.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod logical;
mod physical;

pub use logical::validate_logical;
pub use physical::validate_physical;

use std::fmt;
use std::sync::OnceLock;

/// How bad a diagnostic is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Suspicious but legal: the plan executes correctly, the shape is
    /// still worth surfacing (e.g. a `Repartition` outside any exchange,
    /// which degrades to a pass-through).
    Warning,
    /// An invariant violation: executing the plan may produce wrong
    /// answers, panic, or silently drop work.  Planning hard-fails on
    /// these when validation is enabled.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Warning => f.write_str("warning"),
            Severity::Error => f.write_str("error"),
        }
    }
}

/// The named invariants the validator checks.  Each rule guards one
/// documented property of the plan IR; `ARCHITECTURE.md` carries the full
/// rule table (id → invariant → layer it guards).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Rule {
    /// Every node's output schema is derivable from its children's
    /// (projection columns exist, set-operation inputs are union
    /// compatible).
    SchemaCoherence,
    /// Filter predicates and join conditions reference only columns their
    /// input schema actually provides.
    SchemaPredicateColumns,
    /// Rank-aware operators (rank-scan, µ, MPro, HRJN, NRJN) never sit
    /// inside an exchange subtree — they keep incremental single-threaded
    /// top-k semantics above it.
    ExchangeRankBelow,
    /// Every exchange spine contains exactly one `Repartition` marker (not
    /// counting nested exchanges, which own their own spines), each
    /// `Repartition` wraps a `SeqScan`, and a `Repartition` outside any
    /// exchange is flagged as a degenerate pass-through.
    ExchangeSpine,
    /// An ordered exchange merge agrees with its partial: `Ordered{limit:
    /// Some(k)}` re-limits per-partition `SortLimit`s of exactly `k`
    /// (the pair `extend_limit` rewrites together), `Ordered{limit: None}`
    /// merges per-partition full `Sort` runs.
    ExchangeMergeLimit,
    /// Parameter slots referenced by the plan form a contiguous `$0..$n`
    /// range (a gap is a dangling slot no binding will ever fill), and a
    /// plan about to execute carries no unbound parameter.
    ParamSlots,
    /// Cumulative per-node cost annotations are monotone parent ≥ child —
    /// the bookkeeping the `columnarize`/`parallelize` rewrites maintain.
    /// `Exchange` parents are exempt: dividing per-morsel work across
    /// workers legitimately makes the exchange cheaper than its input.
    CostMonotonic,
    /// Cost and cardinality estimates are finite and non-negative.
    CostFinite,
    /// A pushed filter on a columnar scan is a conjunction of simple
    /// column-vs-constant comparisons over columns the scan provides —
    /// the only shape the column-at-a-time kernels evaluate.
    ColumnarPushedFilter,
    /// A zone-pruning columnar scan reaches its `SortLimit` through an
    /// order/membership-preserving σ/π (and `Repartition`) chain only;
    /// anywhere else, score pruning could change results.
    ColumnarZonePrune,
    /// Ranking-predicate indices (rank-scans, µ, MPro schedules, sort
    /// predicate sets) stay within the query's ranking context; MPro
    /// schedules are non-empty and duplicate-free.
    RankPredicateRange,
    /// A top-k of zero tuples is legal but almost certainly a mistake.
    LimitZero,
}

impl Rule {
    /// The stable dotted identifier used in reports, tests and docs.
    pub fn id(&self) -> &'static str {
        match self {
            Rule::SchemaCoherence => "schema.coherence",
            Rule::SchemaPredicateColumns => "schema.predicate-columns",
            Rule::ExchangeRankBelow => "exchange.rank-below",
            Rule::ExchangeSpine => "exchange.spine",
            Rule::ExchangeMergeLimit => "exchange.merge-limit",
            Rule::ParamSlots => "params.slots",
            Rule::CostMonotonic => "cost.monotonic",
            Rule::CostFinite => "cost.finite",
            Rule::ColumnarPushedFilter => "columnar.pushed-filter",
            Rule::ColumnarZonePrune => "columnar.zone-prune",
            Rule::RankPredicateRange => "rank.predicate-range",
            Rule::LimitZero => "limit.zero",
        }
    }

    /// The layer of the system whose rewrites this rule guards.
    pub fn layer(&self) -> &'static str {
        match self {
            Rule::SchemaCoherence | Rule::SchemaPredicateColumns => "algebra",
            Rule::ExchangeRankBelow | Rule::ExchangeSpine | Rule::ExchangeMergeLimit => {
                "parallelize"
            }
            Rule::ParamSlots => "prepared statements",
            Rule::CostMonotonic | Rule::CostFinite => "costing",
            Rule::ColumnarPushedFilter | Rule::ColumnarZonePrune => "columnarize",
            Rule::RankPredicateRange => "ranking",
            Rule::LimitZero => "queries",
        }
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.id())
    }
}

/// One finding of the validator: which rule fired, how bad it is, where in
/// the tree, and why.
#[derive(Debug, Clone, PartialEq)]
pub struct Diagnostic {
    /// The invariant that was violated.
    pub rule: Rule,
    /// Whether the plan is broken or merely suspicious.
    pub severity: Severity,
    /// Dot-separated child indices from the root plus the node's label,
    /// e.g. `root.0.1 (HashJoin[R.a = S.a])`.
    pub node_path: String,
    /// Human-readable description of the violation.
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{}] {} @ {}: {}",
            self.severity, self.rule, self.node_path, self.message
        )
    }
}

/// Options controlling a validation run.
#[derive(Debug, Clone, Copy, Default)]
pub struct ValidateOptions {
    /// Treat an unbound parameter slot as an [`Severity::Error`]: set when
    /// validating a plan about to *execute* (every `$i` must carry a
    /// value), clear when validating a cached shape whose slots are bound
    /// per execution.
    pub require_bound_params: bool,
}

impl ValidateOptions {
    /// Options for a plan about to execute: unbound parameters are errors.
    pub fn executable() -> Self {
        ValidateOptions {
            require_bound_params: true,
        }
    }
}

/// Whether hook-sites should run the validator.
///
/// `RANKSQL_VERIFY=1` (or `true`/`on`) forces it on, `RANKSQL_VERIFY=0`
/// (or `false`/`off`) forces it off; unset, it follows
/// `cfg!(debug_assertions)` — on in every `cargo test`, off in release
/// serving builds.  The answer is computed once per process.
pub fn enabled() -> bool {
    static ENABLED: OnceLock<bool> = OnceLock::new();
    *ENABLED.get_or_init(|| match std::env::var("RANKSQL_VERIFY") {
        Ok(v) => !matches!(v.trim(), "0" | "false" | "off"),
        Err(_) => cfg!(debug_assertions),
    })
}

/// Whether any diagnostic in `diags` is an [`Severity::Error`].
pub fn has_errors(diags: &[Diagnostic]) -> bool {
    diags.iter().any(|d| d.severity == Severity::Error)
}

/// Renders diagnostics one per line (empty string for a clean run).
pub fn report(diags: &[Diagnostic]) -> String {
    let mut out = String::new();
    for d in diags {
        out.push_str(&d.to_string());
        out.push('\n');
    }
    out
}

/// The one-or-more-line summary `explain` appends: `plan validation:
/// clean` or the full report.
pub fn footer(diags: &[Diagnostic]) -> String {
    if diags.is_empty() {
        "plan validation: clean\n".to_owned()
    } else {
        format!("plan validation:\n{}", report(diags))
    }
}

/// Appends `root` (or `root.<path>`) plus the node label.
pub(crate) fn node_path(indices: &[usize], label: &str) -> String {
    let mut out = String::from("root");
    for i in indices {
        out.push('.');
        out.push_str(&i.to_string());
    }
    out.push_str(" (");
    out.push_str(label);
    out.push(')');
    out
}

/// Shared slot-contiguity / boundness checks over collected parameter
/// bindings `(slot, value)`; `path` names the plan root.
pub(crate) fn check_param_bindings(
    bindings: &[(usize, Option<ranksql_common::Value>)],
    opts: &ValidateOptions,
    path: &str,
    diags: &mut Vec<Diagnostic>,
) {
    let mut slots: Vec<usize> = bindings.iter().map(|(i, _)| *i).collect();
    slots.sort_unstable();
    slots.dedup();
    if let Some(&max) = slots.last() {
        for expected in 0..=max {
            if !slots.contains(&expected) {
                diags.push(Diagnostic {
                    rule: Rule::ParamSlots,
                    severity: Severity::Warning,
                    node_path: path.to_owned(),
                    message: format!(
                        "dangling parameter slot: plan references ${max} but ${expected} \
                         is never used — bindings are positional, the gap can never be filled \
                         intentionally"
                    ),
                });
                break;
            }
        }
    }
    if opts.require_bound_params {
        let mut unbound: Vec<usize> = bindings
            .iter()
            .filter(|(_, v)| v.is_none())
            .map(|(i, _)| *i)
            .collect();
        unbound.sort_unstable();
        unbound.dedup();
        for slot in unbound {
            diags.push(Diagnostic {
                rule: Rule::ParamSlots,
                severity: Severity::Error,
                node_path: path.to_owned(),
                message: format!("parameter ${slot} is unbound in a plan about to execute"),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rule_ids_are_unique_and_dotted() {
        let rules = [
            Rule::SchemaCoherence,
            Rule::SchemaPredicateColumns,
            Rule::ExchangeRankBelow,
            Rule::ExchangeSpine,
            Rule::ExchangeMergeLimit,
            Rule::ParamSlots,
            Rule::CostMonotonic,
            Rule::CostFinite,
            Rule::ColumnarPushedFilter,
            Rule::ColumnarZonePrune,
            Rule::RankPredicateRange,
            Rule::LimitZero,
        ];
        let mut ids: Vec<&str> = rules.iter().map(|r| r.id()).collect();
        ids.sort_unstable();
        let before = ids.len();
        ids.dedup();
        assert_eq!(ids.len(), before, "duplicate rule id");
        for r in &rules {
            assert!(r.id().contains('.'), "{}", r.id());
            assert!(!r.layer().is_empty());
        }
    }

    #[test]
    fn footer_and_report_render() {
        assert_eq!(footer(&[]), "plan validation: clean\n");
        let d = Diagnostic {
            rule: Rule::ExchangeSpine,
            severity: Severity::Error,
            node_path: "root (Exchange(concat))".to_owned(),
            message: "no Repartition in spine".to_owned(),
        };
        let text = footer(std::slice::from_ref(&d));
        assert!(text.contains("[error] exchange.spine @ root"), "{text}");
        assert!(has_errors(&[d]));
        assert!(!has_errors(&[]));
    }

    #[test]
    fn param_binding_checks_flag_gaps_and_unbound() {
        let mut diags = Vec::new();
        check_param_bindings(
            &[(2, Some(ranksql_common::Value::from(1)))],
            &ValidateOptions::default(),
            "root",
            &mut diags,
        );
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].rule, Rule::ParamSlots);
        assert_eq!(diags[0].severity, Severity::Warning);

        let mut diags = Vec::new();
        check_param_bindings(
            &[(0, None)],
            &ValidateOptions::executable(),
            "root",
            &mut diags,
        );
        assert!(has_errors(&diags));
    }
}
