//! The [`LogicalPlan`] walk: the subset of rules that are meaningful
//! before lowering — schema coherence, predicate column resolution,
//! ranking-predicate ranges, parameter slots and degenerate limits.

use ranksql_algebra::{LogicalPlan, ScanAccess};
use ranksql_common::Value;
use ranksql_expr::{BoolExpr, RankingContext};

use crate::{check_param_bindings, node_path, Diagnostic, Rule, Severity, ValidateOptions};

/// Validates a logical plan, returning every diagnostic found (empty for a
/// clean plan).
pub fn validate_logical(
    plan: &LogicalPlan,
    ctx: Option<&RankingContext>,
    opts: &ValidateOptions,
) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    let mut bindings = Vec::new();
    let mut indices = Vec::new();
    visit(plan, ctx, &mut indices, &mut diags, &mut bindings);
    let root_path = node_path(&[], &label(plan));
    check_param_bindings(&bindings, opts, &root_path, &mut diags);
    diags
}

/// A short stable label for paths (the full `LogicalPlan::explain` labels
/// need a ranking context; paths must render for broken plans too).
fn label(plan: &LogicalPlan) -> String {
    match plan {
        LogicalPlan::Scan { table, access, .. } => match access {
            ScanAccess::Sequential => format!("Scan({table})"),
            ScanAccess::RankIndex { predicate } => format!("RankScan#{predicate}({table})"),
            ScanAccess::AttributeIndex { column } => format!("IdxScan_{column}({table})"),
        },
        LogicalPlan::Select { .. } => "Select".to_owned(),
        LogicalPlan::Project { .. } => "Project".to_owned(),
        LogicalPlan::Rank { predicate, .. } => format!("Rank#{predicate}"),
        LogicalPlan::Join { .. } => "Join".to_owned(),
        LogicalPlan::SetOp { .. } => "SetOp".to_owned(),
        LogicalPlan::Sort { .. } => "Sort".to_owned(),
        LogicalPlan::Limit { k, .. } => format!("Limit[{k}]"),
    }
}

fn check_index(
    ctx: Option<&RankingContext>,
    what: &str,
    index: usize,
    path: &str,
    diags: &mut Vec<Diagnostic>,
) {
    if let Some(ctx) = ctx {
        if index >= ctx.num_predicates() {
            diags.push(Diagnostic {
                rule: Rule::RankPredicateRange,
                severity: Severity::Error,
                node_path: path.to_owned(),
                message: format!(
                    "{what} references ranking predicate #{index} but the context has only {} \
                     predicates",
                    ctx.num_predicates()
                ),
            });
        }
    }
}

fn check_columns(
    what: &str,
    pred: &BoolExpr,
    schema: &ranksql_common::Schema,
    path: &str,
    diags: &mut Vec<Diagnostic>,
) {
    for col in pred.columns() {
        if col.resolve(schema).is_err() {
            diags.push(Diagnostic {
                rule: Rule::SchemaPredicateColumns,
                severity: Severity::Error,
                node_path: path.to_owned(),
                message: format!(
                    "{what} references column `{col}` which the input schema does not provide"
                ),
            });
        }
    }
}

fn visit(
    plan: &LogicalPlan,
    ctx: Option<&RankingContext>,
    indices: &mut Vec<usize>,
    diags: &mut Vec<Diagnostic>,
    bindings: &mut Vec<(usize, Option<Value>)>,
) {
    let path = node_path(indices, &label(plan));

    if plan.children().iter().all(|c| c.schema().is_ok()) {
        if let Err(e) = plan.schema() {
            diags.push(Diagnostic {
                rule: Rule::SchemaCoherence,
                severity: Severity::Error,
                node_path: path.clone(),
                message: format!("output schema is not derivable: {e}"),
            });
        }
    }

    match plan {
        LogicalPlan::Scan { schema, access, .. } => match access {
            ScanAccess::Sequential => {}
            ScanAccess::RankIndex { predicate } => {
                check_index(ctx, "rank-scan", *predicate, &path, diags);
            }
            ScanAccess::AttributeIndex { column } => {
                if schema.index_of_str(column).is_err() {
                    diags.push(Diagnostic {
                        rule: Rule::SchemaPredicateColumns,
                        severity: Severity::Error,
                        node_path: path.clone(),
                        message: format!("index column `{column}` is not in the scanned schema"),
                    });
                }
            }
        },
        LogicalPlan::Select { input, predicate } => {
            if let Ok(s) = input.schema() {
                check_columns("selection predicate", predicate, &s, &path, diags);
            }
            bindings.extend(predicate.param_bindings());
        }
        LogicalPlan::Project { .. } => {}
        LogicalPlan::Rank { predicate, .. } => {
            check_index(ctx, "µ", *predicate, &path, diags);
        }
        LogicalPlan::Join {
            left,
            right,
            condition,
            ..
        } => {
            if let Some(c) = condition {
                if let (Ok(l), Ok(r)) = (left.schema(), right.schema()) {
                    check_columns("join condition", c, &l.join(&r), &path, diags);
                }
                bindings.extend(c.param_bindings());
            }
        }
        LogicalPlan::SetOp { .. } => {}
        LogicalPlan::Sort { predicates, .. } => {
            for p in predicates.iter() {
                check_index(ctx, "sort", p, &path, diags);
            }
        }
        LogicalPlan::Limit { k, .. } => {
            if *k == 0 {
                diags.push(Diagnostic {
                    rule: Rule::LimitZero,
                    severity: Severity::Warning,
                    node_path: path.clone(),
                    message: "limit keeps zero tuples".to_owned(),
                });
            }
        }
    }

    for (i, child) in plan.children().into_iter().enumerate() {
        indices.push(i);
        visit(child, ctx, indices, diags, bindings);
        indices.pop();
    }
}
