//! The [`PhysicalPlan`] walk: one exhaustive match over every
//! [`PhysicalOp`] variant (no wildcard arm, so adding a variant fails to
//! compile here until its invariants are stated; `cargo xtask lint`
//! additionally cross-checks the walk against `PhysicalOp::map_children`).

use ranksql_algebra::{ColumnarScan, ExchangeMerge, PhysicalOp, PhysicalPlan};
use ranksql_common::{Schema, Value};
use ranksql_expr::{BoolExpr, RankingContext, ScalarExpr};

use crate::{check_param_bindings, node_path, Diagnostic, Rule, Severity, ValidateOptions};

/// Validates a physical plan, returning every diagnostic found (empty for
/// a clean plan).  `ctx` enables the ranking-predicate range checks; pass
/// the query's context whenever one exists.
pub fn validate_physical(
    plan: &PhysicalPlan,
    ctx: Option<&RankingContext>,
    opts: &ValidateOptions,
) -> Vec<Diagnostic> {
    let mut walker = Walker {
        ctx,
        diags: Vec::new(),
        bindings: Vec::new(),
    };
    let mut indices = Vec::new();
    walker.visit(
        plan,
        &mut indices,
        Scope {
            in_exchange: false,
            zone_chain: false,
        },
    );
    let root_path = node_path(&[], &plan.node_label(ctx));
    check_param_bindings(&walker.bindings, opts, &root_path, &mut walker.diags);
    walker.diags
}

/// Inherited (top-down) validation state.
#[derive(Clone, Copy)]
struct Scope {
    /// Whether this node sits inside an `Exchange` subtree.
    in_exchange: bool,
    /// Whether a zone-pruning columnar scan is legal here: true only on
    /// the σ/π/`Repartition` chain directly under a `SortLimit`.
    zone_chain: bool,
}

struct Walker<'a> {
    ctx: Option<&'a RankingContext>,
    diags: Vec<Diagnostic>,
    /// Parameter bindings collected across the whole tree, checked once at
    /// the root for slot contiguity and (optionally) boundness.
    bindings: Vec<(usize, Option<Value>)>,
}

/// Whether a σ predicate has the shape the columnar kernels evaluate: a
/// conjunction of comparisons between one column and one execution-time
/// constant.  Deliberately re-derived from the `ColumnarScan` contract
/// rather than shared with the optimizer's `columnarize` pass — the checker
/// and the checked must not be wrong in the same way.
fn is_pushable(pred: &BoolExpr) -> bool {
    fn is_const(e: &ScalarExpr) -> bool {
        matches!(e, ScalarExpr::Literal(_) | ScalarExpr::Param { .. })
    }
    fn is_col(e: &ScalarExpr) -> bool {
        matches!(e, ScalarExpr::Column(_))
    }
    pred.split_conjuncts().iter().all(|c| match c {
        BoolExpr::Compare { left, right, .. } => {
            (is_col(left) && is_const(right)) || (is_const(left) && is_col(right))
        }
        _ => false,
    })
}

/// `Repartition` markers belonging to *this* exchange's spine: nested
/// exchanges own their spines and are not descended into.
fn repartitions_in_spine(plan: &PhysicalPlan) -> usize {
    match &plan.op {
        PhysicalOp::Repartition { .. } => 1,
        PhysicalOp::Exchange { .. } => 0,
        _ => plan
            .children()
            .iter()
            .map(|c| repartitions_in_spine(c))
            .sum(),
    }
}

impl Walker<'_> {
    fn push(&mut self, rule: Rule, severity: Severity, path: &str, message: String) {
        self.diags.push(Diagnostic {
            rule,
            severity,
            node_path: path.to_owned(),
            message,
        });
    }

    fn check_predicate_index(&mut self, what: &str, index: usize, path: &str) {
        if let Some(ctx) = self.ctx {
            if index >= ctx.num_predicates() {
                self.push(
                    Rule::RankPredicateRange,
                    Severity::Error,
                    path,
                    format!(
                        "{what} references ranking predicate #{index} but the context has only \
                         {} predicates",
                        ctx.num_predicates()
                    ),
                );
            }
        }
    }

    /// Columns of `pred` must resolve in `schema`; `what` names the
    /// predicate's role in the message.
    fn check_predicate_columns(
        &mut self,
        what: &str,
        pred: &BoolExpr,
        schema: &Schema,
        path: &str,
    ) {
        for col in pred.columns() {
            if col.resolve(schema).is_err() {
                self.push(
                    Rule::SchemaPredicateColumns,
                    Severity::Error,
                    path,
                    format!(
                        "{what} references column `{col}` which the input schema does not provide"
                    ),
                );
            }
        }
    }

    fn visit(&mut self, plan: &PhysicalPlan, indices: &mut Vec<usize>, scope: Scope) {
        let path = node_path(indices, &plan.node_label(self.ctx));

        // cost.finite: estimates must be finite and non-negative.
        let cost = plan.estimated_cost.value();
        if !cost.is_finite() || cost < 0.0 {
            self.push(
                Rule::CostFinite,
                Severity::Error,
                &path,
                format!("estimated cost {cost} is not a finite non-negative number"),
            );
        }
        if !plan.estimated_rows.is_finite() || plan.estimated_rows < 0.0 {
            self.push(
                Rule::CostFinite,
                Severity::Error,
                &path,
                format!(
                    "estimated cardinality {} is not a finite non-negative number",
                    plan.estimated_rows
                ),
            );
        }

        // cost.monotonic: cumulative costs never shrink upward — except
        // through an Exchange, whose per-morsel work is divided across
        // workers by design.
        if !matches!(plan.op, PhysicalOp::Exchange { .. }) {
            for child in plan.children() {
                let child_cost = child.estimated_cost.value();
                if child_cost.is_finite()
                    && cost.is_finite()
                    && child_cost > cost * (1.0 + 1e-9) + 1e-6
                {
                    self.push(
                        Rule::CostMonotonic,
                        Severity::Error,
                        &path,
                        format!(
                            "cumulative cost {cost:.3} is below child `{}` at {child_cost:.3} — \
                             a rewrite pass left the annotation stale",
                            child.node_label(self.ctx)
                        ),
                    );
                }
            }
        }

        // schema.coherence: attributed to the node where derivation first
        // fails (children derive fine, this node does not).
        if plan.children().iter().all(|c| c.schema().is_ok()) {
            if let Err(e) = plan.schema() {
                self.push(
                    Rule::SchemaCoherence,
                    Severity::Error,
                    &path,
                    format!("output schema is not derivable: {e}"),
                );
            }
        }

        // Per-operator rules.  This match is intentionally exhaustive with
        // no wildcard arm: a new PhysicalOp variant must state its
        // invariants here before the crate compiles.
        match &plan.op {
            PhysicalOp::SeqScan {
                schema, columnar, ..
            } => {
                if let Some(ColumnarScan {
                    pushed_filter,
                    zone_prune,
                }) = columnar
                {
                    if let Some(f) = pushed_filter {
                        if !is_pushable(f) {
                            self.push(
                                Rule::ColumnarPushedFilter,
                                Severity::Error,
                                &path,
                                format!(
                                    "pushed filter `{f}` is not a conjunction of simple \
                                     column-vs-constant comparisons"
                                ),
                            );
                        }
                        for col in f.columns() {
                            if col.resolve(schema).is_err() {
                                self.push(
                                    Rule::ColumnarPushedFilter,
                                    Severity::Error,
                                    &path,
                                    format!(
                                        "pushed filter references column `{col}` outside the \
                                         scanned schema"
                                    ),
                                );
                            }
                        }
                        self.bindings.extend(f.param_bindings());
                    }
                    if *zone_prune && !scope.zone_chain {
                        self.push(
                            Rule::ColumnarZonePrune,
                            Severity::Error,
                            &path,
                            "zone-pruning scan does not feed a SortLimit through a σ/π chain — \
                             score pruning here could change results"
                                .to_owned(),
                        );
                    }
                }
            }
            PhysicalOp::RankScan { predicate, .. } => {
                self.check_predicate_index("rank-scan", *predicate, &path);
            }
            PhysicalOp::AttributeIndexScan { schema, column, .. } => {
                if schema.index_of_str(column).is_err() {
                    self.push(
                        Rule::SchemaPredicateColumns,
                        Severity::Error,
                        &path,
                        format!("index column `{column}` is not in the scanned schema"),
                    );
                }
            }
            PhysicalOp::Filter { input, predicate } => {
                if let Ok(s) = input.schema() {
                    self.check_predicate_columns("filter predicate", predicate, &s, &path);
                }
                self.bindings.extend(predicate.param_bindings());
            }
            PhysicalOp::Project { .. } => {
                // Unresolvable projection columns surface as schema.coherence.
            }
            PhysicalOp::RankMaterialize { predicate, .. } => {
                self.check_predicate_index("µ", *predicate, &path);
            }
            PhysicalOp::MproProbe { schedule, .. } => {
                if schedule.is_empty() {
                    self.push(
                        Rule::RankPredicateRange,
                        Severity::Error,
                        &path,
                        "MPro probe schedule is empty".to_owned(),
                    );
                }
                let mut seen = schedule.clone();
                seen.sort_unstable();
                seen.dedup();
                if seen.len() != schedule.len() {
                    self.push(
                        Rule::RankPredicateRange,
                        Severity::Error,
                        &path,
                        format!("MPro probe schedule {schedule:?} repeats a predicate"),
                    );
                }
                for &p in schedule {
                    self.check_predicate_index("MPro schedule", p, &path);
                }
            }
            PhysicalOp::NestedLoopsJoin {
                left,
                right,
                condition,
            }
            | PhysicalOp::HashJoin {
                left,
                right,
                condition,
            }
            | PhysicalOp::SortMergeJoin {
                left,
                right,
                condition,
            }
            | PhysicalOp::HashRankJoin {
                left,
                right,
                condition,
            }
            | PhysicalOp::NestedLoopsRankJoin {
                left,
                right,
                condition,
            } => {
                if let Some(c) = condition {
                    if let (Ok(l), Ok(r)) = (left.schema(), right.schema()) {
                        let joined = l.join(&r);
                        self.check_predicate_columns("join condition", c, &joined, &path);
                    }
                    self.bindings.extend(c.param_bindings());
                }
            }
            PhysicalOp::SetOp { .. } => {
                // Union compatibility surfaces as schema.coherence.
            }
            PhysicalOp::Sort { predicates, .. } => {
                for p in predicates.iter() {
                    self.check_predicate_index("sort", p, &path);
                }
            }
            PhysicalOp::SortLimit { predicates, k, .. } => {
                for p in predicates.iter() {
                    self.check_predicate_index("top-k sort", p, &path);
                }
                if *k == 0 {
                    self.push(
                        Rule::LimitZero,
                        Severity::Warning,
                        &path,
                        "top-k sort keeps zero tuples".to_owned(),
                    );
                }
            }
            PhysicalOp::Limit { k, .. } => {
                if *k == 0 {
                    self.push(
                        Rule::LimitZero,
                        Severity::Warning,
                        &path,
                        "limit keeps zero tuples".to_owned(),
                    );
                }
            }
            PhysicalOp::Exchange { input, merge } => {
                if input.is_rank_aware() {
                    self.push(
                        Rule::ExchangeRankBelow,
                        Severity::Error,
                        &path,
                        "a rank-aware operator sits inside the exchange subtree — rank \
                         operators must stay pinned serial above the exchange"
                            .to_owned(),
                    );
                }
                let repartitions = repartitions_in_spine(input);
                if repartitions != 1 {
                    self.push(
                        Rule::ExchangeSpine,
                        Severity::Error,
                        &path,
                        format!(
                            "exchange spine carries {repartitions} Repartition markers \
                             (exactly 1 required to drive the morsel partitioning)"
                        ),
                    );
                }
                match merge {
                    ExchangeMerge::Concat => {}
                    ExchangeMerge::Ordered { limit } => match (&input.op, limit) {
                        (PhysicalOp::SortLimit { k, .. }, Some(l)) if k == l => {}
                        (PhysicalOp::SortLimit { k, .. }, Some(l)) => {
                            self.push(
                                Rule::ExchangeMergeLimit,
                                Severity::Error,
                                &path,
                                format!(
                                    "ordered merge re-limits to {l} but the per-partition \
                                     top-k keeps {k} — `extend_limit` must rewrite both caps \
                                     together"
                                ),
                            );
                        }
                        (PhysicalOp::SortLimit { k, .. }, None) => {
                            self.push(
                                Rule::ExchangeMergeLimit,
                                Severity::Error,
                                &path,
                                format!(
                                    "per-partition top-k keeps {k} tuples but the ordered \
                                     merge carries no re-limit — the merged stream would \
                                     overshoot the query's k"
                                ),
                            );
                        }
                        (PhysicalOp::Sort { .. }, _) => {}
                        (_, _) => {
                            self.push(
                                Rule::ExchangeMergeLimit,
                                Severity::Error,
                                &path,
                                format!(
                                    "ordered merge requires per-partition Sort/SortLimit runs, \
                                     found `{}`",
                                    input.node_label(self.ctx)
                                ),
                            );
                        }
                    },
                }
            }
            PhysicalOp::Repartition { input } => {
                if !scope.in_exchange {
                    self.push(
                        Rule::ExchangeSpine,
                        Severity::Warning,
                        &path,
                        "Repartition outside any exchange degrades to a pass-through".to_owned(),
                    );
                }
                if !matches!(input.op, PhysicalOp::SeqScan { .. }) {
                    self.push(
                        Rule::ExchangeSpine,
                        Severity::Error,
                        &path,
                        format!(
                            "Repartition must wrap the driving SeqScan, found `{}`",
                            input.node_label(self.ctx)
                        ),
                    );
                }
            }
        }

        // Scope for the children: entering an exchange, and tracking the
        // σ/π/Repartition chain a zone-pruning scan must sit on.
        let child_scope = Scope {
            in_exchange: scope.in_exchange || matches!(plan.op, PhysicalOp::Exchange { .. }),
            zone_chain: match plan.op {
                PhysicalOp::SortLimit { .. } => true,
                PhysicalOp::Filter { .. }
                | PhysicalOp::Project { .. }
                | PhysicalOp::Repartition { .. } => scope.zone_chain,
                _ => false,
            },
        };
        for (i, child) in plan.children().into_iter().enumerate() {
            indices.push(i);
            self.visit(child, indices, child_scope);
            indices.pop();
        }
    }
}
