//! The RankSQL server front end: a multi-tenant TCP wire protocol over the
//! Session API.
//!
//! The engine's incremental top-k surface (`Session` → `PreparedQuery` →
//! `Cursor`) is in-process; this crate puts it behind a socket without
//! changing its semantics.  The design keeps every moving part something
//! the workspace already has:
//!
//! * **Transport** — a length-prefixed binary protocol
//!   ([`ranksql_common::wire`]): `HELLO`, `PREPARE`, `BIND`, `OPEN`,
//!   `FETCH k`, `FETCH_MORE k`, `CLOSE`, `STATS`, `INSERT`.  No async
//!   runtime: the accept loop is thread-per-connection under
//!   `std::thread::scope`, the same scoped-thread machinery the executor's
//!   `WorkerPool` uses, so connection handlers may borrow the `Database`
//!   directly and can never outlive [`Server::serve`].
//! * **Admission control** — `HELLO` names a tenant and *requests* session
//!   settings (plan mode, worker threads, batch size, tuple budget); the
//!   server clamps them to [`ServerConfig`] caps and replies with the
//!   negotiated values.  A tenant's worker threads and tuple budget are
//!   its resource envelope; the shared bounded-LRU plan cache is the
//!   cross-tenant accelerator (two tenants binding the same query shape
//!   share one optimization).
//! * **Incremental streaming** — `FETCH`/`FETCH_MORE` pull from a
//!   *server-held* [`Cursor`](ranksql_core::Cursor) parked in a
//!   [`CursorRegistry`](ranksql_core::CursorRegistry); `FETCH_MORE`
//!   extends the live operator tree past its original top-k without
//!   re-running the query.  Every open cursor keeps the MVCC epochs it
//!   pinned at first touch, so concurrent tenants' inserts never perturb
//!   an in-flight result stream.
//! * **Observability** — [`ServerMetrics`] keeps per-tenant counters
//!   (queries, rows streamed, tuples scanned, plan-cache hits/misses,
//!   pages faulted, budget rejections, protocol errors); the `STATS` verb
//!   renders them plus the per-cursor pinned epochs as `key=value` text.
//!
//! ```no_run
//! use ranksql_core::Database;
//! use ranksql_server::{Server, ServerConfig};
//!
//! let db = Database::new();
//! let server = Server::bind(ServerConfig::default()).unwrap();
//! println!("listening on {}", server.local_addr().unwrap());
//! let handle = server.shutdown_handle();
//! // ... hand `handle` to a signal handler or test driver ...
//! server.serve(&db).unwrap(); // blocks until handle.shutdown()
//! # drop(handle);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod config;
mod connection;
mod listener;
mod metrics;

pub use config::ServerConfig;
pub use listener::{Server, ShutdownHandle};
pub use metrics::{ServerMetrics, TenantCounters, TenantSnapshot};
