//! The accept loop: thread-per-connection on scoped threads.
//!
//! [`Server::serve`] runs a polling accept loop on the caller's thread and
//! spawns one scoped thread per connection (`std::thread::scope` — the
//! same primitive as the executor's `WorkerPool`): handlers borrow the
//! `Database`, the config and the metrics registry directly, need no
//! `'static` bounds or `Arc` plumbing, and are all joined before `serve`
//! returns, so a shutdown is complete when the call comes back.
//!
//! This file is the server's *edge*: it owns the two non-deterministic
//! ingredients the engine itself must never touch (and which the repo lint
//! exempts only here) — socket readiness/timeouts, and one `SystemTime`
//! reading taken at bind so `STATS` can report a wall-clock start time.
//! Nothing downstream of the edge depends on either: query results are a
//! pure function of plan and data.

use std::net::TcpListener;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::SystemTime;

use ranksql_common::{RankSqlError, Result};
use ranksql_core::Database;

use crate::config::ServerConfig;
use crate::connection::serve_connection;
use crate::metrics::ServerMetrics;

/// A handle for stopping a running [`Server::serve`] from another thread.
#[derive(Debug, Clone)]
pub struct ShutdownHandle {
    flag: Arc<AtomicBool>,
}

impl ShutdownHandle {
    /// Asks the server to stop: the accept loop exits, connection handlers
    /// finish their current request and unwind, and `serve` returns after
    /// joining them (within roughly one poll interval).
    pub fn shutdown(&self) {
        self.flag.store(true, Ordering::Release);
    }
}

/// A bound TCP server front end over one [`Database`].
#[derive(Debug)]
pub struct Server {
    listener: TcpListener,
    config: ServerConfig,
    metrics: Arc<ServerMetrics>,
    shutdown: Arc<AtomicBool>,
}

impl Server {
    /// Binds the configured address (the listener is live — and the
    /// OS-assigned port knowable via [`Server::local_addr`] — before
    /// [`Server::serve`] is called, so tests and examples can connect
    /// clients without racing the accept loop).
    pub fn bind(config: ServerConfig) -> Result<Server> {
        let listener = TcpListener::bind(&config.addr)
            .map_err(|e| RankSqlError::Storage(format!("cannot bind {}: {e}", config.addr)))?;
        listener
            .set_nonblocking(true)
            .map_err(|e| RankSqlError::Storage(format!("cannot set nonblocking accept: {e}")))?;
        let started_unix_ms = SystemTime::now()
            .duration_since(SystemTime::UNIX_EPOCH)
            .map(|d| d.as_millis() as u64)
            .unwrap_or(0);
        Ok(Server {
            listener,
            config,
            metrics: Arc::new(ServerMetrics::new(started_unix_ms)),
            shutdown: Arc::new(AtomicBool::new(false)),
        })
    }

    /// The bound address (with the OS-chosen port resolved).
    pub fn local_addr(&self) -> Result<std::net::SocketAddr> {
        self.listener
            .local_addr()
            .map_err(|e| RankSqlError::Storage(format!("cannot read local addr: {e}")))
    }

    /// The server's metrics registry.
    pub fn metrics(&self) -> &Arc<ServerMetrics> {
        &self.metrics
    }

    /// The server's configuration.
    pub fn config(&self) -> &ServerConfig {
        &self.config
    }

    /// A handle that stops [`Server::serve`] when triggered.
    pub fn shutdown_handle(&self) -> ShutdownHandle {
        ShutdownHandle {
            flag: Arc::clone(&self.shutdown),
        }
    }

    /// Serves connections against `db` until the shutdown handle fires.
    ///
    /// Blocks the calling thread.  Every connection runs on its own scoped
    /// thread; a handler that panics (which the no-panic lint makes
    /// unlikely) is contained by a `catch_unwind` and counted as a closed
    /// connection rather than taking the server down.
    pub fn serve(&self, db: &Database) -> Result<()> {
        std::thread::scope(|scope| {
            loop {
                if self.shutdown.load(Ordering::Acquire) {
                    break;
                }
                match self.listener.accept() {
                    Ok((stream, _peer)) => {
                        self.metrics.record_connection();
                        let config = &self.config;
                        let metrics = &self.metrics;
                        let shutdown = &self.shutdown;
                        scope.spawn(move || {
                            // Contain a panicking handler to its own
                            // connection; the stream drops (and the client
                            // sees a reset) but the server keeps serving.
                            let _ = catch_unwind(AssertUnwindSafe(|| {
                                serve_connection(stream, db, config, metrics, shutdown);
                            }));
                        });
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        std::thread::sleep(self.config.poll_interval);
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                    Err(e) => {
                        // A broken listener cannot make progress; stop the
                        // handlers and surface the error.
                        self.shutdown.store(true, Ordering::Release);
                        return Err(RankSqlError::Storage(format!("accept failed: {e}")));
                    }
                }
            }
            Ok(())
        })
    }
}
