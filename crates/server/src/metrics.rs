//! Per-tenant observability: lock-free counters updated on the request
//! path, snapshotted by the `STATS` verb.
//!
//! Counters are plain relaxed atomics — they are telemetry, not
//! synchronization: each is independently monotonic and a `STATS` reader
//! racing a writer may see a tenant mid-update, which is fine for
//! monitoring (the per-counter values are never torn).

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use parking_lot::Mutex;

/// Monotonic counters for one tenant (shared by all of the tenant's
/// connections — a tenant is a *name*, not a socket).
#[derive(Debug, Default)]
pub struct TenantCounters {
    connections: AtomicU64,
    queries: AtomicU64,
    rows_streamed: AtomicU64,
    rows_inserted: AtomicU64,
    tuples_scanned: AtomicU64,
    plan_cache_hits: AtomicU64,
    plan_cache_misses: AtomicU64,
    pages_faulted: AtomicU64,
    budget_rejections: AtomicU64,
    protocol_errors: AtomicU64,
}

impl TenantCounters {
    /// Records an accepted connection for this tenant.
    pub fn record_connection(&self) {
        self.connections.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one `BIND` (a query admitted for execution) and its
    /// plan-cache outcome.
    pub fn record_query(&self, cache_hit: bool) {
        self.queries.fetch_add(1, Ordering::Relaxed);
        if cache_hit {
            self.plan_cache_hits.fetch_add(1, Ordering::Relaxed);
        } else {
            self.plan_cache_misses.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Adds rows streamed to the tenant over the wire.
    pub fn add_rows_streamed(&self, n: u64) {
        self.rows_streamed.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds rows the tenant inserted.
    pub fn add_rows_inserted(&self, n: u64) {
        self.rows_inserted.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds scan-produced tuples consumed on the tenant's behalf.
    pub fn add_tuples_scanned(&self, n: u64) {
        self.tuples_scanned.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds buffer-pool page faults charged to the tenant.
    pub fn add_pages_faulted(&self, n: u64) {
        self.pages_faulted.fetch_add(n, Ordering::Relaxed);
    }

    /// Records a query aborted by the tenant's tuple budget.
    pub fn record_budget_rejection(&self) {
        self.budget_rejections.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a protocol violation (malformed/oversized frame, unknown
    /// opcode or id).
    pub fn record_protocol_error(&self) {
        self.protocol_errors.fetch_add(1, Ordering::Relaxed);
    }

    /// A point-in-time copy of the counters.
    pub fn snapshot(&self, tenant: &str) -> TenantSnapshot {
        TenantSnapshot {
            tenant: tenant.to_owned(),
            connections: self.connections.load(Ordering::Relaxed),
            queries: self.queries.load(Ordering::Relaxed),
            rows_streamed: self.rows_streamed.load(Ordering::Relaxed),
            rows_inserted: self.rows_inserted.load(Ordering::Relaxed),
            tuples_scanned: self.tuples_scanned.load(Ordering::Relaxed),
            plan_cache_hits: self.plan_cache_hits.load(Ordering::Relaxed),
            plan_cache_misses: self.plan_cache_misses.load(Ordering::Relaxed),
            pages_faulted: self.pages_faulted.load(Ordering::Relaxed),
            budget_rejections: self.budget_rejections.load(Ordering::Relaxed),
            protocol_errors: self.protocol_errors.load(Ordering::Relaxed),
        }
    }
}

/// A point-in-time copy of one tenant's counters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TenantSnapshot {
    /// The tenant name from `HELLO`.
    pub tenant: String,
    /// Connections accepted for this tenant.
    pub connections: u64,
    /// `BIND`s admitted.
    pub queries: u64,
    /// Rows streamed over the wire.
    pub rows_streamed: u64,
    /// Rows inserted.
    pub rows_inserted: u64,
    /// Scan-produced tuples consumed.
    pub tuples_scanned: u64,
    /// Plan-cache hits at bind.
    pub plan_cache_hits: u64,
    /// Plan-cache misses at bind.
    pub plan_cache_misses: u64,
    /// Buffer-pool page faults charged.
    pub pages_faulted: u64,
    /// Queries aborted by the tuple budget.
    pub budget_rejections: u64,
    /// Protocol violations.
    pub protocol_errors: u64,
}

/// The server-wide metrics registry: per-tenant counters plus process-level
/// gauges.
#[derive(Debug)]
pub struct ServerMetrics {
    started: Instant,
    started_unix_ms: u64,
    connections_accepted: AtomicU64,
    tenants: Mutex<BTreeMap<String, Arc<TenantCounters>>>,
}

impl ServerMetrics {
    /// A fresh registry.  `started_unix_ms` is the wall-clock start time
    /// (milliseconds since the Unix epoch) reported verbatim in `STATS`;
    /// the *uptime* is measured on the monotonic clock.
    pub fn new(started_unix_ms: u64) -> Self {
        ServerMetrics {
            started: Instant::now(),
            started_unix_ms,
            connections_accepted: AtomicU64::new(0),
            tenants: Mutex::new(BTreeMap::new()),
        }
    }

    /// Milliseconds since the server started.
    pub fn uptime_ms(&self) -> u64 {
        self.started.elapsed().as_millis() as u64
    }

    /// Wall-clock start time (ms since the Unix epoch) as captured at bind.
    pub fn started_unix_ms(&self) -> u64 {
        self.started_unix_ms
    }

    /// Records one accepted connection (any tenant).
    pub fn record_connection(&self) {
        self.connections_accepted.fetch_add(1, Ordering::Relaxed);
    }

    /// Connections accepted since start.
    pub fn connections_accepted(&self) -> u64 {
        self.connections_accepted.load(Ordering::Relaxed)
    }

    /// The counters for `tenant`, created on first use.
    pub fn tenant(&self, tenant: &str) -> Arc<TenantCounters> {
        let mut tenants = self.tenants.lock();
        Arc::clone(
            tenants
                .entry(tenant.to_owned())
                .or_insert_with(|| Arc::new(TenantCounters::default())),
        )
    }

    /// Snapshots every tenant, in name order.
    pub fn snapshot(&self) -> Vec<TenantSnapshot> {
        self.tenants
            .lock()
            .iter()
            .map(|(name, counters)| counters.snapshot(name))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tenants_are_created_on_first_use_and_shared() {
        let m = ServerMetrics::new(0);
        let a = m.tenant("alice");
        a.record_query(false);
        a.record_query(true);
        a.add_rows_streamed(10);
        let again = m.tenant("alice");
        again.record_budget_rejection();
        let snaps = m.snapshot();
        assert_eq!(snaps.len(), 1);
        assert_eq!(snaps[0].queries, 2);
        assert_eq!(snaps[0].plan_cache_hits, 1);
        assert_eq!(snaps[0].plan_cache_misses, 1);
        assert_eq!(snaps[0].rows_streamed, 10);
        assert_eq!(snaps[0].budget_rejections, 1);
    }

    #[test]
    fn snapshot_is_name_ordered() {
        let m = ServerMetrics::new(7);
        m.tenant("zeta");
        m.tenant("alpha");
        let names: Vec<String> = m.snapshot().into_iter().map(|s| s.tenant).collect();
        assert_eq!(names, ["alpha", "zeta"]);
        assert_eq!(m.started_unix_ms(), 7);
    }
}
