//! Server configuration: the admission-control caps tenants negotiate
//! against at `HELLO`, plus transport limits.

use std::time::Duration;

use ranksql_common::{wire, MAX_THREADS};

/// Configuration for a [`Server`](crate::Server).
///
/// The `max_*` fields are *caps*, not grants: `HELLO` requests are clamped
/// into them and the clamped values are echoed back, so a tenant always
/// knows the envelope it actually runs under.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Address to bind (`127.0.0.1:0` by default: loopback, OS-chosen
    /// port — the right default for tests and examples; a deployment sets
    /// an explicit port).
    pub addr: String,
    /// Upper bound on a tenant's worker threads (further clamped by the
    /// engine-wide `MAX_THREADS`).
    pub max_threads: usize,
    /// Upper bound on a tenant's batched-pull chunk size.
    pub max_batch_size: usize,
    /// When set, every tenant runs under at most this tuple budget —
    /// including tenants that asked for no budget at all.  `None` leaves
    /// budgets entirely to the tenant's request.
    pub max_tuple_budget: Option<u64>,
    /// Cap on simultaneously open cursors per connection (each one pins
    /// epochs and holds live operator state).
    pub max_open_cursors: usize,
    /// Cap on prepared statements and live bindings per connection.
    pub max_statements: usize,
    /// Largest frame accepted or sent, in bytes.
    pub max_frame_len: u32,
    /// How often blocked reads and the accept loop wake up to check the
    /// shutdown flag.  Purely a liveness knob: it bounds shutdown latency,
    /// never query results.
    pub poll_interval: Duration,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_owned(),
            max_threads: MAX_THREADS,
            max_batch_size: 65_536,
            max_tuple_budget: None,
            max_open_cursors: ranksql_core::DEFAULT_MAX_OPEN_CURSORS,
            max_statements: 256,
            max_frame_len: wire::MAX_FRAME_LEN,
            poll_interval: Duration::from_millis(25),
        }
    }
}

impl ServerConfig {
    /// Sets the bind address.
    pub fn with_addr(mut self, addr: impl Into<String>) -> Self {
        self.addr = addr.into();
        self
    }

    /// Caps tenants' worker threads.
    pub fn with_max_threads(mut self, n: usize) -> Self {
        self.max_threads = n.clamp(1, MAX_THREADS);
        self
    }

    /// Caps tenants' batch size.
    pub fn with_max_batch_size(mut self, n: usize) -> Self {
        self.max_batch_size = n.max(1);
        self
    }

    /// Imposes a tuple budget on every tenant.
    pub fn with_max_tuple_budget(mut self, budget: u64) -> Self {
        self.max_tuple_budget = Some(budget);
        self
    }

    /// Caps open cursors per connection.
    pub fn with_max_open_cursors(mut self, n: usize) -> Self {
        self.max_open_cursors = n.max(1);
        self
    }

    /// Caps the accepted frame length.
    pub fn with_max_frame_len(mut self, n: u32) -> Self {
        self.max_frame_len = n.max(64);
        self
    }

    /// The effective tuple budget for a tenant that requested `requested`
    /// (`0` meaning "no budget, please"): the request clamped into the
    /// server cap.
    pub fn negotiate_budget(&self, requested: u64) -> Option<u64> {
        match (requested, self.max_tuple_budget) {
            (0, cap) => cap,
            (r, None) => Some(r),
            (r, Some(cap)) => Some(r.min(cap)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn budget_negotiation_clamps_into_the_cap() {
        let open = ServerConfig::default();
        assert_eq!(open.negotiate_budget(0), None);
        assert_eq!(open.negotiate_budget(500), Some(500));

        let capped = ServerConfig::default().with_max_tuple_budget(1_000);
        assert_eq!(capped.negotiate_budget(0), Some(1_000), "no escape hatch");
        assert_eq!(capped.negotiate_budget(500), Some(500));
        assert_eq!(capped.negotiate_budget(5_000), Some(1_000));
    }

    #[test]
    fn builder_clamps_degenerate_values() {
        let c = ServerConfig::default()
            .with_max_threads(0)
            .with_max_batch_size(0)
            .with_max_open_cursors(0)
            .with_max_frame_len(1);
        assert_eq!(c.max_threads, 1);
        assert_eq!(c.max_batch_size, 1);
        assert_eq!(c.max_open_cursors, 1);
        assert_eq!(c.max_frame_len, 64);
    }
}
