//! The per-connection protocol handler: one state machine per accepted
//! socket, running on its own scoped thread.
//!
//! Connection state is deliberately minimal and connection-local — a
//! [`Session`] built at `HELLO` (the tenant's negotiated settings), a map
//! of prepared statements, a map of live bindings, and a
//! [`CursorRegistry`] of server-held cursors.  Nothing here is shared
//! across connections except what the engine already shares safely: the
//! catalog and the bounded-LRU plan cache (the cross-tenant accelerator)
//! inside the `Database`, and the [`ServerMetrics`] counters.
//!
//! Error discipline: *protocol* failures (malformed payload, unknown id,
//! unknown opcode) are answered with an `ERROR` frame and the connection
//! lives on; an *oversized* frame is answered and then the connection is
//! closed (its length prefix was consumed, so the stream is no longer
//! framed); transport failures and clean EOF tear the connection down
//! silently.  Engine errors are mapped to stable wire codes — a tuple
//! budget abort becomes [`ErrorCode::BudgetExceeded`] and is counted as a
//! budget rejection for the tenant.

use std::collections::HashMap;
use std::io::{BufReader, Read};
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use ranksql_common::wire::{self, opcode, ErrorCode, PayloadReader, PayloadWriter, WireError};
use ranksql_common::{RankSqlError, Value, DEFAULT_BATCH_SIZE};
use ranksql_core::{BoundQuery, CursorRegistry, Database, PlanMode, PreparedQuery, Session};

use crate::config::ServerConfig;
use crate::metrics::{ServerMetrics, TenantCounters};

/// What the dispatcher wants done with the connection after a frame.
enum Flow {
    /// Keep serving frames.
    Continue,
    /// Close the connection (fatal protocol state or write failure).
    Hangup,
}

/// The outcome of one polling frame read.
enum FrameRead {
    /// A complete frame.
    Frame(u8, Vec<u8>),
    /// The shutdown flag fired while waiting.
    Shutdown,
    /// The peer closed cleanly between frames.
    Eof,
    /// The frame declared a length above the limit.
    Oversized { len: u32, max: u32 },
    /// A zero-length frame (framing survives; the body was empty).
    Malformed(String),
    /// Transport failure or mid-frame disconnect.
    Failed,
}

/// Reads one frame, waking up every read-timeout tick to check `shutdown`.
///
/// The socket has a read timeout, and `read` may deliver a frame in
/// arbitrary fragments, so this loop owns reassembly: a timeout *between*
/// frames is just an idle tick, a timeout *mid-frame* keeps collecting
/// (the bytes read so far are held in the local buffers, so nothing is
/// lost to the timeout).
fn read_frame_polling(r: &mut impl Read, max_len: u32, shutdown: &AtomicBool) -> FrameRead {
    let mut header = [0u8; 4];
    match read_full(r, &mut header, true, shutdown) {
        Fill::Done => {}
        Fill::Shutdown => return FrameRead::Shutdown,
        Fill::CleanEof => return FrameRead::Eof,
        Fill::Failed => return FrameRead::Failed,
    }
    let len = u32::from_be_bytes(header);
    if len == 0 {
        return FrameRead::Malformed("zero-length frame".into());
    }
    if len > max_len {
        return FrameRead::Oversized { len, max: max_len };
    }
    let mut body = vec![0u8; len as usize];
    match read_full(r, &mut body, false, shutdown) {
        Fill::Done => {}
        Fill::Shutdown => return FrameRead::Shutdown,
        // EOF or error mid-frame: the stream died inside a message.
        Fill::CleanEof | Fill::Failed => return FrameRead::Failed,
    }
    let opcode = body[0];
    body.drain(..1);
    FrameRead::Frame(opcode, body)
}

enum Fill {
    Done,
    Shutdown,
    CleanEof,
    Failed,
}

/// Fills `buf` completely, retrying through read timeouts.  `clean_eof` is
/// only reported when the peer closes before the *first* byte (EOF between
/// frames when the caller is reading a header).
fn read_full(r: &mut impl Read, buf: &mut [u8], at_boundary: bool, shutdown: &AtomicBool) -> Fill {
    let mut filled = 0usize;
    while filled < buf.len() {
        if shutdown.load(Ordering::Acquire) {
            return Fill::Shutdown;
        }
        match r.read(&mut buf[filled..]) {
            Ok(0) => {
                return if filled == 0 && at_boundary {
                    Fill::CleanEof
                } else {
                    Fill::Failed
                }
            }
            Ok(n) => filled += n,
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock
                        | std::io::ErrorKind::TimedOut
                        | std::io::ErrorKind::Interrupted
                ) => {}
            Err(_) => return Fill::Failed,
        }
    }
    Fill::Done
}

/// Per-connection protocol state.
struct Connection<'db, 'srv> {
    db: &'db Database,
    config: &'srv ServerConfig,
    metrics: &'srv ServerMetrics,
    writer: TcpStream,
    session: Option<Session<'db>>,
    tenant: Option<Arc<TenantCounters>>,
    tenant_name: String,
    statements: HashMap<u32, PreparedQuery<'db>>,
    bounds: HashMap<u32, BoundQuery<'db>>,
    cursors: CursorRegistry,
    next_statement: u32,
    next_bound: u32,
}

/// Serves one accepted connection to completion (EOF, fatal error, or
/// server shutdown).
pub(crate) fn serve_connection(
    stream: TcpStream,
    db: &Database,
    config: &ServerConfig,
    metrics: &ServerMetrics,
    shutdown: &AtomicBool,
) {
    let _ = stream.set_nodelay(true);
    if stream.set_read_timeout(Some(config.poll_interval)).is_err() {
        return; // cannot poll for shutdown: refuse the connection
    }
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(read_half);
    let mut conn = Connection {
        db,
        config,
        metrics,
        writer: stream,
        session: None,
        tenant: None,
        tenant_name: String::new(),
        statements: HashMap::new(),
        bounds: HashMap::new(),
        cursors: CursorRegistry::with_capacity_limit(config.max_open_cursors),
        next_statement: 0,
        next_bound: 0,
    };
    loop {
        match read_frame_polling(&mut reader, config.max_frame_len, shutdown) {
            FrameRead::Frame(op, payload) => match conn.dispatch(op, &payload) {
                Flow::Continue => {}
                Flow::Hangup => break,
            },
            FrameRead::Malformed(msg) => {
                conn.record_protocol_error();
                if !conn.send_error(ErrorCode::MalformedFrame, "wire", &msg) {
                    break;
                }
            }
            FrameRead::Oversized { len, max } => {
                conn.record_protocol_error();
                let msg = format!("frame of {len} bytes exceeds the {max}-byte limit");
                let _ = conn.send_error(ErrorCode::OversizedFrame, "wire", &msg);
                break; // length prefix consumed: the stream is unframed now
            }
            FrameRead::Shutdown | FrameRead::Eof | FrameRead::Failed => break,
        }
    }
}

impl<'db> Connection<'db, '_> {
    fn dispatch(&mut self, op: u8, payload: &[u8]) -> Flow {
        match op {
            opcode::HELLO => self.on_hello(payload),
            opcode::PREPARE
            | opcode::BIND
            | opcode::OPEN
            | opcode::FETCH
            | opcode::FETCH_MORE
            | opcode::CLOSE
            | opcode::STATS
            | opcode::INSERT
                if self.session.is_none() =>
            {
                self.record_protocol_error();
                self.reply_or_hangup(self.send_error_frame(
                    ErrorCode::AdmissionDenied,
                    "wire",
                    "HELLO must be the first request on a connection",
                ))
            }
            opcode::PREPARE => self.on_prepare(payload),
            opcode::BIND => self.on_bind(payload),
            opcode::OPEN => self.on_open(payload),
            opcode::FETCH => self.on_fetch(payload, false),
            opcode::FETCH_MORE => self.on_fetch(payload, true),
            opcode::CLOSE => self.on_close(payload),
            opcode::STATS => self.on_stats(payload),
            opcode::INSERT => self.on_insert(payload),
            other => {
                self.record_protocol_error();
                self.reply_or_hangup(self.send_error_frame(
                    ErrorCode::UnknownOpcode,
                    "wire",
                    &format!("unknown request opcode 0x{other:02x}"),
                ))
            }
        }
    }

    // ----- request handlers ------------------------------------------------

    fn on_hello(&mut self, payload: &[u8]) -> Flow {
        let parsed = (|| -> Result<(u16, String, u8, u16, u32, u64), WireError> {
            let mut r = PayloadReader::new(payload);
            let version = r.u16("protocol version")?;
            let tenant = r.str("tenant name")?;
            let mode = r.u8("plan mode")?;
            let threads = r.u16("threads")?;
            let batch = r.u32("batch size")?;
            let budget = r.u64("tuple budget")?;
            r.finish()?;
            Ok((version, tenant, mode, threads, batch, budget))
        })();
        let (version, tenant, mode_code, threads, batch, budget) = match parsed {
            Ok(p) => p,
            Err(e) => return self.malformed(&e),
        };
        if version != wire::PROTOCOL_VERSION {
            return self.reply_or_hangup(self.send_error_frame(
                ErrorCode::AdmissionDenied,
                "wire",
                &format!(
                    "protocol version {version} is not supported (server speaks {})",
                    wire::PROTOCOL_VERSION
                ),
            ));
        }
        let Some(mode) = decode_mode(mode_code) else {
            return self.reply_or_hangup(self.send_error_frame(
                ErrorCode::AdmissionDenied,
                "wire",
                &format!("unknown plan-mode code {mode_code}"),
            ));
        };
        // Admission control: clamp the request into the server's caps and
        // echo what was actually granted.
        let threads = if threads == 0 {
            ranksql_common::default_thread_count().min(self.config.max_threads)
        } else {
            (threads as usize).clamp(1, self.config.max_threads)
        };
        let batch = if batch == 0 {
            DEFAULT_BATCH_SIZE.min(self.config.max_batch_size)
        } else {
            (batch as usize).clamp(1, self.config.max_batch_size)
        };
        let budget = self.config.negotiate_budget(budget);
        let mut session = self
            .db
            .session()
            .with_mode(mode)
            .with_threads(threads)
            .with_batch_size(batch);
        if let Some(b) = budget {
            session = session.with_tuple_budget(b);
        }
        let backend = session.storage_backend();

        let counters = self.metrics.tenant(&tenant);
        counters.record_connection();
        self.tenant = Some(counters);
        self.tenant_name = tenant;
        self.session = Some(session);
        // A re-HELLO renegotiates the session; statements and cursors
        // prepared under the old settings do not carry over.
        self.statements.clear();
        self.bounds.clear();
        self.cursors = CursorRegistry::with_capacity_limit(self.config.max_open_cursors);

        let mut p = PayloadWriter::new();
        p.u16(wire::PROTOCOL_VERSION)
            .u8(mode_code)
            .u16(threads as u16)
            .u32(batch as u32)
            .u64(budget.unwrap_or(0))
            .str(backend.tag());
        self.reply_or_hangup(self.send(opcode::HELLO_OK, &p.into_vec()))
    }

    fn on_prepare(&mut self, payload: &[u8]) -> Flow {
        let sql = {
            let mut r = PayloadReader::new(payload);
            match r.str("sql text").and_then(|s| r.finish().map(|_| s)) {
                Ok(s) => s,
                Err(e) => return self.malformed(&e),
            }
        };
        if self.statements.len() >= self.config.max_statements {
            return self.reply_or_hangup(self.send_error_frame(
                ErrorCode::Execution,
                "execution",
                &format!(
                    "statement limit reached ({} prepared); a connection holds at most {}",
                    self.statements.len(),
                    self.config.max_statements
                ),
            ));
        }
        let Some(session) = &self.session else {
            return Flow::Hangup; // unreachable: dispatch gates on session
        };
        match session.prepare(&sql) {
            Ok(prepared) => {
                let id = self.next_statement;
                self.next_statement += 1;
                let slots = prepared.param_slots().len();
                self.statements.insert(id, prepared);
                let mut p = PayloadWriter::new();
                p.u32(id).u16(slots as u16);
                self.reply_or_hangup(self.send(opcode::PREPARED, &p.into_vec()))
            }
            Err(e) => self.engine_error(&e),
        }
    }

    fn on_bind(&mut self, payload: &[u8]) -> Flow {
        type BindRequest = (u32, Option<u64>, Vec<(u16, Value)>);
        let parsed = (|| -> Result<BindRequest, WireError> {
            let mut r = PayloadReader::new(payload);
            let stmt = r.u32("statement id")?;
            let has_k = r.u8("has-k flag")?;
            let k = r.u64("k")?;
            let n = r.u16("binding count")?;
            let mut values = Vec::with_capacity(n as usize);
            for _ in 0..n {
                let slot = r.u16("parameter slot")?;
                let value = r.value("parameter value")?;
                values.push((slot, value));
            }
            r.finish()?;
            Ok((stmt, (has_k != 0).then_some(k), values))
        })();
        let (stmt, k, values) = match parsed {
            Ok(p) => p,
            Err(e) => return self.malformed(&e),
        };
        let Some(prepared) = self.statements.get(&stmt) else {
            self.record_protocol_error();
            return self.reply_or_hangup(self.send_error_frame(
                ErrorCode::UnknownStatement,
                "wire",
                &format!("statement {stmt} is not prepared on this connection"),
            ));
        };
        // Bindings are transient handles (ids are monotonic); at the cap
        // the oldest is recycled rather than refused, so a long-lived
        // connection can bind indefinitely.  Open cursors are unaffected —
        // they own their execution state independently of the binding.
        if self.bounds.len() >= self.config.max_statements {
            if let Some(oldest) = self.bounds.keys().min().copied() {
                self.bounds.remove(&oldest);
            }
        }
        let mut params = ranksql_core::Params::new();
        for (slot, value) in values {
            params = params.set(slot as usize, value);
        }
        if let Some(k) = k {
            params = params.k(k as usize);
        }
        match prepared.bind(params) {
            Ok(bound) => {
                let hit = bound.cache_hit();
                if let Some(t) = &self.tenant {
                    t.record_query(hit);
                }
                let id = self.next_bound;
                self.next_bound += 1;
                self.bounds.insert(id, bound);
                let mut p = PayloadWriter::new();
                p.u32(id).u8(u8::from(hit));
                self.reply_or_hangup(self.send(opcode::BOUND, &p.into_vec()))
            }
            Err(e) => self.engine_error(&e),
        }
    }

    fn on_open(&mut self, payload: &[u8]) -> Flow {
        let bound_id = {
            let mut r = PayloadReader::new(payload);
            match r.u32("binding id").and_then(|v| r.finish().map(|_| v)) {
                Ok(v) => v,
                Err(e) => return self.malformed(&e),
            }
        };
        let Some(bound) = self.bounds.get(&bound_id) else {
            self.record_protocol_error();
            return self.reply_or_hangup(self.send_error_frame(
                ErrorCode::UnknownStatement,
                "wire",
                &format!("binding {bound_id} does not exist on this connection"),
            ));
        };
        let cursor = match bound.cursor() {
            Ok(c) => c,
            Err(e) => return self.engine_error(&e),
        };
        let columns: Vec<String> = cursor
            .schema()
            .fields()
            .iter()
            .map(|f| f.qualified_name())
            .collect();
        match self.cursors.open(cursor) {
            Ok(id) => {
                let mut p = PayloadWriter::new();
                p.u64(id).u16(columns.len() as u16);
                for c in &columns {
                    p.str(c);
                }
                self.reply_or_hangup(self.send(opcode::OPENED, &p.into_vec()))
            }
            Err(e) => self.reply_or_hangup(self.send_error_frame(
                ErrorCode::CursorLimit,
                e.category(),
                e.message(),
            )),
        }
    }

    fn on_fetch(&mut self, payload: &[u8], extend: bool) -> Flow {
        let parsed = {
            let mut r = PayloadReader::new(payload);
            let cursor = r.u64("cursor id");
            match cursor
                .and_then(|c| r.u32("fetch count").map(|k| (c, k)))
                .and_then(|v| r.finish().map(|_| v))
            {
                Ok(v) => v,
                Err(e) => return self.malformed(&e),
            }
        };
        let (cursor_id, k) = parsed;
        let Some(cursor) = self.cursors.get_mut(cursor_id) else {
            self.record_protocol_error();
            return self.reply_or_hangup(self.send_error_frame(
                ErrorCode::UnknownCursor,
                "wire",
                &format!("cursor {cursor_id} is not open on this connection"),
            ));
        };
        let scanned_before = cursor.tuples_scanned();
        let pulled = if extend {
            cursor.fetch_more(k as usize)
        } else {
            cursor.take(k as usize)
        };
        let rows = match pulled {
            Ok(rows) => rows,
            Err(e) => {
                // Account the work the failed pull still did.
                let scanned = cursor.tuples_scanned().saturating_sub(scanned_before);
                if let Some(t) = &self.tenant {
                    t.add_tuples_scanned(scanned);
                }
                return self.engine_error(&e);
            }
        };
        let done = cursor.is_exhausted();
        let mut p = PayloadWriter::new();
        p.u8(u8::from(done)).u32(rows.len() as u32);
        for row in &rows {
            let score = cursor.score(row);
            wire::encode_row(&mut p, score, row.tuple.id().parts(), row.tuple.values());
        }
        let scanned = cursor.tuples_scanned().saturating_sub(scanned_before);
        if let Some(t) = &self.tenant {
            t.add_tuples_scanned(scanned);
            t.add_rows_streamed(rows.len() as u64);
        }
        self.reply_or_hangup(self.send(opcode::ROWS, &p.into_vec()))
    }

    fn on_close(&mut self, payload: &[u8]) -> Flow {
        let cursor_id = {
            let mut r = PayloadReader::new(payload);
            match r.u64("cursor id").and_then(|v| r.finish().map(|_| v)) {
                Ok(v) => v,
                Err(e) => return self.malformed(&e),
            }
        };
        let Some(cursor) = self.cursors.close(cursor_id) else {
            self.record_protocol_error();
            return self.reply_or_hangup(self.send_error_frame(
                ErrorCode::UnknownCursor,
                "wire",
                &format!("cursor {cursor_id} is not open on this connection"),
            ));
        };
        if let Some(t) = &self.tenant {
            t.add_pages_faulted(cursor.pages_faulted());
        }
        let mut p = PayloadWriter::new();
        p.u64(cursor.rows_emitted());
        self.reply_or_hangup(self.send(opcode::CLOSED, &p.into_vec()))
    }

    fn on_stats(&mut self, payload: &[u8]) -> Flow {
        if !payload.is_empty() {
            return self.malformed(&WireError::Malformed("STATS takes no payload".into()));
        }
        let text = self.render_stats();
        let mut p = PayloadWriter::new();
        p.str(&text);
        self.reply_or_hangup(self.send(opcode::STATS_OK, &p.into_vec()))
    }

    fn on_insert(&mut self, payload: &[u8]) -> Flow {
        let parsed = (|| -> Result<(String, Vec<Vec<Value>>), WireError> {
            let mut r = PayloadReader::new(payload);
            let table = r.str("table name")?;
            let n = r.u32("row count")?;
            // No pre-allocation from the wire-controlled count: a hostile
            // header cannot reserve gigabytes before decoding fails.
            let mut rows = Vec::new();
            for _ in 0..n {
                let arity = r.u16("row arity")? as usize;
                let mut row = Vec::with_capacity(arity);
                for _ in 0..arity {
                    row.push(r.value("cell")?);
                }
                rows.push(row);
            }
            r.finish()?;
            Ok((table, rows))
        })();
        let (table, rows) = match parsed {
            Ok(p) => p,
            Err(e) => return self.malformed(&e),
        };
        match self.db.insert_batch(&table, rows) {
            Ok(n) => {
                if let Some(t) = &self.tenant {
                    t.add_rows_inserted(n as u64);
                }
                let mut p = PayloadWriter::new();
                p.u64(n as u64);
                self.reply_or_hangup(self.send(opcode::INSERTED, &p.into_vec()))
            }
            Err(e) => self.engine_error(&e),
        }
    }

    // ----- STATS rendering -------------------------------------------------

    /// The `key=value` observability report: server gauges, the shared
    /// plan cache, this tenant's counters, the negotiated session
    /// envelope, and one line per open cursor including its pinned MVCC
    /// epochs (`table_id@ordinal`).
    fn render_stats(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "server.protocol_version={}", wire::PROTOCOL_VERSION);
        let _ = writeln!(out, "server.uptime_ms={}", self.metrics.uptime_ms());
        let _ = writeln!(
            out,
            "server.started_unix_ms={}",
            self.metrics.started_unix_ms()
        );
        let _ = writeln!(
            out,
            "server.connections_accepted={}",
            self.metrics.connections_accepted()
        );
        let cache = self.db.plan_cache_stats();
        let _ = writeln!(out, "plan_cache.hits={}", cache.hits);
        let _ = writeln!(out, "plan_cache.misses={}", cache.misses);
        let _ = writeln!(out, "plan_cache.entries={}", cache.entries);
        if let Some(t) = &self.tenant {
            let s = t.snapshot(&self.tenant_name);
            let _ = writeln!(out, "tenant={}", s.tenant);
            let _ = writeln!(out, "tenant.connections={}", s.connections);
            let _ = writeln!(out, "tenant.queries={}", s.queries);
            let _ = writeln!(out, "tenant.rows_streamed={}", s.rows_streamed);
            let _ = writeln!(out, "tenant.rows_inserted={}", s.rows_inserted);
            let _ = writeln!(out, "tenant.tuples_scanned={}", s.tuples_scanned);
            let _ = writeln!(out, "tenant.plan_cache_hits={}", s.plan_cache_hits);
            let _ = writeln!(out, "tenant.plan_cache_misses={}", s.plan_cache_misses);
            let _ = writeln!(out, "tenant.pages_faulted={}", s.pages_faulted);
            let _ = writeln!(out, "tenant.budget_rejections={}", s.budget_rejections);
            let _ = writeln!(out, "tenant.protocol_errors={}", s.protocol_errors);
        }
        if let Some(session) = &self.session {
            let st = session.settings();
            let _ = writeln!(out, "session.mode={:?}", st.mode);
            let _ = writeln!(out, "session.threads={}", st.threads);
            let _ = writeln!(out, "session.batch_size={}", st.batch_size);
            let _ = writeln!(out, "session.tuple_budget={}", st.tuple_budget.unwrap_or(0));
            let _ = writeln!(out, "session.backend={}", st.backend.tag());
        }
        let _ = writeln!(out, "cursors.open={}", self.cursors.len());
        for (id, cursor) in self.cursors.iter() {
            let pins: Vec<String> = cursor
                .pinned_epochs()
                .iter()
                .map(|(table, ordinal)| format!("{table}@{ordinal}"))
                .collect();
            let _ = writeln!(out, "cursor[{id}].rows_emitted={}", cursor.rows_emitted());
            let _ = writeln!(
                out,
                "cursor[{id}].tuples_scanned={}",
                cursor.tuples_scanned()
            );
            let _ = writeln!(out, "cursor[{id}].exhausted={}", cursor.is_exhausted());
            let _ = writeln!(out, "cursor[{id}].pinned_epochs={}", pins.join(","));
        }
        out
    }

    // ----- reply plumbing --------------------------------------------------

    /// Writes a frame; `false` means the socket is gone.
    fn send(&self, op: u8, payload: &[u8]) -> bool {
        let mut w = &self.writer;
        wire::write_frame(&mut w, op, payload).is_ok()
    }

    fn send_error_frame(&self, code: ErrorCode, category: &str, message: &str) -> bool {
        let mut p = PayloadWriter::new();
        p.u16(code.as_u16()).str(category).str(message);
        self.send(opcode::ERROR, &p.into_vec())
    }

    /// Answer-and-continue, unless the write itself failed.
    fn send_error(&self, code: ErrorCode, category: &str, message: &str) -> bool {
        self.send_error_frame(code, category, message)
    }

    fn reply_or_hangup(&self, ok: bool) -> Flow {
        if ok {
            Flow::Continue
        } else {
            Flow::Hangup
        }
    }

    /// An engine error becomes an `ERROR` frame with a stable code; tuple
    /// budget aborts are additionally counted as tenant budget rejections
    /// (the admission-control signal the load harness asserts on).
    fn engine_error(&self, err: &RankSqlError) -> Flow {
        let code = ErrorCode::for_engine_error(err);
        if code == ErrorCode::BudgetExceeded {
            if let Some(t) = &self.tenant {
                t.record_budget_rejection();
            }
        }
        self.reply_or_hangup(self.send_error_frame(code, err.category(), err.message()))
    }

    /// A payload that failed to decode: `ERROR MalformedFrame`, connection
    /// survives (framing is intact — the whole frame was consumed).
    fn malformed(&self, err: &WireError) -> Flow {
        self.record_protocol_error();
        let (code, msg) = match err {
            WireError::Oversized { len, max } => (
                ErrorCode::OversizedFrame,
                format!("oversized: {len} > {max}"),
            ),
            other => (ErrorCode::MalformedFrame, other.to_string()),
        };
        self.reply_or_hangup(self.send_error(code, "wire", &msg))
    }

    fn record_protocol_error(&self) {
        if let Some(t) = &self.tenant {
            t.record_protocol_error();
        }
    }
}

/// Wire plan-mode code → engine [`PlanMode`].
fn decode_mode(code: u8) -> Option<PlanMode> {
    match code {
        wire::mode_code::RANK_AWARE => Some(PlanMode::RankAware),
        wire::mode_code::RANK_AWARE_EXHAUSTIVE => Some(PlanMode::RankAwareExhaustive),
        wire::mode_code::RANK_AWARE_RULE_BASED => Some(PlanMode::RankAwareRuleBased),
        wire::mode_code::TRADITIONAL => Some(PlanMode::Traditional),
        wire::mode_code::CANONICAL => Some(PlanMode::Canonical),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mode_codes_cover_every_plan_mode() {
        for (code, mode) in [
            (wire::mode_code::RANK_AWARE, PlanMode::RankAware),
            (
                wire::mode_code::RANK_AWARE_EXHAUSTIVE,
                PlanMode::RankAwareExhaustive,
            ),
            (
                wire::mode_code::RANK_AWARE_RULE_BASED,
                PlanMode::RankAwareRuleBased,
            ),
            (wire::mode_code::TRADITIONAL, PlanMode::Traditional),
            (wire::mode_code::CANONICAL, PlanMode::Canonical),
        ] {
            assert_eq!(decode_mode(code), Some(mode));
        }
        assert_eq!(decode_mode(200), None);
    }
}
