//! Workload and dataset generators for the RankSQL reproduction.
//!
//! Three data sources are provided:
//!
//! * [`micro`] — the tiny hand-crafted relations of Figure 2 (R, R′, S) used
//!   throughout the paper's running examples; handy for tests and for the
//!   quick-start example.
//! * [`synthetic`] — the Section 6 experimental workload: three tables
//!   (A, B, C) of equal size with join columns `jc1`, `jc2`, Boolean
//!   attributes of selectivity 0.4 on A and B, and 2 + 2 + 1 ranking
//!   predicates whose scores follow uniform, normal and cosine
//!   distributions, with a tunable per-evaluation cost.  The paper's query Q
//!   and its four hand-built execution plans (Figure 11) are derived from
//!   this module by `ranksql-bench`.
//! * [`trip`] — the Example 1 trip-planning scenario (Hotel, Restaurant,
//!   Museum) used by the `trip_planning` example.
//!
//! The crate also hosts [`client`], the blocking wire-protocol client for
//! the `ranksql-server` front end, shared by the load-generator example,
//! the server end-to-end tests and the server throughput bench.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod client;
pub mod db;
pub mod micro;
pub mod synthetic;
pub mod trip;

pub use client::{mode_code_for, stats_value, ClientError, ClientResult, WireClient};
pub use db::{catalog_into_database, catalog_into_database_with_backend};
pub use synthetic::{SyntheticConfig, SyntheticWorkload};
pub use trip::TripWorkload;
