//! The running-example micro relations of Figure 2.

use std::sync::Arc;

use ranksql_common::{DataType, Field, Schema, Value};
use ranksql_expr::{RankPredicate, RankingContext, ScoringFunction};
use ranksql_storage::{Catalog, Table};

/// Builds relation `R` of Figure 2(a): columns `a`, `b`, predicate scores
/// `p1`, `p2` for tuples r1–r3.
pub fn relation_r(catalog: &Catalog) -> Arc<Table> {
    let t = catalog
        .create_table(
            "R",
            Schema::new(vec![
                Field::new("a", DataType::Int64),
                Field::new("b", DataType::Int64),
                Field::new("p1", DataType::Float64),
                Field::new("p2", DataType::Float64),
            ]),
        )
        .expect("fresh catalog");
    for (a, b, p1, p2) in [(1, 2, 0.9, 0.65), (2, 3, 0.8, 0.5), (3, 4, 0.7, 0.7)] {
        t.insert(vec![
            Value::from(a),
            Value::from(b),
            Value::from(p1),
            Value::from(p2),
        ])
        .expect("arity matches");
    }
    t
}

/// Builds relation `R′` of Figure 2(b) (same schema as `R`).
pub fn relation_r_prime(catalog: &Catalog) -> Arc<Table> {
    let t = catalog
        .create_table(
            "Rp",
            Schema::new(vec![
                Field::new("a", DataType::Int64),
                Field::new("b", DataType::Int64),
                Field::new("p1", DataType::Float64),
                Field::new("p2", DataType::Float64),
            ]),
        )
        .expect("fresh catalog");
    for (a, b, p1, p2) in [(1, 2, 0.9, 0.65), (3, 4, 0.7, 0.7), (5, 1, 0.75, 0.6)] {
        t.insert(vec![
            Value::from(a),
            Value::from(b),
            Value::from(p1),
            Value::from(p2),
        ])
        .expect("arity matches");
    }
    t
}

/// Builds relation `S` of Figure 2(c): columns `a`, `c`, predicate scores
/// `p3`, `p4`, `p5` for tuples s1–s6.
pub fn relation_s(catalog: &Catalog) -> Arc<Table> {
    let t = catalog
        .create_table(
            "S",
            Schema::new(vec![
                Field::new("a", DataType::Int64),
                Field::new("c", DataType::Int64),
                Field::new("p3", DataType::Float64),
                Field::new("p4", DataType::Float64),
                Field::new("p5", DataType::Float64),
            ]),
        )
        .expect("fresh catalog");
    let rows = [
        (4, 3, 0.7, 0.8, 0.9),
        (1, 1, 0.9, 0.85, 0.8),
        (1, 2, 0.5, 0.45, 0.75),
        (4, 2, 0.4, 0.7, 0.95),
        (5, 1, 0.3, 0.9, 0.6),
        (2, 3, 0.25, 0.45, 0.9),
    ];
    for (a, c, p3, p4, p5) in rows {
        t.insert(vec![
            Value::from(a),
            Value::from(c),
            Value::from(p3),
            Value::from(p4),
            Value::from(p5),
        ])
        .expect("arity matches");
    }
    t
}

/// The scoring context `F1 = p1 + p2` over relation R (Example 2).
pub fn context_f1() -> Arc<RankingContext> {
    RankingContext::new(
        vec![
            RankPredicate::attribute("p1", "R.p1"),
            RankPredicate::attribute("p2", "R.p2"),
        ],
        ScoringFunction::Sum,
    )
}

/// The scoring context `F2 = p3 + p4 + p5` over relation S (Example 2).
pub fn context_f2() -> Arc<RankingContext> {
    RankingContext::new(
        vec![
            RankPredicate::attribute("p3", "S.p3"),
            RankPredicate::attribute("p4", "S.p4"),
            RankPredicate::attribute("p5", "S.p5"),
        ],
        ScoringFunction::Sum,
    )
}

/// The scoring context `F3 = p1 + p2 + p3 + p4 + p5` over R ⋈ S
/// (Figure 4(f)).
pub fn context_f3() -> Arc<RankingContext> {
    RankingContext::new(
        vec![
            RankPredicate::attribute("p1", "R.p1"),
            RankPredicate::attribute("p2", "R.p2"),
            RankPredicate::attribute("p3", "S.p3"),
            RankPredicate::attribute("p4", "S.p4"),
            RankPredicate::attribute("p5", "S.p5"),
        ],
        ScoringFunction::Sum,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relations_have_paper_cardinalities() {
        let cat = Catalog::new();
        assert_eq!(relation_r(&cat).row_count(), 3);
        assert_eq!(relation_r_prime(&cat).row_count(), 3);
        assert_eq!(relation_s(&cat).row_count(), 6);
        assert_eq!(cat.len(), 3);
    }

    #[test]
    fn contexts_have_expected_arity() {
        assert_eq!(context_f1().num_predicates(), 2);
        assert_eq!(context_f2().num_predicates(), 3);
        assert_eq!(context_f3().num_predicates(), 5);
    }

    #[test]
    fn figure2d_scores_check_out() {
        // F1{p1}[r1] = 0.9 + 1 = 1.9 (Figure 2(d)).
        let cat = Catalog::new();
        let r = relation_r(&cat);
        let ctx = context_f1();
        let t = r.tuple(0).unwrap();
        let score = ctx.predicate(0).evaluate(&t, r.schema()).unwrap();
        assert_eq!(score.value(), 0.9);
    }
}
