//! A blocking wire-protocol client for the `ranksql-server` front end.
//!
//! This is the driver side of the load harness: a thin, dependency-free
//! client over [`ranksql_common::wire`] that speaks the length-prefixed
//! protocol verb-for-verb (`HELLO` … `STATS`).  It lives in the workload
//! crate so examples, integration tests and benches can all share one
//! implementation — and so the server crate itself never links a client
//! (the protocol module in `ranksql-common` is the single shared truth).
//!
//! Every reply is decoded strictly: an unexpected opcode, a truncated
//! payload or trailing bytes is a [`ClientError::Protocol`].  A server
//! `ERROR` frame becomes [`ClientError::Server`] carrying the stable wire
//! code, so tests can assert on exact error categories.

use std::fmt;
use std::io::{BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};

use ranksql_common::wire::{
    self, decode_row, opcode, ErrorCode, PayloadReader, PayloadWriter, WireError, WireRow,
};
use ranksql_common::Value;
use ranksql_core::PlanMode;

/// Engine [`PlanMode`] → wire mode code (the `HELLO` encoding).
pub fn mode_code_for(mode: PlanMode) -> u8 {
    match mode {
        PlanMode::RankAware => wire::mode_code::RANK_AWARE,
        PlanMode::RankAwareExhaustive => wire::mode_code::RANK_AWARE_EXHAUSTIVE,
        PlanMode::RankAwareRuleBased => wire::mode_code::RANK_AWARE_RULE_BASED,
        PlanMode::Traditional => wire::mode_code::TRADITIONAL,
        PlanMode::Canonical => wire::mode_code::CANONICAL,
    }
}

/// A failure on the client side of the wire.
#[derive(Debug)]
pub enum ClientError {
    /// Transport or framing failure.
    Wire(WireError),
    /// The server answered with an `ERROR` frame.
    Server {
        /// Stable wire error code.
        code: ErrorCode,
        /// Engine error category (or `"wire"` for protocol errors).
        category: String,
        /// Human-readable message.
        message: String,
    },
    /// The reply violated the protocol (wrong opcode, bad payload).
    Protocol(String),
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Wire(e) => write!(f, "wire error: {e}"),
            ClientError::Server {
                code,
                category,
                message,
            } => write!(f, "server error {code:?} ({category}): {message}"),
            ClientError::Protocol(msg) => write!(f, "protocol violation: {msg}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<WireError> for ClientError {
    fn from(e: WireError) -> Self {
        ClientError::Wire(e)
    }
}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Wire(WireError::Io(e))
    }
}

/// Result alias for client calls.
pub type ClientResult<T> = Result<T, ClientError>;

/// The negotiated session envelope echoed by `HELLO_OK`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HelloReply {
    /// Protocol version the server speaks.
    pub version: u16,
    /// Granted plan-mode code (echo of the request).
    pub mode_code: u8,
    /// Granted worker threads (after clamping).
    pub threads: u16,
    /// Granted batch size (after clamping).
    pub batch_size: u32,
    /// Granted tuple budget (`0` = unlimited).
    pub tuple_budget: u64,
    /// Storage backend tag the session plans against.
    pub backend: String,
}

/// `PREPARED`: the server-side statement handle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PreparedReply {
    /// Statement id for `BIND`.
    pub statement_id: u32,
    /// Number of `?` parameter slots in the statement.
    pub param_slots: u16,
}

/// `BOUND`: the server-side binding handle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BoundReply {
    /// Binding id for `OPEN`.
    pub binding_id: u32,
    /// Whether the bind hit the shared plan cache.
    pub cache_hit: bool,
}

/// `OPENED`: a server-held cursor and its output schema.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OpenedReply {
    /// Cursor id for `FETCH`/`FETCH_MORE`/`CLOSE`.
    pub cursor_id: u64,
    /// Qualified output column names.
    pub columns: Vec<String>,
}

/// `ROWS`: one fetched chunk.
#[derive(Debug, Clone, PartialEq)]
pub struct RowsReply {
    /// Whether the stream has reported its end.
    pub done: bool,
    /// The rows, in rank order.
    pub rows: Vec<WireRow>,
}

/// A blocking client connection to a `ranksql-server`.
#[derive(Debug)]
pub struct WireClient {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
    max_frame_len: u32,
}

impl WireClient {
    /// Connects to `addr`.
    pub fn connect(addr: impl ToSocketAddrs) -> ClientResult<WireClient> {
        let stream = TcpStream::connect(addr)?;
        let _ = stream.set_nodelay(true);
        let reader = BufReader::new(stream.try_clone()?);
        Ok(WireClient {
            reader,
            writer: stream,
            max_frame_len: wire::MAX_FRAME_LEN,
        })
    }

    /// Sends a raw frame — the escape hatch the error-path tests use to
    /// produce malformed and oversized traffic on purpose.
    pub fn send_raw(&mut self, op: u8, payload: &[u8]) -> ClientResult<()> {
        wire::write_frame(&mut self.writer, op, payload)?;
        Ok(())
    }

    /// Writes raw bytes straight to the socket, bypassing framing
    /// entirely (for oversized-frame tests that forge their own length
    /// prefix).
    pub fn send_unframed(&mut self, bytes: &[u8]) -> ClientResult<()> {
        self.writer.write_all(bytes)?;
        self.writer.flush()?;
        Ok(())
    }

    /// Reads one reply frame (opcode + payload), without interpretation.
    pub fn read_reply(&mut self) -> ClientResult<(u8, Vec<u8>)> {
        Ok(wire::read_frame(&mut self.reader, self.max_frame_len)?)
    }

    /// Reads a reply and requires opcode `want`, turning `ERROR` frames
    /// into [`ClientError::Server`].
    fn expect_reply(&mut self, want: u8) -> ClientResult<Vec<u8>> {
        let (op, payload) = self.read_reply()?;
        if op == opcode::ERROR {
            let mut r = PayloadReader::new(&payload);
            let code = r.u16("error code")?;
            let category = r.str("error category")?;
            let message = r.str("error message")?;
            r.finish()?;
            return Err(ClientError::Server {
                code: ErrorCode::from_u16(code),
                category,
                message,
            });
        }
        if op != want {
            return Err(ClientError::Protocol(format!(
                "expected reply opcode 0x{want:02x}, got 0x{op:02x}"
            )));
        }
        Ok(payload)
    }

    /// `HELLO`: negotiate the session envelope.  `threads`/`batch_size` of
    /// `0` request server defaults; `tuple_budget` of `0` requests no
    /// budget (the server may impose one anyway).
    pub fn hello(
        &mut self,
        tenant: &str,
        mode: PlanMode,
        threads: u16,
        batch_size: u32,
        tuple_budget: u64,
    ) -> ClientResult<HelloReply> {
        let mut p = PayloadWriter::new();
        p.u16(wire::PROTOCOL_VERSION)
            .str(tenant)
            .u8(mode_code_for(mode))
            .u16(threads)
            .u32(batch_size)
            .u64(tuple_budget);
        self.send_raw(opcode::HELLO, &p.into_vec())?;
        let payload = self.expect_reply(opcode::HELLO_OK)?;
        let mut r = PayloadReader::new(&payload);
        let reply = HelloReply {
            version: r.u16("version")?,
            mode_code: r.u8("mode")?,
            threads: r.u16("threads")?,
            batch_size: r.u32("batch size")?,
            tuple_budget: r.u64("tuple budget")?,
            backend: r.str("backend tag")?,
        };
        r.finish()?;
        Ok(reply)
    }

    /// `PREPARE`: parse + optimize on the server, get a statement handle.
    pub fn prepare(&mut self, sql: &str) -> ClientResult<PreparedReply> {
        let mut p = PayloadWriter::new();
        p.str(sql);
        self.send_raw(opcode::PREPARE, &p.into_vec())?;
        let payload = self.expect_reply(opcode::PREPARED)?;
        let mut r = PayloadReader::new(&payload);
        let reply = PreparedReply {
            statement_id: r.u32("statement id")?,
            param_slots: r.u16("param slots")?,
        };
        r.finish()?;
        Ok(reply)
    }

    /// `BIND`: attach parameter values (and optionally a `k` override) to a
    /// prepared statement.
    pub fn bind(
        &mut self,
        statement_id: u32,
        k: Option<u64>,
        values: &[(u16, Value)],
    ) -> ClientResult<BoundReply> {
        let mut p = PayloadWriter::new();
        p.u32(statement_id)
            .u8(u8::from(k.is_some()))
            .u64(k.unwrap_or(0))
            .u16(values.len() as u16);
        for (slot, value) in values {
            p.u16(*slot).value(value);
        }
        self.send_raw(opcode::BIND, &p.into_vec())?;
        let payload = self.expect_reply(opcode::BOUND)?;
        let mut r = PayloadReader::new(&payload);
        let reply = BoundReply {
            binding_id: r.u32("binding id")?,
            cache_hit: r.u8("cache hit")? != 0,
        };
        r.finish()?;
        Ok(reply)
    }

    /// `OPEN`: materialize a server-held cursor from a binding.
    pub fn open(&mut self, binding_id: u32) -> ClientResult<OpenedReply> {
        let mut p = PayloadWriter::new();
        p.u32(binding_id);
        self.send_raw(opcode::OPEN, &p.into_vec())?;
        let payload = self.expect_reply(opcode::OPENED)?;
        let mut r = PayloadReader::new(&payload);
        let cursor_id = r.u64("cursor id")?;
        let ncols = r.u16("column count")?;
        let mut columns = Vec::with_capacity(ncols as usize);
        for _ in 0..ncols {
            columns.push(r.str("column name")?);
        }
        r.finish()?;
        Ok(OpenedReply { cursor_id, columns })
    }

    fn fetch_inner(&mut self, op: u8, cursor_id: u64, k: u32) -> ClientResult<RowsReply> {
        let mut p = PayloadWriter::new();
        p.u64(cursor_id).u32(k);
        self.send_raw(op, &p.into_vec())?;
        let payload = self.expect_reply(opcode::ROWS)?;
        let mut r = PayloadReader::new(&payload);
        let done = r.u8("done flag")? != 0;
        let n = r.u32("row count")?;
        let mut rows = Vec::new();
        for _ in 0..n {
            rows.push(decode_row(&mut r)?);
        }
        r.finish()?;
        Ok(RowsReply { done, rows })
    }

    /// `FETCH k`: pull up to `k` more rows of the cursor's current answer.
    pub fn fetch(&mut self, cursor_id: u64, k: u32) -> ClientResult<RowsReply> {
        self.fetch_inner(opcode::FETCH, cursor_id, k)
    }

    /// `FETCH_MORE k`: extend the cursor's top-k limit by `k` and stream
    /// the extra rows — no re-execution, same pinned epochs.
    pub fn fetch_more(&mut self, cursor_id: u64, k: u32) -> ClientResult<RowsReply> {
        self.fetch_inner(opcode::FETCH_MORE, cursor_id, k)
    }

    /// `CLOSE`: release a cursor; returns its lifetime rows-emitted count.
    pub fn close(&mut self, cursor_id: u64) -> ClientResult<u64> {
        let mut p = PayloadWriter::new();
        p.u64(cursor_id);
        self.send_raw(opcode::CLOSE, &p.into_vec())?;
        let payload = self.expect_reply(opcode::CLOSED)?;
        let mut r = PayloadReader::new(&payload);
        let rows = r.u64("rows emitted")?;
        r.finish()?;
        Ok(rows)
    }

    /// `STATS`: the server's `key=value` observability report for this
    /// connection's tenant.
    pub fn stats(&mut self) -> ClientResult<String> {
        self.send_raw(opcode::STATS, &[])?;
        let payload = self.expect_reply(opcode::STATS_OK)?;
        let mut r = PayloadReader::new(&payload);
        let text = r.str("stats text")?;
        r.finish()?;
        Ok(text)
    }

    /// `INSERT`: append rows to a table; returns the number inserted.
    pub fn insert(&mut self, table: &str, rows: &[Vec<Value>]) -> ClientResult<u64> {
        let mut p = PayloadWriter::new();
        p.str(table).u32(rows.len() as u32);
        for row in rows {
            p.u16(row.len() as u16);
            for v in row {
                p.value(v);
            }
        }
        self.send_raw(opcode::INSERT, &p.into_vec())?;
        let payload = self.expect_reply(opcode::INSERTED)?;
        let mut r = PayloadReader::new(&payload);
        let n = r.u64("rows inserted")?;
        r.finish()?;
        Ok(n)
    }

    /// Drains a freshly opened cursor in `chunk`-sized `FETCH`es and
    /// returns every row, for whole-result fingerprint comparisons.
    pub fn drain(&mut self, cursor_id: u64, chunk: u32) -> ClientResult<Vec<WireRow>> {
        let chunk = chunk.max(1);
        let mut out = Vec::new();
        loop {
            let reply = self.fetch(cursor_id, chunk)?;
            let got = reply.rows.len();
            out.extend(reply.rows);
            if reply.done || got == 0 {
                return Ok(out);
            }
        }
    }
}

/// Reads a `key=value` line out of a `STATS` report; `None` when absent.
pub fn stats_value<'a>(report: &'a str, key: &str) -> Option<&'a str> {
    report.lines().find_map(|line| {
        let (k, v) = line.split_once('=')?;
        (k == key).then_some(v)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_lines_parse_by_exact_key() {
        let report = "a=1\nplan_cache.hits=42\nplan_cache.hits_total=9\n";
        assert_eq!(stats_value(report, "plan_cache.hits"), Some("42"));
        assert_eq!(stats_value(report, "plan_cache"), None);
        assert_eq!(stats_value(report, "missing"), None);
    }

    #[test]
    fn every_plan_mode_has_a_wire_code() {
        let codes: Vec<u8> = [
            PlanMode::RankAware,
            PlanMode::RankAwareExhaustive,
            PlanMode::RankAwareRuleBased,
            PlanMode::Traditional,
            PlanMode::Canonical,
        ]
        .into_iter()
        .map(mode_code_for)
        .collect();
        let mut deduped = codes.clone();
        deduped.sort_unstable();
        deduped.dedup();
        assert_eq!(deduped.len(), codes.len(), "codes must be distinct");
    }
}
