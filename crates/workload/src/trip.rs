//! The Example 1 trip-planning scenario: Hotel, Restaurant, Museum.
//!
//! Amy wants a hotel, an Italian restaurant and a museum such that the hotel
//! plus restaurant cost less than $100 and the restaurant and museum share an
//! area, ranked by `cheap(h.price) + close(h.addr, r.addr) +
//! related(m.collection, "dinosaur")`.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use ranksql_algebra::RankQuery;
use ranksql_common::{DataType, Field, Result, Schema, Value};
use ranksql_expr::{
    BoolExpr, CompareOp, RankPredicate, RankingContext, ScalarExpr, ScoringFunction,
};
use ranksql_storage::Catalog;

/// Size and randomness knobs for the trip dataset.
#[derive(Debug, Clone)]
pub struct TripConfig {
    /// Number of hotels.
    pub hotels: usize,
    /// Number of restaurants.
    pub restaurants: usize,
    /// Number of museums.
    pub museums: usize,
    /// Number of city areas restaurants/museums fall into.
    pub areas: i64,
    /// Number of results Amy wants.
    pub k: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for TripConfig {
    fn default() -> Self {
        TripConfig {
            hotels: 200,
            restaurants: 150,
            museums: 60,
            areas: 12,
            k: 5,
            seed: 7,
        }
    }
}

/// The generated trip-planning workload.
pub struct TripWorkload {
    /// Catalog with the `Hotel`, `Restaurant` and `Museum` tables.
    pub catalog: Catalog,
    /// The Example 1 query.
    pub query: RankQuery,
}

impl TripWorkload {
    /// Copies the generated tables into a fresh [`ranksql_core::Database`]
    /// so the workload can be driven through the Session/prepared-statement
    /// API.
    pub fn database(&self) -> Result<ranksql_core::Database> {
        crate::db::catalog_into_database(&self.catalog)
    }

    /// Like [`Self::database`] but planning against `backend`; with the
    /// columnar backend both layouts are populated (rows inserted, columnar
    /// projections + zone maps pre-built).
    pub fn database_with_backend(
        &self,
        backend: ranksql_storage::StorageBackend,
    ) -> Result<ranksql_core::Database> {
        crate::db::catalog_into_database_with_backend(&self.catalog, backend)
    }

    /// Generates the trip-planning dataset and query.
    pub fn generate(config: TripConfig) -> Result<Self> {
        let catalog = Catalog::new();
        let mut rng = StdRng::seed_from_u64(config.seed);

        let hotel = catalog.create_table(
            "Hotel",
            Schema::new(vec![
                Field::new("id", DataType::Int64),
                Field::new("price", DataType::Float64),
                Field::new("addr", DataType::Float64), // position on a 0..100 street grid
            ]),
        )?;
        for i in 0..config.hotels {
            hotel.insert(vec![
                Value::from(i as i64),
                Value::from(rng.gen_range(30.0..200.0_f64)),
                Value::from(rng.gen_range(0.0..100.0_f64)),
            ])?;
        }

        let cuisines = ["Italian", "French", "Thai", "Mexican"];
        let restaurant = catalog.create_table(
            "Restaurant",
            Schema::new(vec![
                Field::new("id", DataType::Int64),
                Field::new("cuisine", DataType::Utf8),
                Field::new("price", DataType::Float64),
                Field::new("addr", DataType::Float64),
                Field::new("area", DataType::Int64),
            ]),
        )?;
        for i in 0..config.restaurants {
            restaurant.insert(vec![
                Value::from(i as i64),
                Value::from(cuisines[rng.gen_range(0..cuisines.len())]),
                Value::from(rng.gen_range(10.0..80.0_f64)),
                Value::from(rng.gen_range(0.0..100.0_f64)),
                Value::from(rng.gen_range(0..config.areas)),
            ])?;
        }

        let museum = catalog.create_table(
            "Museum",
            Schema::new(vec![
                Field::new("id", DataType::Int64),
                Field::new("area", DataType::Int64),
                // Pre-computed IR-style relevance of the collection to
                // "dinosaur" (what the paper's `related` UDF would return).
                Field::new("dino_relevance", DataType::Float64),
            ]),
        )?;
        for i in 0..config.museums {
            museum.insert(vec![
                Value::from(i as i64),
                Value::from(rng.gen_range(0..config.areas)),
                Value::from(rng.gen::<f64>()),
            ])?;
        }

        // Ranking predicates:
        //   p1 = cheap(h.price)            = (200 - price) / 200
        //   p2 = close(h.addr, r.addr)     = 1 - |h.addr - r.addr| / 100
        //   p3 = related(m.collection, ..) = pre-computed relevance column
        let p1 = RankPredicate::expression(
            "cheap",
            ScalarExpr::lit(200.0)
                .sub(ScalarExpr::col("Hotel.price"))
                .div(ScalarExpr::lit(200.0)),
            2,
        );
        let diff = ScalarExpr::col("Hotel.addr").sub(ScalarExpr::col("Restaurant.addr"));
        // |x| built as x*x / 100^2 — a smooth distance penalty in [0,1].
        let p2 = RankPredicate::expression(
            "close",
            ScalarExpr::lit(1.0).sub(diff.clone().mul(diff).div(ScalarExpr::lit(10_000.0))),
            5,
        );
        let p3 = RankPredicate::attribute_with_cost("related", "Museum.dino_relevance", 8);

        let ranking = RankingContext::new(vec![p1, p2, p3], ScoringFunction::Sum);
        let query = RankQuery::new(
            vec!["Hotel".into(), "Restaurant".into(), "Museum".into()],
            vec![
                // c1: Italian restaurants only.
                BoolExpr::compare(
                    ScalarExpr::col("Restaurant.cuisine"),
                    CompareOp::Eq,
                    ScalarExpr::lit("Italian"),
                ),
                // c2: hotel + restaurant under $100.
                BoolExpr::compare(
                    ScalarExpr::col("Hotel.price").add(ScalarExpr::col("Restaurant.price")),
                    CompareOp::Lt,
                    ScalarExpr::lit(100.0),
                ),
                // c3: restaurant and museum in the same area.
                BoolExpr::col_eq_col("Restaurant.area", "Museum.area"),
            ],
            ranking,
            config.k,
        );
        Ok(TripWorkload { catalog, query })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_has_three_tables_and_four_predicate_kinds() {
        let w = TripWorkload::generate(TripConfig::default()).unwrap();
        assert_eq!(w.catalog.len(), 3);
        assert_eq!(w.query.tables.len(), 3);
        // Boolean-selection (cuisine), Boolean-join (price sum, area) and
        // rank-selection (cheap, related) + rank-join (close) predicates all
        // appear, as in Example 1.
        assert_eq!(w.query.bool_predicates.len(), 3);
        assert!(w.query.bool_predicates[0].is_selection());
        assert!(!w.query.bool_predicates[1].is_selection());
        assert_eq!(w.query.num_rank_predicates(), 3);
        assert!(!w.query.ranking.predicate(0).is_join_predicate());
        assert!(w.query.ranking.predicate(1).is_join_predicate());
    }

    #[test]
    fn generation_is_deterministic() {
        let a = TripWorkload::generate(TripConfig::default()).unwrap();
        let b = TripWorkload::generate(TripConfig::default()).unwrap();
        let ra = a.catalog.table("Restaurant").unwrap().scan();
        let rb = b.catalog.table("Restaurant").unwrap().scan();
        assert_eq!(ra.len(), rb.len());
        for (x, y) in ra.iter().zip(rb.iter()) {
            assert_eq!(x.values(), y.values());
        }
    }

    #[test]
    fn small_configs_work() {
        let cfg = TripConfig {
            hotels: 10,
            restaurants: 10,
            museums: 5,
            areas: 3,
            k: 2,
            seed: 1,
        };
        let w = TripWorkload::generate(cfg).unwrap();
        assert_eq!(w.catalog.table("Museum").unwrap().row_count(), 5);
        assert_eq!(w.query.k, 2);
    }
}
