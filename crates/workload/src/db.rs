//! Loading generated workloads into a [`Database`] for the Session API.
//!
//! The generators build bare [`Catalog`]s (that is all the executor-level
//! experiments need), but examples and servers want the full
//! `Database::session().prepare(..).bind(..).cursor()` surface.  This module
//! bridges the two: it copies a generated catalog's tables into a fresh
//! [`Database`], stripping the generator's field qualifiers (the database
//! re-qualifies columns by table name on its own).

use ranksql_common::{Field, Result, Schema};
use ranksql_core::Database;
use ranksql_storage::{Catalog, StorageBackend};

/// Copies every table of a generated catalog into a fresh [`Database`]
/// (row backend).
pub fn catalog_into_database(catalog: &Catalog) -> Result<Database> {
    catalog_into_database_with_backend(catalog, StorageBackend::Row)
}

/// Copies every table of a generated catalog into a fresh [`Database`]
/// planning against `backend`.  With [`StorageBackend::Columnar`] the
/// loader *populates both layouts*: rows are inserted into the heap tables
/// and every columnar projection (with its zone maps) is pre-built, so the
/// first query pays no projection-build latency.
pub fn catalog_into_database_with_backend(
    catalog: &Catalog,
    backend: StorageBackend,
) -> Result<Database> {
    let db = Database::new().with_storage_backend(backend);
    for name in catalog.table_names() {
        let table = catalog.table(&name)?;
        let schema = Schema::new(
            table
                .schema()
                .fields()
                .iter()
                .map(|f| Field::new(f.name.clone(), f.data_type))
                .collect(),
        );
        let created = db.create_table(&name, schema)?;
        created.insert_batch(table.scan().into_iter().map(|t| t.values().to_vec()))?;
    }
    if backend.is_columnar() {
        db.prebuild_columnar()?;
    }
    Ok(db)
}

#[cfg(test)]
mod tests {

    use crate::trip::{TripConfig, TripWorkload};

    #[test]
    fn generated_catalog_round_trips_into_a_database() {
        let workload = TripWorkload::generate(TripConfig {
            hotels: 20,
            restaurants: 15,
            museums: 10,
            ..TripConfig::default()
        })
        .unwrap();
        let db = workload.database().unwrap();
        for name in workload.catalog.table_names() {
            assert_eq!(
                db.catalog().table(&name).unwrap().row_count(),
                workload.catalog.table(&name).unwrap().row_count(),
                "{name}"
            );
        }
        // The generated query runs through the Session API (the tiny
        // dataset may legitimately produce < k, even zero, matches).
        let result = db.session().execute(&workload.query).unwrap();
        assert!(result.rows.len() <= workload.query.k);
    }
}
