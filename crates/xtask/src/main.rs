//! Workspace automation harness — the standard `cargo xtask` pattern: a
//! plain workspace binary (aliased in `.cargo/config.toml`) so repo-wide
//! checks need nothing but the Rust toolchain.
//!
//! `cargo xtask lint` runs the source-level checks the compiler cannot:
//!
//! 1. **no-panic**: non-test library code contains no `.unwrap()` /
//!    `.expect(` / `panic!(` / `unreachable!(` / `todo!(` /
//!    `unimplemented!(` beyond the per-file budgets in
//!    `crates/xtask/lint-allowlist.txt` (audited survivors).  The budget is
//!    exact in both directions: a *new* panic site fails, and a *removed*
//!    one fails too until the allowlist is re-tightened — run
//!    `cargo xtask lint --write-allowlist` after an audit.
//! 2. **safety-comments**: every `unsafe` token in library code is
//!    preceded by a `// SAFETY:` comment (currently vacuous: the whole
//!    workspace is `#![forbid(unsafe_code)]`, which check 4 enforces).
//! 3. **executor-determinism**: no `SystemTime`, `thread_rng` or
//!    `rand::random` in the executor's kernels — results must be a pure
//!    function of the plan and the data, or the equivalence proptests and
//!    BENCH numbers stop being reproducible.
//! 4. **forbid-unsafe**: every first-party crate root carries
//!    `#![forbid(unsafe_code)]`.
//! 5. **physicalop-freshness**: every `PhysicalOp` variant appears in
//!    `PhysicalOp::map_children` *and* in the `ranksql-verify` physical
//!    walk, so a new operator cannot silently bypass rewrite plumbing or
//!    validation.  (Inside each of those matches the compiler enforces
//!    exhaustiveness; this check enforces that the *sites themselves* name
//!    every variant rather than hiding behind a wildcard.)
//!
//! Comments, string literals and `#[cfg(test)] mod` bodies are stripped
//! before token scanning, so prose about `unwrap` or asserts inside unit
//! tests never trip the gate.

#![forbid(unsafe_code)]

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::fs;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

/// Crates under `crates/` whose sources are *exempt* from the no-panic
/// budget: the bench harness asserts freely by design, and this harness is
/// a dev tool, not library code shipped in the engine.
const PANIC_EXEMPT_CRATES: &[&str] = &["bench", "xtask"];

const PANIC_TOKENS: &[&str] = &[
    ".unwrap()",
    ".expect(",
    "panic!(",
    "unreachable!(",
    "todo!(",
    "unimplemented!(",
];

const DETERMINISM_TOKENS: &[&str] = &["SystemTime", "thread_rng", "rand::random"];

/// Directories under the determinism lint (query results must be a pure
/// function of plan and data) and, per directory, the files exempt from it.
/// The server's listener is the deliberate edge of the system: it owns the
/// socket-readiness timeouts and the single wall-clock reading (`STATS`
/// start time) — nothing downstream of it may touch either, which is
/// exactly what scanning the rest of `crates/server/src` enforces.
const DETERMINISM_SCOPES: &[(&str, &[&str])] = &[
    ("crates/executor/src", &[]),
    ("crates/server/src", &["crates/server/src/listener.rs"]),
];

const ALLOWLIST: &str = "crates/xtask/lint-allowlist.txt";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let root = repo_root();
    match args.first().map(String::as_str) {
        Some("lint") => {
            let write = args.iter().any(|a| a == "--write-allowlist");
            lint(&root, write)
        }
        _ => {
            eprintln!("usage: cargo xtask lint [--write-allowlist]");
            ExitCode::FAILURE
        }
    }
}

/// The workspace root: two levels up from this crate's manifest.
fn repo_root() -> PathBuf {
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    manifest
        .parent()
        .and_then(Path::parent)
        .map(Path::to_path_buf)
        .unwrap_or(manifest)
}

fn lint(root: &Path, write_allowlist: bool) -> ExitCode {
    let mut errors: Vec<String> = Vec::new();

    let files = library_sources(root);
    let panic_counts = check_no_panic(root, &files, &mut errors, write_allowlist);
    check_safety_comments(&files, &mut errors);
    check_executor_determinism(root, &mut errors);
    check_forbid_unsafe(root, &mut errors);
    check_physicalop_freshness(root, &mut errors);

    if write_allowlist {
        let path = root.join(ALLOWLIST);
        match write_allowlist_file(&path, &panic_counts) {
            Ok(()) => println!("wrote {} ({} entries)", ALLOWLIST, panic_counts.len()),
            Err(e) => errors.push(format!("cannot write {ALLOWLIST}: {e}")),
        }
    }

    if errors.is_empty() {
        println!(
            "xtask lint: all checks passed ({} library files)",
            files.len()
        );
        ExitCode::SUCCESS
    } else {
        eprintln!("xtask lint: {} error(s)", errors.len());
        for e in &errors {
            eprintln!("  error: {e}");
        }
        ExitCode::FAILURE
    }
}

/// Every first-party library source file: `src/` of the umbrella crate and
/// of each crate under `crates/` (vendored dependencies are not ours to
/// lint).  Files are returned with repo-relative paths.
fn library_sources(root: &Path) -> Vec<(String, String)> {
    let mut files = Vec::new();
    collect_rs(&root.join("src"), root, &mut files);
    if let Ok(entries) = fs::read_dir(root.join("crates")) {
        let mut dirs: Vec<PathBuf> = entries.flatten().map(|e| e.path()).collect();
        dirs.sort();
        for dir in dirs {
            collect_rs(&dir.join("src"), root, &mut files);
        }
    }
    files
}

fn collect_rs(dir: &Path, root: &Path, out: &mut Vec<(String, String)>) {
    let Ok(entries) = fs::read_dir(dir) else {
        return;
    };
    let mut paths: Vec<PathBuf> = entries.flatten().map(|e| e.path()).collect();
    paths.sort();
    for path in paths {
        if path.is_dir() {
            collect_rs(&path, root, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            if let Ok(text) = fs::read_to_string(&path) {
                let rel = path
                    .strip_prefix(root)
                    .unwrap_or(&path)
                    .to_string_lossy()
                    .replace('\\', "/");
                out.push((rel, text));
            }
        }
    }
}

fn is_panic_exempt(rel: &str) -> bool {
    PANIC_EXEMPT_CRATES
        .iter()
        .any(|c| rel.starts_with(&format!("crates/{c}/")))
}

/// Replaces comments and string/char literals with spaces (newlines kept,
/// so line numbers survive).  Handles nested `/* */`, raw strings up to
/// `r###"`, and escapes; this is a lint heuristic, not a full lexer.
fn strip_comments_and_strings(src: &str) -> String {
    let b = src.as_bytes();
    let mut out = vec![b' '; b.len()];
    // Keep newlines for line numbering.
    for (i, &c) in b.iter().enumerate() {
        if c == b'\n' {
            out[i] = b'\n';
        }
    }
    let mut i = 0;
    while i < b.len() {
        match b[i] {
            b'/' if b.get(i + 1) == Some(&b'/') => {
                while i < b.len() && b[i] != b'\n' {
                    i += 1;
                }
            }
            b'/' if b.get(i + 1) == Some(&b'*') => {
                let mut depth = 1usize;
                i += 2;
                while i < b.len() && depth > 0 {
                    if b[i] == b'/' && b.get(i + 1) == Some(&b'*') {
                        depth += 1;
                        i += 2;
                    } else if b[i] == b'*' && b.get(i + 1) == Some(&b'/') {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
            }
            b'"' => {
                out[i] = b'"';
                i += 1;
                while i < b.len() {
                    if b[i] == b'\\' {
                        i += 2;
                    } else if b[i] == b'"' {
                        out[i] = b'"';
                        i += 1;
                        break;
                    } else {
                        i += 1;
                    }
                }
            }
            b'r' if matches!(b.get(i + 1), Some(b'"' | b'#'))
                && (i == 0 || !is_ident_byte(b[i - 1])) =>
            {
                // Raw string r"..." / r#"..."# / r##"..."##.
                let mut hashes = 0usize;
                let mut j = i + 1;
                while b.get(j) == Some(&b'#') {
                    hashes += 1;
                    j += 1;
                }
                if b.get(j) == Some(&b'"') {
                    j += 1;
                    'raw: while j < b.len() {
                        if b[j] == b'"' {
                            let mut k = j + 1;
                            let mut seen = 0usize;
                            while seen < hashes && b.get(k) == Some(&b'#') {
                                seen += 1;
                                k += 1;
                            }
                            if seen == hashes {
                                j = k;
                                break 'raw;
                            }
                        }
                        j += 1;
                    }
                    i = j;
                } else {
                    out[i] = b[i];
                    i += 1;
                }
            }
            b'\'' => {
                // Char literal or lifetime; copy a short window verbatim —
                // a lifetime like 'a has no closing quote.
                out[i] = b'\'';
                if b.get(i + 1) == Some(&b'\\') && b.get(i + 3) == Some(&b'\'') {
                    i += 4;
                } else if b.get(i + 2) == Some(&b'\'') {
                    i += 3;
                } else {
                    i += 1;
                }
            }
            c => {
                out[i] = c;
                i += 1;
            }
        }
    }
    String::from_utf8(out).unwrap_or_default()
}

fn is_ident_byte(c: u8) -> bool {
    c.is_ascii_alphanumeric() || c == b'_'
}

/// Blanks the bodies of `#[cfg(test)] mod … { … }` blocks (unit tests may
/// panic freely) in already comment-stripped source.
fn blank_test_mods(stripped: &str) -> String {
    let mut out = stripped.as_bytes().to_vec();
    let b = stripped.as_bytes();
    let mut search = 0usize;
    while let Some(pos) = stripped[search..].find("#[cfg(test)]") {
        let attr = search + pos;
        // The next item must be a `mod` (possibly after more attributes).
        let mut i = attr + "#[cfg(test)]".len();
        while i < b.len() && (b[i].is_ascii_whitespace() || b[i] == b'#') {
            if b[i] == b'#' {
                // Skip a further attribute to its closing bracket.
                while i < b.len() && b[i] != b']' {
                    i += 1;
                }
            }
            i += 1;
        }
        if stripped[i..].starts_with("mod") {
            if let Some(open_rel) = stripped[i..].find('{') {
                let open = i + open_rel;
                let mut depth = 0usize;
                let mut j = open;
                while j < b.len() {
                    match b[j] {
                        b'{' => depth += 1,
                        b'}' => {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        _ => {}
                    }
                    j += 1;
                }
                let end = j.min(out.len());
                for cell in out.iter_mut().take(end).skip(open) {
                    if *cell != b'\n' {
                        *cell = b' ';
                    }
                }
                search = j.min(b.len());
                continue;
            }
        }
        search = attr + 1;
    }
    String::from_utf8(out).unwrap_or_default()
}

fn count_tokens(text: &str, tokens: &[&str]) -> usize {
    tokens.iter().map(|t| text.matches(t).count()).sum()
}

/// Check 1: the no-panic budget.  Returns the actual per-file counts so
/// `--write-allowlist` can regenerate the file.
fn check_no_panic(
    root: &Path,
    files: &[(String, String)],
    errors: &mut Vec<String>,
    write_mode: bool,
) -> BTreeMap<String, usize> {
    let mut counts = BTreeMap::new();
    for (rel, text) in files {
        if is_panic_exempt(rel) {
            continue;
        }
        let scannable = blank_test_mods(&strip_comments_and_strings(text));
        let n = count_tokens(&scannable, PANIC_TOKENS);
        if n > 0 {
            counts.insert(rel.clone(), n);
        }
    }
    if write_mode {
        return counts; // budgets are being regenerated, not enforced
    }
    let allowed = read_allowlist(&root.join(ALLOWLIST), errors);
    for (rel, &n) in &counts {
        match allowed.get(rel) {
            None => errors.push(format!(
                "{rel}: {n} panic site(s) (unwrap/expect/panic!/…) in non-test library code; \
                 audit them and run `cargo xtask lint --write-allowlist`"
            )),
            Some(&budget) if n > budget => errors.push(format!(
                "{rel}: {n} panic site(s), budget is {budget}; new unwrap/expect/panic! in \
                 non-test library code — handle the error or audit + re-run \
                 `cargo xtask lint --write-allowlist`"
            )),
            Some(&budget) if n < budget => errors.push(format!(
                "{rel}: {n} panic site(s), budget is {budget}; allowlist is stale — run \
                 `cargo xtask lint --write-allowlist` to tighten it"
            )),
            Some(_) => {}
        }
    }
    for rel in allowed.keys() {
        if !counts.contains_key(rel) {
            errors.push(format!(
                "{rel}: allowlisted but now has zero panic sites (or no longer exists) — run \
                 `cargo xtask lint --write-allowlist` to tighten the allowlist"
            ));
        }
    }
    counts
}

fn read_allowlist(path: &Path, errors: &mut Vec<String>) -> BTreeMap<String, usize> {
    let mut map = BTreeMap::new();
    let Ok(text) = fs::read_to_string(path) else {
        errors.push(format!(
            "missing {ALLOWLIST}; run `cargo xtask lint --write-allowlist` to create it"
        ));
        return map;
    };
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        match (parts.next(), parts.next().and_then(|n| n.parse().ok())) {
            (Some(file), Some(n)) => {
                map.insert(file.to_owned(), n);
            }
            _ => errors.push(format!(
                "{ALLOWLIST}:{}: malformed line `{line}`",
                lineno + 1
            )),
        }
    }
    map
}

fn write_allowlist_file(path: &Path, counts: &BTreeMap<String, usize>) -> std::io::Result<()> {
    let mut out = String::from(
        "# Audited panic-site budgets for non-test library code, enforced by\n\
         # `cargo xtask lint` in both directions (a new site fails, and so does a\n\
         # removed one until this file is re-tightened).  Regenerate after an audit\n\
         # with `cargo xtask lint --write-allowlist`.\n\
         #\n\
         # <repo-relative file> <count of .unwrap()/.expect(/panic!(/unreachable!(/todo!(/unimplemented!(>\n",
    );
    for (rel, n) in counts {
        let _ = writeln!(out, "{rel} {n}");
    }
    fs::write(path, out)
}

/// Check 2: every `unsafe` token is preceded by a `// SAFETY:` comment on
/// one of the two preceding non-empty lines.
fn check_safety_comments(files: &[(String, String)], errors: &mut Vec<String>) {
    for (rel, text) in files {
        let stripped = strip_comments_and_strings(text);
        let original: Vec<&str> = text.lines().collect();
        for (lineno, line) in stripped.lines().enumerate() {
            let mut start = 0usize;
            while let Some(pos) = line[start..].find("unsafe") {
                let at = start + pos;
                let before_ok = at == 0 || !is_ident_byte(line.as_bytes()[at - 1]);
                let after = at + "unsafe".len();
                let after_ok = after >= line.len() || !is_ident_byte(line.as_bytes()[after]);
                if before_ok && after_ok {
                    let covered = original[..lineno]
                        .iter()
                        .rev()
                        .take_while(|l| !l.trim().is_empty())
                        .take(3)
                        .any(|l| l.trim_start().starts_with("// SAFETY:"))
                        || original
                            .get(lineno)
                            .is_some_and(|l| l.contains("// SAFETY:"));
                    if !covered {
                        errors.push(format!(
                            "{rel}:{}: `unsafe` without a preceding `// SAFETY:` comment",
                            lineno + 1
                        ));
                    }
                }
                start = after;
            }
        }
    }
}

/// Check 3: executor kernels and the server's request path must be
/// deterministic — no wall clocks, no ambient randomness.  Per-scope
/// exemptions cover the one file that *is* the non-deterministic edge
/// (the server listener's socket timeouts and `STATS` start timestamp).
fn check_executor_determinism(root: &Path, errors: &mut Vec<String>) {
    for (dir, exempt) in DETERMINISM_SCOPES {
        let mut files = Vec::new();
        collect_rs(&root.join(dir), root, &mut files);
        for (rel, text) in &files {
            if exempt.contains(&rel.as_str()) {
                continue;
            }
            let scannable = blank_test_mods(&strip_comments_and_strings(text));
            for token in DETERMINISM_TOKENS {
                if scannable.contains(token) {
                    errors.push(format!(
                        "{rel}: `{token}` outside the listener edge — execution must be a \
                         pure function of plan and data"
                    ));
                }
            }
        }
    }
}

/// Check 4: every first-party crate root forbids `unsafe`.
fn check_forbid_unsafe(root: &Path, errors: &mut Vec<String>) {
    let mut roots = vec![root.join("src/lib.rs")];
    if let Ok(entries) = fs::read_dir(root.join("crates")) {
        let mut dirs: Vec<PathBuf> = entries.flatten().map(|e| e.path()).collect();
        dirs.sort();
        for dir in dirs {
            for candidate in ["src/lib.rs", "src/main.rs"] {
                let p = dir.join(candidate);
                if p.exists() {
                    roots.push(p);
                    break;
                }
            }
        }
    }
    for path in roots {
        match fs::read_to_string(&path) {
            Ok(text) if text.contains("#![forbid(unsafe_code)]") => {}
            Ok(_) => errors.push(format!(
                "{}: crate root lacks `#![forbid(unsafe_code)]`",
                path.strip_prefix(root).unwrap_or(&path).display()
            )),
            Err(e) => errors.push(format!("{}: {e}", path.display())),
        }
    }
}

/// Check 5: `PhysicalOp` variant freshness.  Parses the variant list out of
/// the enum definition and requires each to be named (as `PhysicalOp::V`)
/// in `map_children` and in the verify crate's physical walk.  The
/// PhysicalOp-adjacent enums carried inside variants (`ExchangeMerge`) get
/// the same treatment against the verify walk: a new merge discipline must
/// be matched there or its invariants are unchecked.
fn check_physicalop_freshness(root: &Path, errors: &mut Vec<String>) {
    let physical = root.join("crates/algebra/src/physical.rs");
    let Ok(text) = fs::read_to_string(&physical) else {
        errors.push(format!("{}: unreadable", physical.display()));
        return;
    };
    let stripped = strip_comments_and_strings(&text);
    let variants = enum_variants(&stripped, "pub enum PhysicalOp");
    if variants.len() < 10 {
        errors.push(format!(
            "freshness parser found only {} PhysicalOp variants — the parser is broken, \
             not the code",
            variants.len()
        ));
        return;
    }
    let map_children = fn_body(&stripped, "fn map_children").unwrap_or_default();
    let mut verify_files = Vec::new();
    collect_rs(&root.join("crates/verify/src"), root, &mut verify_files);
    let verify_text: String = verify_files
        .iter()
        .map(|(_, t)| strip_comments_and_strings(t))
        .collect();
    for v in &variants {
        let qualified = format!("PhysicalOp::{v}");
        if !map_children.contains(&qualified) {
            errors.push(format!(
                "PhysicalOp::{v} is not named in PhysicalOp::map_children — rewrite passes \
                 would not descend into it"
            ));
        }
        if !verify_text.contains(&qualified) {
            errors.push(format!(
                "PhysicalOp::{v} is not named in the ranksql-verify physical walk — its \
                 invariants are unchecked"
            ));
        }
    }
    let merges = enum_variants(&stripped, "pub enum ExchangeMerge");
    if merges.len() < 2 {
        errors.push(format!(
            "freshness parser found only {} ExchangeMerge variants — the parser is \
             broken, not the code",
            merges.len()
        ));
        return;
    }
    for v in &merges {
        let qualified = format!("ExchangeMerge::{v}");
        if !verify_text.contains(&qualified) {
            errors.push(format!(
                "ExchangeMerge::{v} is not matched in the ranksql-verify physical walk — \
                 the merge discipline's ordering invariants are unchecked"
            ));
        }
    }
}

/// Top-level variant names of `needle`'s enum body (depth-1 identifiers
/// directly followed by `{`, `(` or `,`).
fn enum_variants(stripped: &str, needle: &str) -> Vec<String> {
    let Some(start) = stripped.find(needle) else {
        return Vec::new();
    };
    let Some(body) = fn_body(&stripped[start..], needle) else {
        return Vec::new();
    };
    let b = body.as_bytes();
    let mut variants = Vec::new();
    let mut depth = 0usize;
    let mut i = 0usize;
    while i < b.len() {
        match b[i] {
            b'{' | b'(' | b'[' => depth += 1,
            b'}' | b')' | b']' => depth = depth.saturating_sub(1),
            c if depth == 0 && c.is_ascii_uppercase() => {
                let mut j = i;
                while j < b.len() && is_ident_byte(b[j]) {
                    j += 1;
                }
                let mut k = j;
                while k < b.len() && b[k].is_ascii_whitespace() {
                    k += 1;
                }
                if matches!(b.get(k), Some(b'{' | b'(' | b',') | None) {
                    variants.push(body[i..j].to_owned());
                }
                i = j;
                continue;
            }
            _ => {}
        }
        i += 1;
    }
    variants
}

/// The brace-delimited body following the first occurrence of `needle`
/// (works for fns and enums alike).
fn fn_body<'a>(stripped: &'a str, needle: &str) -> Option<&'a str> {
    let start = stripped.find(needle)?;
    let open = start + stripped[start..].find('{')?;
    let b = stripped.as_bytes();
    let mut depth = 0usize;
    let mut i = open;
    while i < b.len() {
        match b[i] {
            b'{' => depth += 1,
            b'}' => {
                depth -= 1;
                if depth == 0 {
                    return Some(&stripped[open + 1..i]);
                }
            }
            _ => {}
        }
        i += 1;
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stripper_removes_comments_and_strings_but_keeps_lines() {
        let src = "let a = 1; // .unwrap()\nlet b = \".expect(\"; /* panic!( */ let c;\n";
        let out = strip_comments_and_strings(src);
        assert_eq!(out.lines().count(), src.lines().count());
        assert_eq!(count_tokens(&out, PANIC_TOKENS), 0);
        assert!(out.contains("let c;"));
    }

    #[test]
    fn raw_strings_and_nested_comments_are_stripped() {
        let src = "let s = r#\"panic!( .unwrap() \"#; /* outer /* .expect( */ still */ x();";
        let out = strip_comments_and_strings(src);
        assert_eq!(count_tokens(&out, PANIC_TOKENS), 0);
        assert!(out.contains("x();"));
    }

    #[test]
    fn test_mods_are_blanked() {
        let src = "fn a() { b.unwrap(); }\n#[cfg(test)]\nmod tests {\n fn t() { x.unwrap(); }\n}\n";
        let out = blank_test_mods(&strip_comments_and_strings(src));
        assert_eq!(count_tokens(&out, PANIC_TOKENS), 1);
    }

    #[test]
    fn enum_variants_parse_shapes() {
        let src = "pub enum E { Unit, Tuple(u8), Struct { x: u8 }, }";
        let stripped = strip_comments_and_strings(src);
        assert_eq!(
            enum_variants(&stripped, "pub enum E"),
            ["Unit", "Tuple", "Struct"]
        );
    }

    #[test]
    fn unsafe_word_boundary_ignores_forbid_attribute() {
        let files = vec![(
            "x.rs".to_owned(),
            "#![forbid(unsafe_code)]\nfn safe_fn() {}\n".to_owned(),
        )];
        let mut errors = Vec::new();
        check_safety_comments(&files, &mut errors);
        assert!(errors.is_empty(), "{errors:?}");
    }

    #[test]
    fn uncommented_unsafe_is_flagged_and_safety_comment_clears_it() {
        let mut errors = Vec::new();
        check_safety_comments(
            &[("x.rs".to_owned(), "fn f() { unsafe { g() } }\n".to_owned())],
            &mut errors,
        );
        assert_eq!(errors.len(), 1, "{errors:?}");
        let mut errors = Vec::new();
        check_safety_comments(
            &[(
                "x.rs".to_owned(),
                "// SAFETY: g upholds its contract here.\nfn f() { unsafe { g() } }\n".to_owned(),
            )],
            &mut errors,
        );
        assert!(errors.is_empty(), "{errors:?}");
    }
}
