//! The pipelined, incremental execution engine of RankSQL (Section 4).
//!
//! Plans are trees of Volcano-style iterators ([`PhysicalOperator`]): the
//! consumer repeatedly calls `next()` on the root, which recursively draws
//! tuples from its inputs.  The rank-aware operators implement the paper's
//! incremental execution model: tuple streams flow in non-increasing order of
//! their *maximal-possible scores* (`F_P[t]`, Property 1), so a top-k query
//! stops as soon as `k` results have surfaced and execution cost is
//! proportional to `k` rather than to the full input.
//!
//! Operators provided:
//!
//! | operator | module | rank-aware? |
//! |---|---|---|
//! | sequential scan, rank-scan (`idxScan_p`), attribute index scan | [`scan`] | rank-scan: yes |
//! | filter (σ), project (π) | [`filter`] | order-preserving |
//! | rank (µ) | [`rank`] | yes |
//! | multi-predicate rank with minimal probing (MPro) | [`mpro`] | yes |
//! | nested-loop / hash / sort-merge join | [`join`] | no (blocking) |
//! | HRJN, NRJN rank-joins | [`rank_join`] | yes |
//! | sort (τ, materialise-then-sort), top-k limit (λ) | [`sort_limit`] | sort: blocking |
//! | union, intersection, difference | [`set_ops`] | intersection/difference incremental |
//! | fused top-k sort (τ+λ, bounded heap) | [`sort_limit`] | blocking, `O(k)` memory |
//! | exchange / repartition (morsel-parallel gather + partitioning) | [`exchange`] | deterministic merge |
//!
//! The executor consumes the [`ranksql_algebra::PhysicalPlan`] IR:
//! [`build::build_operator`] instantiates the named operator for every node
//! — a mechanical walk with no physical decisions left in it — threading
//! one [`ExecutionContext`] (ranking context, metrics registry, tuple
//! budget, batch size) through every operator constructor.
//! [`build::execute_physical_plan`] drives a plan to completion;
//! [`build::execute_plan`] / [`build::execute_query_plan`] accept a
//! [`ranksql_algebra::LogicalPlan`] and lower it structurally first.
//!
//! **Batched (vectorized) execution.** Every operator additionally exposes
//! [`operator::PhysicalOperator::next_batch`], which moves tuples in
//! reusable [`operator::Batch`] chunks instead of one virtual call per
//! tuple.  Membership-oriented operators (scans, σ/π, the traditional
//! joins, sorts, limits, ∪/−) implement it natively — amortizing dispatch,
//! metric updates and budget accounting over the chunk — while the
//! rank-aware operators (µ, MPro, HRJN/NRJN, ∩) use a tuple-at-a-time
//! adapter that preserves the paper's incremental top-k semantics exactly.
//! The root driver ([`build::execute_physical_plan`]) pulls batches of
//! [`ExecutionContext::batch_size`] tuples, and blocking operators drain
//! their inputs in chunks of the same size.
//!
//! **Morsel-driven parallelism.** Plans whose parallel-safe subtrees were
//! wrapped in `Exchange`/`Repartition` nodes (the optimizer's
//! `parallelize` pass) fan morsels of the driving scan across a scoped
//! worker pool of [`ExecutionContext::threads`] threads and reassemble the
//! outputs deterministically — byte-identical to serial execution for any
//! thread count; see the [`exchange`] module.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod build;
pub mod column_scan;
pub mod context;
pub mod exchange;
pub mod filter;
pub mod fxhash;
pub mod join;
pub mod kernel;
pub mod metrics;
pub mod mpro;
pub mod operator;
pub mod oracle;
pub mod rank;
pub mod rank_join;
pub mod scan;
pub mod set_ops;
pub mod sort_limit;

pub use build::{
    build_operator, execute_physical_plan, execute_plan, execute_query_plan, zone_score_caps,
    ExecutionResult,
};
pub use column_scan::ColumnScan;
pub use context::{ExecutionContext, TopKThreshold, TupleBudget};
pub use exchange::{ExchangeOp, RepartitionPassthrough};
pub use metrics::{MetricsRegistry, OperatorMetrics};
pub use mpro::MProOp;
pub use operator::{drain, drain_batched, Batch, BoxedOperator, PhysicalOperator};
pub use oracle::oracle_top_k;
