//! Traditional (ranking-blind) join operators: nested loops, hash join and
//! sort-merge join.
//!
//! These operators implement the membership semantics of ⋈ and *merge* the
//! score states of their inputs (so predicates evaluated below the join stay
//! evaluated above it), but they make no promise about output order — they
//! are the joins a conventional engine would use in the materialise-then-sort
//! plans the paper compares against (Plan 1 and Plan 4 of Figure 11).

use std::collections::VecDeque;
use std::sync::Arc;

use ranksql_common::{RankSqlError, Result, Schema, Value};
use ranksql_expr::{BoolExpr, BoundBoolExpr, CompareOp, RankedTuple, ScalarExpr};

use crate::context::ExecutionContext;
use crate::fxhash::FxHashMap;
use crate::metrics::OperatorMetrics;
use crate::operator::{Batch, BoxedOperator, PhysicalOperator};

/// Equi-join keys extracted from a join condition, plus whatever part of the
/// condition is not a simple column equality (the *residual*, evaluated on
/// the joined tuple).
#[derive(Debug, Clone)]
pub struct JoinKeys {
    /// Pairs of (left column index, right column index).
    pub keys: Vec<(usize, usize)>,
    /// Remaining condition to evaluate on the concatenated tuple.
    pub residual: Option<BoolExpr>,
}

/// Splits a join condition into equi-join column pairs and a residual.
///
/// A conjunct of the form `L.col = R.col` (either orientation) where one side
/// resolves against the left schema and the other against the right schema
/// becomes a key pair; every other conjunct goes to the residual.
pub fn extract_join_keys(condition: Option<&BoolExpr>, left: &Schema, right: &Schema) -> JoinKeys {
    let Some(condition) = condition else {
        return JoinKeys {
            keys: vec![],
            residual: None,
        };
    };
    let mut keys = Vec::new();
    let mut residual = Vec::new();
    for conjunct in condition.split_conjuncts() {
        if let BoolExpr::Compare {
            op: CompareOp::Eq,
            left: ScalarExpr::Column(a),
            right: ScalarExpr::Column(b),
        } = &conjunct
        {
            match (a.resolve(left), b.resolve(right)) {
                (Ok(li), Ok(ri)) => {
                    keys.push((li, ri));
                    continue;
                }
                _ => {
                    if let (Ok(li), Ok(ri)) = (b.resolve(left), a.resolve(right)) {
                        keys.push((li, ri));
                        continue;
                    }
                }
            }
        }
        residual.push(conjunct);
    }
    JoinKeys {
        keys,
        residual: BoolExpr::conjoin(residual),
    }
}

/// The build-side hash table of a [`HashJoin`]: join-key values → build
/// tuples in input order.
///
/// Shared behind an `Arc` so that the morsel-parallel probe instances of an
/// `Exchange` subtree can all probe one table built exactly once.
pub type JoinTable = FxHashMap<Vec<Value>, Vec<RankedTuple>>;

/// Inserts build-side rows into a [`JoinTable`], keyed by `key_cols`.  Rows
/// keep their input order within each key group — the property that makes
/// hash-join output order deterministic.  This is the *only* keying logic:
/// both the serial build (`HashJoin::ensure_built`, batch by batch) and the
/// exchange's shared prebuilt table go through it, so the two paths cannot
/// drift apart.
pub fn insert_into_join_table(
    table: &mut JoinTable,
    rows: impl IntoIterator<Item = RankedTuple>,
    key_cols: &[usize],
) {
    for t in rows {
        let key = key_values(&t, key_cols, 0);
        table.entry(key).or_default().push(t);
    }
}

/// Builds a [`JoinTable`] over already-drained build-side rows in one shot.
pub fn build_join_table(rows: Vec<RankedTuple>, key_cols: &[usize]) -> JoinTable {
    let mut table = JoinTable::default();
    insert_into_join_table(&mut table, rows, key_cols);
    table
}

fn key_values(tuple: &RankedTuple, indices: &[usize], side_offset: usize) -> Vec<Value> {
    indices
        .iter()
        .map(|&i| tuple.tuple.value(i + side_offset).clone())
        .collect()
}

/// Looks up `t`'s join partners without allocating a key per probe:
/// single-column keys probe with a borrowed one-element slice
/// (`Vec<Value>: Borrow<[Value]>`), multi-column keys reuse `scratch`.
fn probe_matches<'a>(
    table: &'a JoinTable,
    key_cols: &[usize],
    scratch: &mut Vec<Value>,
    t: &RankedTuple,
) -> Option<&'a Vec<RankedTuple>> {
    if let [col] = key_cols {
        table.get(std::slice::from_ref(t.tuple.value(*col)))
    } else {
        scratch.clear();
        scratch.extend(key_cols.iter().map(|&i| t.tuple.value(i).clone()));
        table.get(scratch.as_slice())
    }
}

/// Binds the condition to evaluate on joined tuples (residual for equi-joins,
/// or the full condition for nested loops).
fn bind_on_joined(condition: Option<&BoolExpr>, joined: &Schema) -> Result<Option<BoundBoolExpr>> {
    condition.map(|c| c.bind(joined)).transpose()
}

/// Block nested-loops join: materialises the right input and loops over it
/// for every left tuple.  Supports arbitrary (or absent = cross) conditions.
pub struct NestedLoopJoin {
    left: BoxedOperator,
    right_rows: Option<Arc<Vec<RankedTuple>>>,
    right: Option<BoxedOperator>,
    condition: Option<BoundBoolExpr>,
    schema: Schema,
    current_left: Option<RankedTuple>,
    right_pos: usize,
    metrics: Arc<OperatorMetrics>,
    batch_size: usize,
}

impl NestedLoopJoin {
    /// Creates a nested-loops join.
    pub fn new(
        left: BoxedOperator,
        right: BoxedOperator,
        condition: Option<&BoolExpr>,
        exec: &ExecutionContext,
        label: impl Into<String>,
    ) -> Result<Self> {
        let metrics = exec.register(label);
        let schema = left.schema().join(right.schema());
        let bound = bind_on_joined(condition, &schema)?;
        Ok(NestedLoopJoin {
            left,
            right_rows: None,
            right: Some(right),
            condition: bound,
            schema,
            current_left: None,
            right_pos: 0,
            metrics,
            batch_size: exec.batch_size(),
        })
    }

    /// Creates a nested-loops join over an inner relation materialised
    /// elsewhere (the parallel exchange drains it once and shares it across
    /// all morsel instances).  `schema` is the precomputed joined schema;
    /// metrics for the inner rows are accounted by whoever materialised
    /// them.
    pub(crate) fn with_prebuilt(
        left: BoxedOperator,
        schema: Schema,
        condition: Option<&BoolExpr>,
        right_rows: Arc<Vec<RankedTuple>>,
        exec: &ExecutionContext,
        label: impl Into<String>,
    ) -> Result<Self> {
        let metrics = exec.register(label);
        let bound = bind_on_joined(condition, &schema)?;
        Ok(NestedLoopJoin {
            left,
            right_rows: Some(right_rows),
            right: None,
            condition: bound,
            schema,
            current_left: None,
            right_pos: 0,
            metrics,
            batch_size: exec.batch_size(),
        })
    }

    fn ensure_right_materialised(&mut self) -> Result<()> {
        if self.right_rows.is_none() {
            let mut right = self.right.take().expect("right input present");
            let mut rows = Vec::new();
            let mut buf = Batch::with_capacity(self.batch_size);
            loop {
                buf.clear();
                let n = right.next_batch(self.batch_size, &mut buf)?;
                if n == 0 {
                    break;
                }
                self.metrics.add_in(n as u64);
                rows.append(&mut buf);
            }
            self.right_rows = Some(Arc::new(rows));
        }
        Ok(())
    }
}

impl PhysicalOperator for NestedLoopJoin {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn next(&mut self) -> Result<Option<RankedTuple>> {
        self.ensure_right_materialised()?;
        loop {
            if self.current_left.is_none() {
                match self.left.next()? {
                    Some(t) => {
                        self.metrics.add_in(1);
                        self.current_left = Some(t);
                        self.right_pos = 0;
                    }
                    None => return Ok(None),
                }
            }
            let left = self.current_left.as_ref().expect("current left set");
            let rows = self.right_rows.as_ref().expect("right materialised");
            while self.right_pos < rows.len() {
                let right = &rows[self.right_pos];
                self.right_pos += 1;
                let joined = left.join(right);
                let passes = match &self.condition {
                    Some(c) => c.eval(&joined.tuple)?,
                    None => true,
                };
                if passes {
                    self.metrics.add_out(1);
                    return Ok(Some(joined));
                }
            }
            self.current_left = None;
        }
    }

    fn next_batch(&mut self, max: usize, out: &mut Batch) -> Result<usize> {
        // The per-output work (a pass over the inner relation) dwarfs
        // dispatch, so the batched path reuses the tuple loop; batching
        // still pays off through the vectorized inner materialisation.
        let mut n = 0;
        while n < max {
            match self.next()? {
                Some(t) => {
                    out.push(t);
                    n += 1;
                }
                None => break,
            }
        }
        if n > 0 {
            self.metrics.add_batch();
        }
        Ok(n)
    }

    fn is_ranked(&self) -> bool {
        false
    }

    fn can_extend_limit(&self) -> bool {
        self.left.can_extend_limit() && self.right.as_ref().is_none_or(|r| r.can_extend_limit())
    }

    fn extend_limit(&mut self, extra: usize) -> bool {
        // The inner side is (or will be) fully materialised — no discard; a
        // pre-built shared inner (`with_prebuilt`) is complete by definition.
        self.left.extend_limit(extra) & self.right.as_mut().is_none_or(|r| r.extend_limit(extra))
    }
}

/// Hash join: builds a hash table on the right input's join keys and probes
/// it with left tuples.  Requires at least one equi-join key.
pub struct HashJoin {
    left: BoxedOperator,
    right: Option<BoxedOperator>,
    table: Option<Arc<JoinTable>>,
    left_key_cols: Vec<usize>,
    right_key_cols: Vec<usize>,
    residual: Option<BoundBoolExpr>,
    schema: Schema,
    current_left: Option<RankedTuple>,
    current_matches: Vec<RankedTuple>,
    match_pos: usize,
    metrics: Arc<OperatorMetrics>,
    batch_size: usize,
    /// Probe-side tuples pulled in batches but not yet consumed.
    left_buf: VecDeque<RankedTuple>,
    left_scratch: Batch,
    left_done: bool,
    /// Reusable key buffer for multi-column probes.
    probe_key: Vec<Value>,
}

impl HashJoin {
    /// Creates a hash join from an explicit condition.
    pub fn new(
        left: BoxedOperator,
        right: BoxedOperator,
        condition: Option<&BoolExpr>,
        exec: &ExecutionContext,
        label: impl Into<String>,
    ) -> Result<Self> {
        let metrics = exec.register(label);
        let keys = extract_join_keys(condition, left.schema(), right.schema());
        if keys.keys.is_empty() {
            return Err(RankSqlError::Execution(
                "hash join requires at least one equi-join condition".into(),
            ));
        }
        let schema = left.schema().join(right.schema());
        let residual = bind_on_joined(keys.residual.as_ref(), &schema)?;
        Ok(HashJoin {
            left,
            right: Some(right),
            table: None,
            left_key_cols: keys.keys.iter().map(|&(l, _)| l).collect(),
            right_key_cols: keys.keys.iter().map(|&(_, r)| r).collect(),
            residual,
            schema,
            current_left: None,
            current_matches: Vec::new(),
            match_pos: 0,
            metrics,
            batch_size: exec.batch_size(),
            left_buf: VecDeque::new(),
            left_scratch: Batch::new(),
            left_done: false,
            probe_key: Vec::new(),
        })
    }

    /// Creates a hash join probing a table built elsewhere (the parallel
    /// exchange builds it once and shares it across all morsel instances).
    /// `schema`, `left_key_cols` and `residual` are the joined schema, probe
    /// key columns and non-equi remainder the exchange extracted once when
    /// it built the table; metrics for the build rows are accounted by
    /// whoever built it.
    pub(crate) fn with_prebuilt(
        left: BoxedOperator,
        schema: Schema,
        left_key_cols: Vec<usize>,
        residual: Option<&BoolExpr>,
        table: Arc<JoinTable>,
        exec: &ExecutionContext,
        label: impl Into<String>,
    ) -> Result<Self> {
        let metrics = exec.register(label);
        let residual = bind_on_joined(residual, &schema)?;
        Ok(HashJoin {
            left,
            right: None,
            table: Some(table),
            left_key_cols,
            right_key_cols: Vec::new(),
            residual,
            schema,
            current_left: None,
            current_matches: Vec::new(),
            match_pos: 0,
            metrics,
            batch_size: exec.batch_size(),
            left_buf: VecDeque::new(),
            left_scratch: Batch::new(),
            left_done: false,
            probe_key: Vec::new(),
        })
    }

    fn ensure_built(&mut self) -> Result<()> {
        if self.table.is_none() {
            let mut right = self.right.take().expect("right input present");
            let mut table = JoinTable::default();
            let mut buf = Batch::with_capacity(self.batch_size);
            loop {
                buf.clear();
                let n = right.next_batch(self.batch_size, &mut buf)?;
                if n == 0 {
                    break;
                }
                self.metrics.add_in(n as u64);
                insert_into_join_table(&mut table, buf.drain(..), &self.right_key_cols);
            }
            self.table = Some(Arc::new(table));
        }
        Ok(())
    }

    /// Draws the next probe-side tuple, refilling the internal buffer with a
    /// batch of up to `refill` tuples when it runs dry.  `refill = 1` keeps
    /// tuple-driven pulls tuple-at-a-time.
    fn next_left(&mut self, refill: usize) -> Result<Option<RankedTuple>> {
        if self.left_buf.is_empty() && !self.left_done {
            self.left_scratch.clear();
            let n = self
                .left
                .next_batch(refill.max(1), &mut self.left_scratch)?;
            if n == 0 {
                self.left_done = true;
            } else {
                self.metrics.add_in(n as u64);
                self.left_buf.extend(self.left_scratch.drain(..));
            }
        }
        Ok(self.left_buf.pop_front())
    }

    /// Advances to the next probe tuple and looks up its matches.  Returns
    /// `false` when the probe side is exhausted.
    fn advance_probe(&mut self, refill: usize) -> Result<bool> {
        match self.next_left(refill)? {
            Some(t) => {
                let table = self.table.as_ref().expect("hash table built");
                self.current_matches =
                    probe_matches(table.as_ref(), &self.left_key_cols, &mut self.probe_key, &t)
                        .cloned()
                        .unwrap_or_default();
                self.match_pos = 0;
                self.current_left = Some(t);
                Ok(true)
            }
            None => Ok(false),
        }
    }
}

impl PhysicalOperator for HashJoin {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn next(&mut self) -> Result<Option<RankedTuple>> {
        self.ensure_built()?;
        loop {
            while self.match_pos < self.current_matches.len() {
                let right = &self.current_matches[self.match_pos];
                self.match_pos += 1;
                let left = self.current_left.as_ref().expect("left set while matching");
                let joined = left.join(right);
                let passes = match &self.residual {
                    Some(c) => c.eval(&joined.tuple)?,
                    None => true,
                };
                if passes {
                    self.metrics.add_out(1);
                    return Ok(Some(joined));
                }
            }
            if !self.advance_probe(1)? {
                return Ok(None);
            }
        }
    }

    fn next_batch(&mut self, max: usize, out: &mut Batch) -> Result<usize> {
        self.ensure_built()?;
        let mut produced = 0;
        'fill: while produced < max {
            // Flush matches suspended by a previous (full) batch first.
            while self.match_pos < self.current_matches.len() {
                if produced == max {
                    break 'fill;
                }
                let right = &self.current_matches[self.match_pos];
                self.match_pos += 1;
                let left = self.current_left.as_ref().expect("left set while matching");
                let joined = left.join(right);
                let passes = match &self.residual {
                    Some(c) => c.eval(&joined.tuple)?,
                    None => true,
                };
                if passes {
                    out.push(joined);
                    produced += 1;
                }
            }
            let Some(t) = self.next_left(max)? else {
                break;
            };
            let table = self.table.as_ref().expect("hash table built");
            let Some(matches) =
                probe_matches(table.as_ref(), &self.left_key_cols, &mut self.probe_key, &t)
            else {
                continue;
            };
            if produced + matches.len() <= max {
                // Fast path: the whole match group fits in this batch, so it
                // can be joined straight out of the hash table — no cloning,
                // no suspension state (the per-probe group clone is what the
                // tuple path pays to be resumable after every single tuple).
                for right in matches {
                    let joined = t.join(right);
                    let passes = match &self.residual {
                        Some(c) => c.eval(&joined.tuple)?,
                        None => true,
                    };
                    if passes {
                        out.push(joined);
                        produced += 1;
                    }
                }
            } else {
                self.current_matches = matches.clone();
                self.match_pos = 0;
                self.current_left = Some(t);
            }
        }
        if produced > 0 {
            self.metrics.add_out(produced as u64);
            self.metrics.add_batch();
        }
        Ok(produced)
    }

    fn is_ranked(&self) -> bool {
        false
    }

    fn can_extend_limit(&self) -> bool {
        self.left.can_extend_limit() && self.right.as_ref().is_none_or(|r| r.can_extend_limit())
    }

    fn extend_limit(&mut self, extra: usize) -> bool {
        // The build side is (or will be) fully hashed — no discard; a
        // pre-built shared table (`with_prebuilt`) is complete by definition.
        self.left.extend_limit(extra) & self.right.as_mut().is_none_or(|r| r.extend_limit(extra))
    }
}

/// Sort-merge join: materialises and sorts both inputs on the join keys, then
/// merges equal-key groups.  Requires at least one equi-join key.
pub struct SortMergeJoin {
    output: std::vec::IntoIter<RankedTuple>,
    schema: Schema,
    metrics: Arc<OperatorMetrics>,
    prepared: bool,
    left: Option<BoxedOperator>,
    right: Option<BoxedOperator>,
    keys: Vec<(usize, usize)>,
    residual: Option<BoundBoolExpr>,
    batch_size: usize,
}

impl SortMergeJoin {
    /// Creates a sort-merge join from an explicit condition.
    pub fn new(
        left: BoxedOperator,
        right: BoxedOperator,
        condition: Option<&BoolExpr>,
        exec: &ExecutionContext,
        label: impl Into<String>,
    ) -> Result<Self> {
        let metrics = exec.register(label);
        let keys = extract_join_keys(condition, left.schema(), right.schema());
        if keys.keys.is_empty() {
            return Err(RankSqlError::Execution(
                "sort-merge join requires at least one equi-join condition".into(),
            ));
        }
        let schema = left.schema().join(right.schema());
        let residual = bind_on_joined(keys.residual.as_ref(), &schema)?;
        Ok(SortMergeJoin {
            output: Vec::new().into_iter(),
            schema,
            metrics,
            prepared: false,
            left: Some(left),
            right: Some(right),
            keys: keys.keys,
            residual,
            batch_size: exec.batch_size(),
        })
    }

    fn prepare(&mut self) -> Result<()> {
        if self.prepared {
            return Ok(());
        }
        self.prepared = true;
        let mut left = self.left.take().expect("left present");
        let mut right = self.right.take().expect("right present");
        let left_keys: Vec<usize> = self.keys.iter().map(|&(l, _)| l).collect();
        let right_keys: Vec<usize> = self.keys.iter().map(|&(_, r)| r).collect();

        let mut buf = Batch::with_capacity(self.batch_size);
        let mut l_rows = Vec::new();
        loop {
            buf.clear();
            let n = left.next_batch(self.batch_size, &mut buf)?;
            if n == 0 {
                break;
            }
            self.metrics.add_in(n as u64);
            l_rows.append(&mut buf);
        }
        let mut r_rows = Vec::new();
        loop {
            buf.clear();
            let n = right.next_batch(self.batch_size, &mut buf)?;
            if n == 0 {
                break;
            }
            self.metrics.add_in(n as u64);
            r_rows.append(&mut buf);
        }
        l_rows.sort_by_key(|a| key_values(a, &left_keys, 0));
        r_rows.sort_by_key(|a| key_values(a, &right_keys, 0));

        let mut out = Vec::new();
        let (mut i, mut j) = (0usize, 0usize);
        while i < l_rows.len() && j < r_rows.len() {
            let lk = key_values(&l_rows[i], &left_keys, 0);
            let rk = key_values(&r_rows[j], &right_keys, 0);
            match lk.cmp(&rk) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    // Find the extent of the equal-key groups on both sides.
                    let i_end = (i..l_rows.len())
                        .find(|&x| key_values(&l_rows[x], &left_keys, 0) != lk)
                        .unwrap_or(l_rows.len());
                    let j_end = (j..r_rows.len())
                        .find(|&x| key_values(&r_rows[x], &right_keys, 0) != rk)
                        .unwrap_or(r_rows.len());
                    for l in &l_rows[i..i_end] {
                        for r in &r_rows[j..j_end] {
                            let joined = l.join(r);
                            let passes = match &self.residual {
                                Some(c) => c.eval(&joined.tuple)?,
                                None => true,
                            };
                            if passes {
                                self.metrics.add_out(1);
                                out.push(joined);
                            }
                        }
                    }
                    i = i_end;
                    j = j_end;
                }
            }
        }
        self.output = out.into_iter();
        Ok(())
    }
}

impl PhysicalOperator for SortMergeJoin {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn next(&mut self) -> Result<Option<RankedTuple>> {
        self.prepare()?;
        Ok(self.output.next())
    }

    fn next_batch(&mut self, max: usize, out: &mut Batch) -> Result<usize> {
        self.prepare()?;
        let mut n = 0;
        while n < max {
            match self.output.next() {
                Some(t) => {
                    out.push(t);
                    n += 1;
                }
                None => break,
            }
        }
        if n > 0 {
            self.metrics.add_batch();
        }
        Ok(n)
    }

    fn is_ranked(&self) -> bool {
        false
    }

    fn can_extend_limit(&self) -> bool {
        self.left.as_ref().is_none_or(|l| l.can_extend_limit())
            && self.right.as_ref().is_none_or(|r| r.can_extend_limit())
    }

    fn extend_limit(&mut self, extra: usize) -> bool {
        // Both sides are fully materialised into the sorted output buffer —
        // nothing was discarded, so no cap exists at this node.
        self.left.as_mut().is_none_or(|l| l.extend_limit(extra))
            & self.right.as_mut().is_none_or(|r| r.extend_limit(extra))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::operator::drain;
    use crate::scan::SeqScan;
    use ranksql_common::{DataType, Field};
    use ranksql_expr::RankingContext;
    use ranksql_storage::{Table, TableBuilder};

    fn table_r() -> Table {
        let schema = Schema::new(vec![
            Field::new("a", DataType::Int64),
            Field::new("x", DataType::Int64),
        ])
        .qualify_all("R");
        TableBuilder::new("R", schema)
            .rows([
                vec![Value::from(1), Value::from(10)],
                vec![Value::from(2), Value::from(20)],
                vec![Value::from(3), Value::from(30)],
                vec![Value::from(1), Value::from(40)],
            ])
            .build(0)
            .unwrap()
    }

    fn table_s() -> Table {
        let schema = Schema::new(vec![
            Field::new("a", DataType::Int64),
            Field::new("y", DataType::Int64),
        ])
        .qualify_all("S");
        TableBuilder::new("S", schema)
            .rows([
                vec![Value::from(1), Value::from(100)],
                vec![Value::from(3), Value::from(300)],
                vec![Value::from(3), Value::from(301)],
                vec![Value::from(9), Value::from(900)],
            ])
            .build(1)
            .unwrap()
    }

    fn exec() -> ExecutionContext {
        ExecutionContext::new(RankingContext::unranked())
    }

    fn scan(t: &Table, exec: &ExecutionContext) -> BoxedOperator {
        Box::new(SeqScan::new(t, exec, "scan"))
    }

    fn join_result_pairs(out: &[RankedTuple]) -> Vec<(i64, i64)> {
        let mut pairs: Vec<(i64, i64)> = out
            .iter()
            .map(|t| {
                (
                    t.tuple.value(0).as_i64().unwrap(),
                    t.tuple.value(3).as_i64().unwrap(),
                )
            })
            .collect();
        pairs.sort();
        pairs
    }

    /// Expected R ⋈ S on a: (1,100) x2 [R rows 1 and 4], (3,300), (3,301).
    fn expected_pairs() -> Vec<(i64, i64)> {
        vec![(1, 100), (1, 100), (3, 300), (3, 301)]
    }

    #[test]
    fn extract_keys_and_residual() {
        let r = table_r();
        let s = table_s();
        let cond = BoolExpr::col_eq_col("R.a", "S.a").and(BoolExpr::compare(
            ScalarExpr::col("R.x").add(ScalarExpr::col("S.y")),
            CompareOp::Lt,
            ScalarExpr::lit(1000),
        ));
        let keys = extract_join_keys(Some(&cond), r.schema(), s.schema());
        assert_eq!(keys.keys, vec![(0, 0)]);
        assert!(keys.residual.is_some());
        // Reversed orientation also works.
        let cond2 = BoolExpr::col_eq_col("S.a", "R.a");
        let keys2 = extract_join_keys(Some(&cond2), r.schema(), s.schema());
        assert_eq!(keys2.keys, vec![(0, 0)]);
        assert!(keys2.residual.is_none());
        // Cross join: no condition.
        let keys3 = extract_join_keys(None, r.schema(), s.schema());
        assert!(keys3.keys.is_empty() && keys3.residual.is_none());
    }

    #[test]
    fn nested_loop_join_matches_expected() {
        let r = table_r();
        let s = table_s();
        let exec = exec();
        let cond = BoolExpr::col_eq_col("R.a", "S.a");
        let mut j =
            NestedLoopJoin::new(scan(&r, &exec), scan(&s, &exec), Some(&cond), &exec, "nlj")
                .unwrap();
        let out = drain(&mut j).unwrap();
        assert_eq!(join_result_pairs(&out), expected_pairs());
        assert_eq!(out[0].tuple.arity(), 4);
    }

    #[test]
    fn cross_join_produces_product() {
        let r = table_r();
        let s = table_s();
        let exec = exec();
        let mut j =
            NestedLoopJoin::new(scan(&r, &exec), scan(&s, &exec), None, &exec, "nlj").unwrap();
        assert_eq!(drain(&mut j).unwrap().len(), 16);
    }

    #[test]
    fn hash_join_matches_expected() {
        let r = table_r();
        let s = table_s();
        let exec = exec();
        let cond = BoolExpr::col_eq_col("R.a", "S.a");
        let mut j =
            HashJoin::new(scan(&r, &exec), scan(&s, &exec), Some(&cond), &exec, "hj").unwrap();
        let out = drain(&mut j).unwrap();
        assert_eq!(join_result_pairs(&out), expected_pairs());
    }

    #[test]
    fn hash_join_requires_equi_key() {
        let r = table_r();
        let s = table_s();
        let exec = exec();
        let cond = BoolExpr::compare(
            ScalarExpr::col("R.x"),
            CompareOp::Lt,
            ScalarExpr::col("S.y"),
        );
        assert!(HashJoin::new(scan(&r, &exec), scan(&s, &exec), Some(&cond), &exec, "hj").is_err());
    }

    #[test]
    fn sort_merge_join_matches_expected() {
        let r = table_r();
        let s = table_s();
        let exec = exec();
        let cond = BoolExpr::col_eq_col("R.a", "S.a");
        let mut j = SortMergeJoin::new(scan(&r, &exec), scan(&s, &exec), Some(&cond), &exec, "smj")
            .unwrap();
        let out = drain(&mut j).unwrap();
        assert_eq!(join_result_pairs(&out), expected_pairs());
    }

    #[test]
    fn residual_condition_filters_join_results() {
        let r = table_r();
        let s = table_s();
        let exec = exec();
        // R.a = S.a AND R.x + S.y < 200  → keeps only (1,100)x2 pairs
        // (10+100, 40+100); (3,300/301) pairs exceed 200.
        let cond = BoolExpr::col_eq_col("R.a", "S.a").and(BoolExpr::compare(
            ScalarExpr::col("R.x").add(ScalarExpr::col("S.y")),
            CompareOp::Lt,
            ScalarExpr::lit(200),
        ));
        for mk in ["hash", "smj", "nlj"] {
            let op: BoxedOperator = match mk {
                "hash" => Box::new(
                    HashJoin::new(scan(&r, &exec), scan(&s, &exec), Some(&cond), &exec, "j")
                        .unwrap(),
                ),
                "smj" => Box::new(
                    SortMergeJoin::new(scan(&r, &exec), scan(&s, &exec), Some(&cond), &exec, "j")
                        .unwrap(),
                ),
                _ => Box::new(
                    NestedLoopJoin::new(scan(&r, &exec), scan(&s, &exec), Some(&cond), &exec, "j")
                        .unwrap(),
                ),
            };
            let mut op = op;
            let out = drain(op.as_mut()).unwrap();
            assert_eq!(
                join_result_pairs(&out),
                vec![(1, 100), (1, 100)],
                "algorithm {mk}"
            );
        }
    }

    #[test]
    fn joins_report_unranked() {
        let r = table_r();
        let s = table_s();
        let exec = exec();
        let cond = BoolExpr::col_eq_col("R.a", "S.a");
        let j = HashJoin::new(scan(&r, &exec), scan(&s, &exec), Some(&cond), &exec, "hj").unwrap();
        assert!(!j.is_ranked());
    }
}
