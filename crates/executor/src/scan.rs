//! Table access operators: sequential scan, rank-scan and attribute index
//! scan.

use std::sync::Arc;

use ranksql_common::{RankSqlError, Result, Schema};
use ranksql_expr::{RankedTuple, RankingContext};
use ranksql_storage::{BTreeIndex, ScoreIndex, Table};

use crate::context::{ExecutionContext, TupleBudget};
use crate::metrics::OperatorMetrics;
use crate::operator::{Batch, PhysicalOperator};

/// Sequential (heap) scan.
///
/// Tuples are emitted in storage order with an empty evaluated-predicate set;
/// since every tuple then carries the same (maximal) upper bound, the output
/// is trivially a rank-relation with `P = ∅`.
///
/// The scan consumes its snapshot by value: the snapshot itself is the only
/// copy made, and each `next()` *moves* a tuple out instead of cloning it —
/// the `operators_micro` bench records the delta against the historical
/// clone-per-tuple scheme.  The snapshot is the execution's pinned epoch
/// prefix, so concurrent inserts are invisible to an open scan.
pub struct SeqScan {
    schema: Schema,
    tuples: std::vec::IntoIter<ranksql_common::Tuple>,
    ctx: Arc<RankingContext>,
    metrics: Arc<OperatorMetrics>,
    budget: Arc<TupleBudget>,
}

impl SeqScan {
    /// Creates a sequential scan over `table` at the execution's pinned
    /// epoch (pinned on first access).
    pub fn new(table: &Table, exec: &ExecutionContext, label: impl Into<String>) -> Self {
        let epoch = exec.pin_epoch(table, false);
        SeqScan {
            schema: table.schema().clone(),
            tuples: table.scan_prefix(epoch.row_count()).into_iter(),
            ctx: exec.ranking_arc(),
            metrics: exec.register(label),
            budget: Arc::clone(exec.budget()),
        }
    }
}

impl PhysicalOperator for SeqScan {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn next(&mut self) -> Result<Option<RankedTuple>> {
        let Some(t) = self.tuples.next() else {
            return Ok(None);
        };
        self.budget.charge(1)?;
        self.metrics.add_in(1);
        self.metrics.add_out(1);
        Ok(Some(RankedTuple::unranked(t, self.ctx.num_predicates())))
    }

    fn next_batch(&mut self, max: usize, out: &mut Batch) -> Result<usize> {
        // Vectorized scan: one budget charge, one metrics update and one
        // exact reservation for the whole chunk instead of per tuple.
        let n_preds = self.ctx.num_predicates();
        let before = out.len();
        out.extend(
            self.tuples
                .by_ref()
                .take(max)
                .map(|t| RankedTuple::unranked(t, n_preds)),
        );
        let n = out.len() - before;
        if n > 0 {
            self.budget.charge(n as u64)?;
            self.metrics.add_in(n as u64);
            self.metrics.add_out(n as u64);
            self.metrics.add_batch();
        }
        Ok(n)
    }

    fn can_extend_limit(&self) -> bool {
        true // A scan imposes no top-k cap.
    }

    fn extend_limit(&mut self, _extra: usize) -> bool {
        true // A scan imposes no top-k cap.
    }
}

/// Rank-scan (`idxScan_p`): emits tuples in descending order of one ranking
/// predicate's score, read from a pre-built [`ScoreIndex`].
///
/// The emitted tuples carry `P = {p}` — the predicate is *not* re-evaluated
/// at query time (that is the point of having the index), so rank-scans do
/// not contribute to the predicate-evaluation counters.
pub struct RankScan {
    schema: Schema,
    table: Arc<Table>,
    index: Arc<ScoreIndex>,
    predicate: usize,
    pos: usize,
    /// The pinned epoch's row-count watermark: every heap read is checked
    /// against it, so an index entry past the snapshot errors as stale
    /// instead of silently leaking a post-pin insert into the results.
    watermark: usize,
    ctx: Arc<RankingContext>,
    metrics: Arc<OperatorMetrics>,
    budget: Arc<TupleBudget>,
}

impl RankScan {
    /// Creates a rank-scan over `table` for the context predicate `predicate`
    /// using `index` (which must cover that predicate and be current for the
    /// execution's pinned epoch — the plan builder extends lagging indexes
    /// over the missing row suffix before handing them here).
    pub fn new(
        table: Arc<Table>,
        index: Arc<ScoreIndex>,
        predicate: usize,
        exec: &ExecutionContext,
        label: impl Into<String>,
    ) -> Result<Self> {
        let ctx = exec.ranking_arc();
        let expected = &ctx.predicate(predicate).name;
        if index.predicate_name() != expected {
            return Err(RankSqlError::Execution(format!(
                "rank-scan index covers predicate `{}` but the plan asks for `{expected}`",
                index.predicate_name()
            )));
        }
        let watermark = exec.pin_epoch(&table, false).row_count();
        if index.indexed_rows() != watermark {
            return Err(RankSqlError::Catalog(format!(
                "score index on `{}` of table `{}` is stale: built over {} rows, epoch has {}",
                index.predicate_name(),
                table.name(),
                index.indexed_rows(),
                watermark
            )));
        }
        Ok(RankScan {
            schema: table.schema().clone(),
            table,
            index,
            predicate,
            pos: 0,
            watermark,
            ctx,
            metrics: exec.register(label),
            budget: Arc::clone(exec.budget()),
        })
    }
}

impl PhysicalOperator for RankScan {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn next(&mut self) -> Result<Option<RankedTuple>> {
        let Some((score, row)) = self.index.get(self.pos) else {
            return Ok(None);
        };
        self.pos += 1;
        let tuple = self.table.tuple_within(row, self.watermark)?;
        self.budget.charge(1)?;
        let mut rt = RankedTuple::unranked(tuple, self.ctx.num_predicates());
        rt.state.set(self.predicate, score.value());
        self.metrics.add_in(1);
        self.metrics.add_out(1);
        Ok(Some(rt))
    }

    fn next_batch(&mut self, max: usize, out: &mut Batch) -> Result<usize> {
        // A batch is a contiguous run of index entries, so the descending
        // score order is preserved exactly.
        let n_preds = self.ctx.num_predicates();
        let mut n = 0;
        while n < max {
            let Some((score, row)) = self.index.get(self.pos) else {
                break;
            };
            self.pos += 1;
            let tuple = self.table.tuple_within(row, self.watermark)?;
            let mut rt = RankedTuple::unranked(tuple, n_preds);
            rt.state.set(self.predicate, score.value());
            out.push(rt);
            n += 1;
        }
        if n > 0 {
            self.budget.charge(n as u64)?;
            self.metrics.add_in(n as u64);
            self.metrics.add_out(n as u64);
            self.metrics.add_batch();
        }
        Ok(n)
    }

    fn can_extend_limit(&self) -> bool {
        true // A scan imposes no top-k cap.
    }

    fn extend_limit(&mut self, _extra: usize) -> bool {
        true // A scan imposes no top-k cap.
    }
}

/// Ordered scan over an attribute index (ascending attribute order).
///
/// The output carries no ranking information (`P = ∅`) but has the physical
/// *interesting order* property on the indexed column, which sort-merge joins
/// exploit.
pub struct AttributeIndexScan {
    schema: Schema,
    table: Arc<Table>,
    index: Arc<BTreeIndex>,
    pos: usize,
    /// The pinned epoch's row-count watermark (see [`RankScan::watermark`]).
    watermark: usize,
    ctx: Arc<RankingContext>,
    metrics: Arc<OperatorMetrics>,
    budget: Arc<TupleBudget>,
}

impl AttributeIndexScan {
    /// Creates an ordered attribute scan; the index must be current for the
    /// execution's pinned epoch (the plan builder extends lagging indexes
    /// over the missing row suffix before handing them here).
    pub fn new(
        table: Arc<Table>,
        index: Arc<BTreeIndex>,
        exec: &ExecutionContext,
        label: impl Into<String>,
    ) -> Result<Self> {
        let watermark = exec.pin_epoch(&table, false).row_count();
        if index.indexed_rows() != watermark {
            return Err(RankSqlError::Catalog(format!(
                "attribute index on `{}` of table `{}` is stale: built over {} rows, epoch has {}",
                index.column_name(),
                table.name(),
                index.indexed_rows(),
                watermark
            )));
        }
        Ok(AttributeIndexScan {
            schema: table.schema().clone(),
            table,
            index,
            pos: 0,
            watermark,
            ctx: exec.ranking_arc(),
            metrics: exec.register(label),
            budget: Arc::clone(exec.budget()),
        })
    }
}

impl PhysicalOperator for AttributeIndexScan {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn next(&mut self) -> Result<Option<RankedTuple>> {
        let Some(&(_, row)) = self.index.entries().get(self.pos) else {
            return Ok(None);
        };
        self.pos += 1;
        let tuple = self.table.tuple_within(row, self.watermark)?;
        self.budget.charge(1)?;
        self.metrics.add_in(1);
        self.metrics.add_out(1);
        Ok(Some(RankedTuple::unranked(
            tuple,
            self.ctx.num_predicates(),
        )))
    }

    fn next_batch(&mut self, max: usize, out: &mut Batch) -> Result<usize> {
        let n_preds = self.ctx.num_predicates();
        let mut n = 0;
        while n < max {
            let Some(&(_, row)) = self.index.entries().get(self.pos) else {
                break;
            };
            self.pos += 1;
            let tuple = self.table.tuple_within(row, self.watermark)?;
            out.push(RankedTuple::unranked(tuple, n_preds));
            n += 1;
        }
        if n > 0 {
            self.budget.charge(n as u64)?;
            self.metrics.add_in(n as u64);
            self.metrics.add_out(n as u64);
            self.metrics.add_batch();
        }
        Ok(n)
    }

    fn is_ranked(&self) -> bool {
        // Ordered by the attribute, not by upper bound — but with P = ∅ all
        // upper bounds are equal, so the rank contract still holds.
        true
    }

    fn can_extend_limit(&self) -> bool {
        true // A scan imposes no top-k cap.
    }

    fn extend_limit(&mut self, _extra: usize) -> bool {
        true // A scan imposes no top-k cap.
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::operator::{check_rank_order, drain};
    use ranksql_common::{DataType, Field, Value};
    use ranksql_expr::{RankPredicate, ScoringFunction};
    use ranksql_storage::TableBuilder;

    /// Relation S of Figure 2(c).
    fn table_s() -> Arc<Table> {
        let schema = Schema::new(vec![
            Field::new("a", DataType::Int64),
            Field::new("c", DataType::Int64),
            Field::new("p3", DataType::Float64),
            Field::new("p4", DataType::Float64),
            Field::new("p5", DataType::Float64),
        ])
        .qualify_all("S");
        let rows = [
            (4, 3, 0.7, 0.8, 0.9),
            (1, 1, 0.9, 0.85, 0.8),
            (1, 2, 0.5, 0.45, 0.75),
            (4, 2, 0.4, 0.7, 0.95),
            (5, 1, 0.3, 0.9, 0.6),
            (2, 3, 0.25, 0.45, 0.9),
        ];
        let t = TableBuilder::new("S", schema)
            .rows(rows.iter().map(|&(a, c, p3, p4, p5)| {
                vec![
                    Value::from(a),
                    Value::from(c),
                    Value::from(p3),
                    Value::from(p4),
                    Value::from(p5),
                ]
            }))
            .build(0)
            .unwrap();
        Arc::new(t)
    }

    fn ctx_s() -> Arc<RankingContext> {
        RankingContext::new(
            vec![
                RankPredicate::attribute("p3", "S.p3"),
                RankPredicate::attribute("p4", "S.p4"),
                RankPredicate::attribute("p5", "S.p5"),
            ],
            ScoringFunction::Sum,
        )
    }

    #[test]
    fn seq_scan_emits_all_rows_unranked() {
        let t = table_s();
        let ctx = ctx_s();
        let exec = ExecutionContext::new(Arc::clone(&ctx));
        let mut scan = SeqScan::new(&t, &exec, "SeqScan(S)");
        let all = drain(&mut scan).unwrap();
        assert_eq!(all.len(), 6);
        for rt in &all {
            assert!(rt.state.evaluated().is_empty());
            assert_eq!(ctx.upper_bound(&rt.state), ranksql_common::Score::new(3.0));
        }
        assert_eq!(exec.metrics().output_cardinalities()[0].1, 6);
    }

    #[test]
    fn rank_scan_emits_in_descending_p3_order() {
        let t = table_s();
        let ctx = ctx_s();
        let exec = ExecutionContext::new(Arc::clone(&ctx));
        let idx = Arc::new(ScoreIndex::build(ctx.predicate(0), t.schema(), &t.scan()).unwrap());
        let mut scan = RankScan::new(Arc::clone(&t), idx, 0, &exec, "RankScan").unwrap();
        let all = drain(&mut scan).unwrap();
        assert_eq!(all.len(), 6);
        // Figure 2(f): s2 (p3=0.9) first, upper bound 2.9.
        assert_eq!(
            ctx.upper_bound(&all[0].state),
            ranksql_common::Score::new(2.9)
        );
        assert_eq!(all[0].tuple.value(0), &Value::from(1));
        assert_eq!(check_rank_order(&all, &ctx), None);
        // p3 is marked evaluated; p4/p5 are not.
        assert!(all[0].state.is_evaluated(0));
        assert!(!all[0].state.is_evaluated(1));
    }

    #[test]
    fn rank_scan_rejects_mismatched_index() {
        let t = table_s();
        let ctx = ctx_s();
        let exec = ExecutionContext::new(ctx);
        let idx_p4 = Arc::new(
            ScoreIndex::build(exec.ranking().predicate(1), t.schema(), &t.scan()).unwrap(),
        );
        let err = RankScan::new(Arc::clone(&t), idx_p4, 0, &exec, "RankScan");
        assert!(err.is_err());
    }

    #[test]
    fn attribute_index_scan_orders_by_column() {
        let t = table_s();
        let ctx = ctx_s();
        let exec = ExecutionContext::new(ctx);
        let idx = Arc::new(BTreeIndex::build("S.a", t.schema(), &t.scan()).unwrap());
        let mut scan = AttributeIndexScan::new(Arc::clone(&t), idx, &exec, "IdxScan(S.a)").unwrap();
        let all = drain(&mut scan).unwrap();
        let a_vals: Vec<i64> = all
            .iter()
            .map(|t| t.tuple.value(0).as_i64().unwrap())
            .collect();
        let mut sorted = a_vals.clone();
        sorted.sort();
        assert_eq!(a_vals, sorted);
    }
}
