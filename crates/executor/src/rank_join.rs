//! Rank-aware join operators: HRJN (hash rank-join) and NRJN (nested-loop
//! rank-join), after Ilyas et al. (VLDB'03), adapted to the rank-relational
//! execution model.
//!
//! Both operators consume two *ranked* inputs (streams in non-increasing
//! upper-bound order), produce join results incrementally in non-increasing
//! upper-bound order of the combined score state, and stop drawing input as
//! soon as the requested results are guaranteed — which is what makes
//! ranking plans' cost proportional to `k`.

use std::sync::Arc;

use ranksql_common::{Result, Schema, Score, Value};
use ranksql_expr::{BoolExpr, BoundBoolExpr, RankedTuple, RankingContext, ScoreState};

use crate::fxhash::FxHashMap;

use crate::context::ExecutionContext;
use crate::join::extract_join_keys;
use crate::metrics::OperatorMetrics;
use crate::operator::{Batch, BoxedOperator, PhysicalOperator, RankingQueue};

/// Which side to pull from next.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Side {
    Left,
    Right,
}

/// State kept per input side.
struct SideState {
    input: BoxedOperator,
    /// All tuples drawn so far.
    seen: Vec<RankedTuple>,
    /// Hash table from join-key values to indices into `seen` (HRJN only).
    hash: FxHashMap<Vec<Value>, Vec<usize>>,
    /// Key column indices within this side's schema.
    key_cols: Vec<usize>,
    /// Score state of the first (best) tuple drawn.
    top_state: Option<ScoreState>,
    /// Score state of the most recently drawn tuple.
    last_state: Option<ScoreState>,
    exhausted: bool,
    ranked: bool,
}

impl SideState {
    fn new(input: BoxedOperator, key_cols: Vec<usize>) -> Self {
        let ranked = input.is_ranked();
        SideState {
            input,
            seen: Vec::new(),
            hash: FxHashMap::default(),
            key_cols,
            top_state: None,
            last_state: None,
            exhausted: false,
            ranked,
        }
    }
}

/// A rank-aware join.  With `use_hash = true` this is HRJN: matches are found
/// by probing a symmetric pair of hash tables on the equi-join keys.  With
/// `use_hash = false` it is NRJN: every new tuple is checked against all
/// tuples seen on the other side (supporting arbitrary join conditions,
/// including rank-join predicates with no equi-key).
pub struct RankJoin {
    left: SideState,
    right: SideState,
    /// Full join condition bound against the joined schema (used by NRJN and
    /// as the residual check for HRJN).
    condition: Option<BoundBoolExpr>,
    /// Whether to probe by hash (HRJN) or scan (NRJN).
    use_hash: bool,
    schema: Schema,
    ctx: Arc<RankingContext>,
    metrics: Arc<OperatorMetrics>,
    output: RankingQueue,
    turn: Side,
}

impl RankJoin {
    /// Creates an HRJN operator.  The condition must contain at least one
    /// equi-join conjunct; remaining conjuncts are applied as a residual.
    pub fn hrjn(
        left: BoxedOperator,
        right: BoxedOperator,
        condition: Option<&BoolExpr>,
        exec: &ExecutionContext,
        label: impl Into<String>,
    ) -> Result<Self> {
        let keys = extract_join_keys(condition, left.schema(), right.schema());
        if keys.keys.is_empty() {
            return Err(ranksql_common::RankSqlError::Execution(
                "HRJN requires at least one equi-join condition (use NRJN otherwise)".into(),
            ));
        }
        Self::build(
            left,
            right,
            condition,
            keys.keys,
            true,
            exec.ranking_arc(),
            exec.register(label),
        )
    }

    /// Creates an NRJN operator (arbitrary or absent condition).
    pub fn nrjn(
        left: BoxedOperator,
        right: BoxedOperator,
        condition: Option<&BoolExpr>,
        exec: &ExecutionContext,
        label: impl Into<String>,
    ) -> Result<Self> {
        Self::build(
            left,
            right,
            condition,
            Vec::new(),
            false,
            exec.ranking_arc(),
            exec.register(label),
        )
    }

    fn build(
        left: BoxedOperator,
        right: BoxedOperator,
        condition: Option<&BoolExpr>,
        keys: Vec<(usize, usize)>,
        use_hash: bool,
        ctx: Arc<RankingContext>,
        metrics: Arc<OperatorMetrics>,
    ) -> Result<Self> {
        let schema = left.schema().join(right.schema());
        let bound_condition = condition.map(|c| c.bind(&schema)).transpose()?;
        let left_keys: Vec<usize> = keys.iter().map(|&(l, _)| l).collect();
        let right_keys: Vec<usize> = keys.iter().map(|&(_, r)| r).collect();
        Ok(RankJoin {
            left: SideState::new(left, left_keys),
            right: SideState::new(right, right_keys),
            condition: bound_condition,
            use_hash,
            schema,
            output: RankingQueue::new(Arc::clone(&ctx)),
            ctx,
            metrics,
            turn: Side::Left,
        })
    }

    /// The threshold `T`: an upper bound on the combined score of any join
    /// result not yet in the output queue.  Following HRJN, it is the better
    /// of "a future left tuple joined with the best right tuple seen" and
    /// "a future right tuple joined with the best left tuple seen".
    fn threshold(&self) -> Score {
        if self.left.exhausted && self.right.exhausted {
            return Score::new(f64::NEG_INFINITY);
        }
        // Combine a hypothetical future tuple of one side (bounded by that
        // side's last-drawn state) with the best seen tuple of the other
        // side.  Merging the actual states keeps this exact for additive
        // scoring functions and conservative for the rest (unevaluated
        // predicates are filled with the maximal value either way).
        let combine = |future_side: &SideState, other_top: &Option<ScoreState>| -> Score {
            match (&future_side.last_state, other_top) {
                (_, None) => {
                    // Nothing seen on the other side yet: no join result can
                    // be formed with it, but future results are still
                    // possible once it produces tuples; stay conservative.
                    self.ctx.initial_upper_bound()
                }
                (None, Some(_)) if future_side.exhausted => Score::new(f64::NEG_INFINITY),
                (None, Some(top)) => {
                    // Future side not yet sampled: bound by the other top
                    // alone (its own predicates unevaluated = filled max).
                    self.ctx.upper_bound(top)
                }
                (Some(last), Some(top)) => {
                    if future_side.exhausted {
                        Score::new(f64::NEG_INFINITY)
                    } else {
                        self.ctx.upper_bound(&last.merge(top))
                    }
                }
            }
        };
        let t1 = if self.left.exhausted {
            Score::new(f64::NEG_INFINITY)
        } else if !self.left.ranked {
            self.ctx.initial_upper_bound()
        } else {
            combine(&self.left, &self.right.top_state)
        };
        let t2 = if self.right.exhausted {
            Score::new(f64::NEG_INFINITY)
        } else if !self.right.ranked {
            self.ctx.initial_upper_bound()
        } else {
            combine(&self.right, &self.left.top_state)
        };
        t1.max(t2)
    }

    /// Draws one tuple from `side`, joining it against everything seen on the
    /// other side and buffering the results.
    fn advance(&mut self, side: Side) -> Result<()> {
        let (this, other) = match side {
            Side::Left => (&mut self.left, &mut self.right),
            Side::Right => (&mut self.right, &mut self.left),
        };
        match this.input.next()? {
            None => {
                this.exhausted = true;
            }
            Some(t) => {
                self.metrics.add_in(1);
                if this.top_state.is_none() {
                    this.top_state = Some(t.state.clone());
                }
                this.last_state = Some(t.state.clone());
                // Find partners on the other side.
                let partner_indices: Vec<usize> = if self.use_hash {
                    let key: Vec<Value> = this
                        .key_cols
                        .iter()
                        .map(|&i| t.tuple.value(i).clone())
                        .collect();
                    other.hash.get(&key).cloned().unwrap_or_default()
                } else {
                    (0..other.seen.len()).collect()
                };
                for pi in partner_indices {
                    let partner = &other.seen[pi];
                    let joined = match side {
                        Side::Left => t.join(partner),
                        Side::Right => partner.join(&t),
                    };
                    let passes = match &self.condition {
                        Some(c) => c.eval(&joined.tuple)?,
                        None => true,
                    };
                    if passes {
                        self.output.push(joined);
                    }
                }
                // Register the new tuple on its own side.
                if self.use_hash {
                    let key: Vec<Value> = this
                        .key_cols
                        .iter()
                        .map(|&i| t.tuple.value(i).clone())
                        .collect();
                    this.hash.entry(key).or_default().push(this.seen.len());
                }
                this.seen.push(t);
                self.metrics
                    .observe_buffered((self.left.seen.len() + self.right.seen.len()) as u64);
            }
        }
        Ok(())
    }

    fn pick_side(&self) -> Option<Side> {
        match (self.left.exhausted, self.right.exhausted) {
            (true, true) => None,
            (false, true) => Some(Side::Left),
            (true, false) => Some(Side::Right),
            (false, false) => Some(self.turn),
        }
    }
}

impl PhysicalOperator for RankJoin {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn next(&mut self) -> Result<Option<RankedTuple>> {
        loop {
            let threshold = self.threshold();
            if let Some(best) = self.output.peek_score() {
                let both_done = self.left.exhausted && self.right.exhausted;
                if both_done || best >= threshold {
                    let t = self.output.pop().expect("non-empty output queue");
                    self.metrics.add_out(1);
                    return Ok(Some(t));
                }
            } else if self.left.exhausted && self.right.exhausted {
                return Ok(None);
            }
            match self.pick_side() {
                Some(side) => {
                    self.advance(side)?;
                    // Alternate between inputs (the paper's HRJN pulls from
                    // both streams; a simple round-robin strategy suffices).
                    self.turn = match self.turn {
                        Side::Left => Side::Right,
                        Side::Right => Side::Left,
                    };
                }
                None => {
                    // Both exhausted; loop once more to flush the queue.
                    if self.output.is_empty() {
                        return Ok(None);
                    }
                }
            }
        }
    }

    fn next_batch(&mut self, max: usize, out: &mut Batch) -> Result<usize> {
        // Rank-joins emit against the HRJN threshold one tuple at a time;
        // the adapter keeps that exact and only chunks the hand-off, so a
        // top-k consumer never forces extra input consumption.
        let mut n = 0;
        while n < max {
            match self.next()? {
                Some(t) => {
                    out.push(t);
                    n += 1;
                }
                None => break,
            }
        }
        if n > 0 {
            self.metrics.add_batch();
        }
        Ok(n)
    }

    fn can_extend_limit(&self) -> bool {
        self.left.input.can_extend_limit() && self.right.input.can_extend_limit()
    }

    fn extend_limit(&mut self, extra: usize) -> bool {
        // HRJN/NRJN buffer every drawn tuple in their side states and the
        // output queue — nothing is discarded, so extending a top-k just
        // resumes the incremental join where it stopped.
        self.left.input.extend_limit(extra) & self.right.input.extend_limit(extra)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::ExecutionContext;
    use crate::operator::{check_rank_order, drain, take};
    use crate::scan::RankScan;
    use ranksql_common::{DataType, Field, Value};
    use ranksql_expr::{RankPredicate, ScoringFunction};
    use ranksql_storage::{ScoreIndex, Table, TableBuilder};

    /// Relation R of Figure 2(a): columns a, b and predicates p1, p2.
    fn table_r() -> Arc<Table> {
        let schema = Schema::new(vec![
            Field::new("a", DataType::Int64),
            Field::new("b", DataType::Int64),
            Field::new("p1", DataType::Float64),
            Field::new("p2", DataType::Float64),
        ])
        .qualify_all("R");
        let rows = [(1, 2, 0.9, 0.65), (2, 3, 0.8, 0.5), (3, 4, 0.7, 0.7)];
        Arc::new(
            TableBuilder::new("R", schema)
                .rows(rows.iter().map(|&(a, b, p1, p2)| {
                    vec![
                        Value::from(a),
                        Value::from(b),
                        Value::from(p1),
                        Value::from(p2),
                    ]
                }))
                .build(0)
                .unwrap(),
        )
    }

    /// Relation S of Figure 2(c): columns a, c and predicates p3, p4, p5.
    fn table_s() -> Arc<Table> {
        let schema = Schema::new(vec![
            Field::new("a", DataType::Int64),
            Field::new("c", DataType::Int64),
            Field::new("p3", DataType::Float64),
            Field::new("p4", DataType::Float64),
            Field::new("p5", DataType::Float64),
        ])
        .qualify_all("S");
        let rows = [
            (4, 3, 0.7, 0.8, 0.9),
            (1, 1, 0.9, 0.85, 0.8),
            (1, 2, 0.5, 0.45, 0.75),
            (4, 2, 0.4, 0.7, 0.95),
            (5, 1, 0.3, 0.9, 0.6),
            (2, 3, 0.25, 0.45, 0.9),
        ];
        Arc::new(
            TableBuilder::new("S", schema)
                .rows(rows.iter().map(|&(a, c, p3, p4, p5)| {
                    vec![
                        Value::from(a),
                        Value::from(c),
                        Value::from(p3),
                        Value::from(p4),
                        Value::from(p5),
                    ]
                }))
                .build(1)
                .unwrap(),
        )
    }

    /// The context of Figure 4(f): F3 = sum(p1, p2, p3, p4, p5).
    fn ctx_f3() -> Arc<RankingContext> {
        RankingContext::new(
            vec![
                RankPredicate::attribute("p1", "R.p1"),
                RankPredicate::attribute("p2", "R.p2"),
                RankPredicate::attribute("p3", "S.p3"),
                RankPredicate::attribute("p4", "S.p4"),
                RankPredicate::attribute("p5", "S.p5"),
            ],
            ScoringFunction::Sum,
        )
    }

    fn rank_scan(
        t: &Arc<Table>,
        pred: usize,
        exec: &ExecutionContext,
        name: &str,
    ) -> BoxedOperator {
        let idx = Arc::new(
            ScoreIndex::build(exec.ranking().predicate(pred), t.schema(), &t.scan()).unwrap(),
        );
        Box::new(RankScan::new(Arc::clone(t), idx, pred, exec, name).unwrap())
    }

    #[test]
    fn figure4f_join_membership_and_order() {
        // R_{p1} ⋈_{R.a=S.a} S_{p3} (Figure 4(f)): results are r1s2 (4.8)
        // and r1s3 (4.4), plus r2s6 (R.a=2 = S.a=2) which Figure 4(f) omits
        // because it only lists the top of the stream... actually R.a=2
        // matches s6 (a=2): F3 bound = 0.8+1+0.25+1+1 = 4.05.  Check the
        // full membership and ordering here.
        let r = table_r();
        let s = table_s();
        let ctx = ctx_f3();
        let exec = ExecutionContext::new(Arc::clone(&ctx));
        let cond = BoolExpr::col_eq_col("R.a", "S.a");
        let left = rank_scan(&r, 0, &exec, "rankscan_p1(R)");
        let right = rank_scan(&s, 2, &exec, "rankscan_p3(S)");
        let mut join = RankJoin::hrjn(left, right, Some(&cond), &exec, "HRJN").unwrap();
        let all = drain(&mut join).unwrap();
        assert_eq!(all.len(), 3);
        assert_eq!(check_rank_order(&all, &ctx), None);
        // Top result: r1 ⋈ s2 with bound 0.9 + 1 + 0.9 + 1 + 1 = 4.8.
        assert_eq!(ctx.upper_bound(&all[0].state), Score::new(4.8));
        assert_eq!(all[0].tuple.value(0), &Value::from(1)); // R.a
        assert_eq!(all[0].tuple.value(5), &Value::from(1)); // S.c = 1 → s2
                                                            // Second: r1 ⋈ s3 with bound 4.4.
        assert_eq!(ctx.upper_bound(&all[1].state), Score::new(4.4));
        // Third: r2 ⋈ s6 with bound 4.05.
        assert_eq!(ctx.upper_bound(&all[2].state), Score::new(4.05));
    }

    #[test]
    fn hrjn_and_nrjn_agree() {
        let r = table_r();
        let s = table_s();
        let cond = BoolExpr::col_eq_col("R.a", "S.a");
        let ctx1 = ctx_f3();
        let exec1 = ExecutionContext::new(Arc::clone(&ctx1));
        let mut hrjn = RankJoin::hrjn(
            rank_scan(&r, 0, &exec1, "l"),
            rank_scan(&s, 2, &exec1, "r"),
            Some(&cond),
            &exec1,
            "HRJN",
        )
        .unwrap();
        let ctx2 = ctx_f3();
        let exec2 = ExecutionContext::new(Arc::clone(&ctx2));
        let mut nrjn = RankJoin::nrjn(
            rank_scan(&r, 0, &exec2, "l"),
            rank_scan(&s, 2, &exec2, "r"),
            Some(&cond),
            &exec2,
            "NRJN",
        )
        .unwrap();
        let a = drain(&mut hrjn).unwrap();
        let b = drain(&mut nrjn).unwrap();
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b.iter()) {
            assert_eq!(x.tuple.id(), y.tuple.id());
            assert_eq!(ctx1.upper_bound(&x.state), ctx2.upper_bound(&y.state));
        }
    }

    #[test]
    fn hrjn_requires_equi_condition_nrjn_does_not() {
        let r = table_r();
        let s = table_s();
        let ctx = ctx_f3();
        let exec = ExecutionContext::new(Arc::clone(&ctx));
        let theta = BoolExpr::compare(
            ranksql_expr::ScalarExpr::col("R.a"),
            ranksql_expr::CompareOp::Lt,
            ranksql_expr::ScalarExpr::col("S.a"),
        );
        assert!(RankJoin::hrjn(
            rank_scan(&r, 0, &exec, "l"),
            rank_scan(&s, 2, &exec, "r"),
            Some(&theta),
            &exec,
            "HRJN",
        )
        .is_err());
        let mut nrjn = RankJoin::nrjn(
            rank_scan(&r, 0, &exec, "l"),
            rank_scan(&s, 2, &exec, "r"),
            Some(&theta),
            &exec,
            "NRJN",
        )
        .unwrap();
        let out = drain(&mut nrjn).unwrap();
        // R.a < S.a pairs: r1(a=1) with s1,s4 (a=4), s5 (a=5), s6 (a=2);
        // r2(a=2) with a=4,4,5; r3(a=3) with a=4,4,5 → 4 + 3 + 3 = 10.
        assert_eq!(out.len(), 10);
        assert_eq!(check_rank_order(&out, &ctx), None);
    }

    #[test]
    fn top_k_join_stops_early() {
        let r = table_r();
        let s = table_s();
        let ctx = ctx_f3();
        let exec = ExecutionContext::new(Arc::clone(&ctx));
        let cond = BoolExpr::col_eq_col("R.a", "S.a");
        let mut join = RankJoin::hrjn(
            rank_scan(&r, 0, &exec, "left_scan"),
            rank_scan(&s, 2, &exec, "right_scan"),
            Some(&cond),
            &exec,
            "HRJN",
        )
        .unwrap();
        let top = take(&mut join, 1).unwrap();
        assert_eq!(top.len(), 1);
        assert_eq!(ctx.upper_bound(&top[0].state), Score::new(4.8));
        // The join must not have consumed everything from both sides: with
        // 3 + 6 input tuples, early termination should need fewer pulls.
        let pulled: u64 = exec
            .metrics()
            .snapshot()
            .iter()
            .filter(|m| m.name().contains("scan"))
            .map(|m| m.tuples_out())
            .sum();
        assert!(
            pulled < 9,
            "HRJN pulled all {pulled} input tuples for a top-1 query"
        );
    }

    #[test]
    fn cross_rank_join_via_nrjn() {
        let r = table_r();
        let s = table_s();
        let ctx = ctx_f3();
        let exec = ExecutionContext::new(Arc::clone(&ctx));
        let mut join = RankJoin::nrjn(
            rank_scan(&r, 0, &exec, "l"),
            rank_scan(&s, 2, &exec, "r"),
            None,
            &exec,
            "NRJN",
        )
        .unwrap();
        let all = drain(&mut join).unwrap();
        assert_eq!(all.len(), 18);
        assert_eq!(check_rank_order(&all, &ctx), None);
    }

    #[test]
    fn empty_side_produces_empty_join() {
        let r = table_r();
        let ctx = ctx_f3();
        let exec = ExecutionContext::new(Arc::clone(&ctx));
        let empty_schema = Schema::new(vec![
            Field::new("a", DataType::Int64),
            Field::new("p3", DataType::Float64),
        ])
        .qualify_all("S");
        let empty = Arc::new(TableBuilder::new("S", empty_schema).build(9).unwrap());
        let idx =
            Arc::new(ScoreIndex::build(ctx.predicate(2), empty.schema(), &empty.scan()).unwrap());
        let right = Box::new(RankScan::new(Arc::clone(&empty), idx, 2, &exec, "r").unwrap());
        let cond = BoolExpr::col_eq_col("R.a", "S.a");
        let mut join = RankJoin::hrjn(
            rank_scan(&r, 0, &exec, "l"),
            right,
            Some(&cond),
            &exec,
            "HRJN",
        )
        .unwrap();
        assert!(drain(&mut join).unwrap().is_empty());
    }
}
