//! A naive, obviously-correct evaluator used as the correctness oracle.
//!
//! `oracle_top_k` evaluates a [`RankQuery`] exactly as the canonical form of
//! Eq. 1 prescribes — full Cartesian product, filter, evaluate every ranking
//! predicate, sort, cut off at `k` — without going through the physical
//! operators.  Tests compare every physical plan and every optimizer choice
//! against it; the sampling-based cardinality estimator also reuses it to run
//! queries over table samples.

use ranksql_algebra::RankQuery;
use ranksql_common::{Result, Schema, Tuple};
use ranksql_expr::{RankedTuple, ScoreState};
use ranksql_storage::Catalog;

/// Executes `query` naively over full tables and returns the top `k` ranked
/// tuples (ties broken by tuple identity, like everywhere else).
///
/// Ranking predicates are evaluated directly (bypassing the shared evaluation
/// counters) so the oracle does not disturb the metrics under test.
pub fn oracle_top_k(query: &RankQuery, catalog: &Catalog) -> Result<Vec<RankedTuple>> {
    let tables: Vec<_> = query
        .tables
        .iter()
        .map(|name| catalog.table(name))
        .collect::<Result<Vec<_>>>()?;
    let scans: Vec<Vec<Tuple>> = tables.iter().map(|t| t.scan()).collect();
    let schema = tables
        .iter()
        .map(|t| t.schema().clone())
        .reduce(|a, b| a.join(&b))
        .unwrap_or_else(Schema::empty);
    oracle_top_k_over_rows(query, &schema, &scans)
}

/// The same oracle, but over externally supplied row sets (one per query
/// table, in query-table order).  Used by the sampling-based estimator to run
/// the query over table *samples*.
pub fn oracle_top_k_over_rows(
    query: &RankQuery,
    schema: &Schema,
    rows_per_table: &[Vec<Tuple>],
) -> Result<Vec<RankedTuple>> {
    assert_eq!(
        rows_per_table.len(),
        query.tables.len(),
        "one row set per query table is required"
    );
    // Bind Boolean predicates once against the product schema.
    let bound: Vec<_> = query
        .bool_predicates
        .iter()
        .map(|p| p.bind(schema))
        .collect::<Result<Vec<_>>>()?;
    let n = query.num_rank_predicates();

    let mut results: Vec<RankedTuple> = Vec::new();
    let mut stack: Vec<Tuple> = Vec::new();
    product(
        rows_per_table,
        0,
        &mut stack,
        &mut |joined: &Tuple| -> Result<()> {
            for b in &bound {
                if !b.eval(joined)? {
                    return Ok(());
                }
            }
            let mut state = ScoreState::new(n);
            for i in 0..n {
                let score = query.ranking.predicate(i).evaluate(joined, schema)?;
                state.set(i, score.value());
            }
            results.push(RankedTuple::new(joined.clone(), state));
            Ok(())
        },
    )?;

    let scoring = query.ranking.scoring().clone();
    let max_value = query.ranking.max_predicate_value();
    results.sort_by(|a, b| a.cmp_desc(b, &scoring, max_value));
    results.truncate(query.k);
    Ok(results)
}

fn product(
    rows_per_table: &[Vec<Tuple>],
    depth: usize,
    stack: &mut Vec<Tuple>,
    visit: &mut dyn FnMut(&Tuple) -> Result<()>,
) -> Result<()> {
    if depth == rows_per_table.len() {
        let joined = stack
            .iter()
            .cloned()
            .reduce(|a, b| a.join(&b))
            .expect("queries have at least one table");
        return visit(&joined);
    }
    for t in &rows_per_table[depth] {
        stack.push(t.clone());
        product(rows_per_table, depth + 1, stack, visit)?;
        stack.pop();
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use ranksql_common::{DataType, Field, Score, Value};
    use ranksql_expr::{BoolExpr, RankPredicate, RankingContext, ScoringFunction};

    fn setup() -> (Catalog, RankQuery) {
        let cat = Catalog::new();
        let r = cat
            .create_table(
                "R",
                Schema::new(vec![
                    Field::new("a", DataType::Int64),
                    Field::new("p1", DataType::Float64),
                ]),
            )
            .unwrap();
        let s = cat
            .create_table(
                "S",
                Schema::new(vec![
                    Field::new("a", DataType::Int64),
                    Field::new("p2", DataType::Float64),
                ]),
            )
            .unwrap();
        for (a, p) in [(1, 0.9), (2, 0.8), (3, 0.7)] {
            r.insert(vec![Value::from(a), Value::from(p)]).unwrap();
        }
        for (a, p) in [(1, 0.5), (1, 0.4), (3, 0.95), (4, 1.0)] {
            s.insert(vec![Value::from(a), Value::from(p)]).unwrap();
        }
        let ranking = RankingContext::new(
            vec![
                RankPredicate::attribute("p1", "R.p1"),
                RankPredicate::attribute("p2", "S.p2"),
            ],
            ScoringFunction::Sum,
        );
        let query = RankQuery::new(
            vec!["R".into(), "S".into()],
            vec![BoolExpr::col_eq_col("R.a", "S.a")],
            ranking,
            2,
        );
        (cat, query)
    }

    #[test]
    fn oracle_returns_correct_top_k() {
        let (cat, query) = setup();
        let top = oracle_top_k(&query, &cat).unwrap();
        assert_eq!(top.len(), 2);
        // Join results: (1,0.9,1,0.5)=1.4, (1,0.9,1,0.4)=1.3, (3,0.7,3,0.95)=1.65.
        let s0 = query.ranking.upper_bound(&top[0].state);
        let s1 = query.ranking.upper_bound(&top[1].state);
        assert_eq!(s0, Score::new(1.65));
        assert_eq!(s1, Score::new(1.4));
    }

    #[test]
    fn oracle_respects_k_larger_than_results() {
        let (cat, mut query) = setup();
        query.k = 100;
        let all = oracle_top_k(&query, &cat).unwrap();
        assert_eq!(all.len(), 3);
        // Non-increasing scores.
        for w in all.windows(2) {
            assert!(
                query.ranking.upper_bound(&w[0].state) >= query.ranking.upper_bound(&w[1].state)
            );
        }
    }

    #[test]
    fn oracle_does_not_touch_eval_counters() {
        let (cat, query) = setup();
        let _ = oracle_top_k(&query, &cat).unwrap();
        assert_eq!(query.ranking.counters().total(), 0);
    }

    #[test]
    fn oracle_over_explicit_rows_matches_full_oracle() {
        let (cat, query) = setup();
        let rows: Vec<Vec<Tuple>> = query
            .tables
            .iter()
            .map(|t| cat.table(t).unwrap().scan())
            .collect();
        let schema = cat
            .table("R")
            .unwrap()
            .schema()
            .join(cat.table("S").unwrap().schema());
        let a = oracle_top_k(&query, &cat).unwrap();
        let b = oracle_top_k_over_rows(&query, &schema, &rows).unwrap();
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b.iter()) {
            assert_eq!(x.tuple.id(), y.tuple.id());
        }
    }
}
