//! The physical operator interface and shared ordering utilities.

use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::sync::Arc;

use ranksql_common::{Result, Schema, Score};
use ranksql_expr::{RankedTuple, RankingContext};

/// A chunk of [`RankedTuple`]s flowing between batched operators — the
/// executor's instantiation of the reusable [`ranksql_common::Batch`] buffer.
pub type Batch = ranksql_common::Batch<RankedTuple>;

/// A Volcano-style physical operator producing [`RankedTuple`]s on demand.
///
/// The paper's iterator interface is `Open` / `GetNext` / `Close`; in Rust
/// construction plays the role of `Open`, [`PhysicalOperator::next`] is
/// `GetNext` (returning `None` at end of stream) and `Drop` is `Close`.
///
/// **Ordering contract.** An operator whose [`PhysicalOperator::is_ranked`]
/// returns `true` must emit tuples in non-increasing order of their
/// maximal-possible score `F_P[t]` with respect to the shared
/// [`RankingContext`]; this is the incremental execution model of
/// Section 4.1.  Operators that are not rank-aware (traditional joins, plain
/// sort inputs) make no ordering promise.
///
/// **Batched pull.** [`PhysicalOperator::next_batch`] is the vectorized form
/// of `next`: it appends up to `max` tuples to a caller-owned [`Batch`] and
/// returns how many it appended, amortizing virtual dispatch, metric updates
/// and budget accounting over the whole chunk.  A batch is always a
/// contiguous chunk of the same tuple stream `next` would produce, so both
/// contracts (membership *and* emission order) carry over unchanged; the two
/// entry points share state and may be mixed freely on one operator.
/// Membership-oriented operators (scans, filters, traditional joins, sorts,
/// limits) override it with genuinely vectorized inner loops; rank-aware
/// operators keep the tuple-at-a-time default below, which preserves the
/// paper's incremental top-k semantics — a consumer asking for a small batch
/// never forces more probing or input consumption than `max` calls to `next`
/// would.
pub trait PhysicalOperator {
    /// The schema of emitted tuples.
    fn schema(&self) -> &Schema;

    /// Produces the next tuple, or `None` when the stream is exhausted.
    fn next(&mut self) -> Result<Option<RankedTuple>>;

    /// Appends up to `max` tuples to `out`, returning how many were appended.
    ///
    /// A return of `0` (with `max > 0`) means the stream is exhausted.  The
    /// default implementation adapts [`PhysicalOperator::next`].
    fn next_batch(&mut self, max: usize, out: &mut Batch) -> Result<usize> {
        let mut n = 0;
        while n < max {
            match self.next()? {
                Some(t) => {
                    out.push(t);
                    n += 1;
                }
                None => break,
            }
        }
        Ok(n)
    }

    /// Whether this operator's output respects the rank-relational ordering
    /// contract.
    fn is_ranked(&self) -> bool {
        true
    }

    /// Whether this subtree could serve tuples beyond its current top-k cap
    /// if [`PhysicalOperator::extend_limit`] were called — `false` when some
    /// operator discarded tuples beyond recovery (a bounded-heap top-k sort
    /// that already materialised, an ordered exchange that already
    /// re-limited its merge).
    ///
    /// This is the *pure* query half of top-k extension: callers (e.g.
    /// `Cursor::fetch_more`) check it over the whole tree before mutating
    /// anything, so a refusal leaves every cap untouched.  The default is
    /// conservative (`false`); operators that impose no cap return `true`
    /// and order/membership-preserving operators forward to their inputs.
    fn can_extend_limit(&self) -> bool {
        false
    }

    /// Raises every top-k cap this subtree imposes by `extra` tuples, so an
    /// exhausted stream can resume — the executor half of
    /// `Cursor::fetch_more`.  Returns whether the subtree accepted the
    /// extension (the same answer as [`PhysicalOperator::can_extend_limit`]).
    ///
    /// Call [`PhysicalOperator::can_extend_limit`] first: invoking this on a
    /// tree that cannot extend may have raised caps in *sibling* subtrees by
    /// the time the refusing operator is reached.  Incremental rank-aware
    /// operators (µ, MPro, HRJN/NRJN) buffer but never discard, which is
    /// exactly why top-k extension is cheap on the paper's pipelined
    /// ranking plans.
    fn extend_limit(&mut self, extra: usize) -> bool {
        let _ = extra;
        false
    }
}

/// A boxed physical operator.
pub type BoxedOperator = Box<dyn PhysicalOperator>;

/// An entry of a ranking (priority) queue: a tuple keyed by its upper-bound
/// score, with deterministic tie-breaking on tuple identity.
#[derive(Debug, Clone)]
pub struct HeapEntry {
    /// The buffered tuple.
    pub tuple: RankedTuple,
    /// The upper-bound score it is ordered by.
    pub score: Score,
}

impl HeapEntry {
    /// Creates an entry, computing the score from the ranking context.
    pub fn new(tuple: RankedTuple, ctx: &RankingContext) -> Self {
        let score = ctx.upper_bound(&tuple.state);
        HeapEntry { tuple, score }
    }
}

impl PartialEq for HeapEntry {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}

impl Eq for HeapEntry {}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Max-heap on score; ties broken so that the smaller tuple id pops
        // first (BinaryHeap pops the maximum, so invert the id comparison).
        self.score
            .cmp(&other.score)
            .then_with(|| other.tuple.tuple.id().cmp(self.tuple.tuple.id()))
    }
}

/// A ranking queue: a max-priority queue of tuples ordered by upper-bound
/// score (deterministic ties), as used by µ, the rank-joins and the
/// rank-aware set operators.
#[derive(Debug)]
pub struct RankingQueue {
    heap: BinaryHeap<HeapEntry>,
    ctx: Arc<RankingContext>,
}

impl RankingQueue {
    /// Creates an empty queue bound to a ranking context.
    pub fn new(ctx: Arc<RankingContext>) -> Self {
        RankingQueue {
            heap: BinaryHeap::new(),
            ctx,
        }
    }

    /// Buffers a tuple.
    pub fn push(&mut self, tuple: RankedTuple) {
        let entry = HeapEntry::new(tuple, &self.ctx);
        self.heap.push(entry);
    }

    /// The score of the best buffered tuple.
    pub fn peek_score(&self) -> Option<Score> {
        self.heap.peek().map(|e| e.score)
    }

    /// Removes and returns the best buffered tuple.
    pub fn pop(&mut self) -> Option<RankedTuple> {
        self.heap.pop().map(|e| e.tuple)
    }

    /// Removes the best tuple only if its score is at least `threshold`.
    pub fn pop_if_at_least(&mut self, threshold: Score) -> Option<RankedTuple> {
        match self.heap.peek() {
            Some(e) if e.score >= threshold => self.heap.pop().map(|e| e.tuple),
            _ => None,
        }
    }

    /// Number of buffered tuples.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

/// Drains an operator completely, collecting every emitted tuple.
pub fn drain(op: &mut dyn PhysicalOperator) -> Result<Vec<RankedTuple>> {
    let mut out = Vec::new();
    while let Some(t) = op.next()? {
        out.push(t);
    }
    Ok(out)
}

/// Drains an operator completely through the batched interface, pulling
/// chunks of `batch_size` tuples at a time.
pub fn drain_batched(op: &mut dyn PhysicalOperator, batch_size: usize) -> Result<Vec<RankedTuple>> {
    let batch_size = batch_size.max(1);
    let mut batch = Batch::with_capacity(batch_size);
    let mut out = Vec::new();
    loop {
        batch.clear();
        let n = op.next_batch(batch_size, &mut batch)?;
        if n == 0 {
            return Ok(out);
        }
        out.append(&mut batch);
    }
}

/// Draws at most `k` tuples from an operator.
pub fn take(op: &mut dyn PhysicalOperator, k: usize) -> Result<Vec<RankedTuple>> {
    let mut out = Vec::with_capacity(k);
    while out.len() < k {
        match op.next()? {
            Some(t) => out.push(t),
            None => break,
        }
    }
    Ok(out)
}

/// Debug helper: asserts that a sequence of tuples is in non-increasing
/// upper-bound order; returns the violating index if any.
pub fn check_rank_order(tuples: &[RankedTuple], ctx: &RankingContext) -> Option<usize> {
    for i in 1..tuples.len() {
        let prev = ctx.upper_bound(&tuples[i - 1].state);
        let cur = ctx.upper_bound(&tuples[i].state);
        if cur > prev {
            return Some(i);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use ranksql_common::{Tuple, Value};
    use ranksql_expr::{RankPredicate, ScoreState, ScoringFunction};

    fn ctx() -> Arc<RankingContext> {
        RankingContext::new(
            vec![
                RankPredicate::attribute("p1", "R.p1"),
                RankPredicate::attribute("p2", "R.p2"),
            ],
            ScoringFunction::Sum,
        )
    }

    fn rt(id: u64, p1: Option<f64>, p2: Option<f64>) -> RankedTuple {
        let mut state = ScoreState::new(2);
        if let Some(v) = p1 {
            state.set(0, v);
        }
        if let Some(v) = p2 {
            state.set(1, v);
        }
        RankedTuple::new(Tuple::synthetic(id, vec![Value::from(id as i64)]), state)
    }

    #[test]
    fn queue_orders_by_upper_bound_desc() {
        let ctx = ctx();
        let mut q = RankingQueue::new(Arc::clone(&ctx));
        q.push(rt(1, Some(0.2), None)); // bound 1.2
        q.push(rt(2, Some(0.9), Some(0.9))); // bound 1.8
        q.push(rt(3, None, None)); // bound 2.0
        assert_eq!(q.len(), 3);
        assert_eq!(q.peek_score(), Some(Score::new(2.0)));
        let order: Vec<u64> = std::iter::from_fn(|| q.pop())
            .map(|t| t.tuple.id().parts()[0].1)
            .collect();
        assert_eq!(order, vec![3, 2, 1]);
        assert!(q.is_empty());
    }

    #[test]
    fn queue_tie_break_is_deterministic() {
        let ctx = ctx();
        let mut q = RankingQueue::new(Arc::clone(&ctx));
        q.push(rt(7, Some(0.5), Some(0.5)));
        q.push(rt(3, Some(0.5), Some(0.5)));
        assert_eq!(q.pop().unwrap().tuple.id().parts()[0].1, 3);
        assert_eq!(q.pop().unwrap().tuple.id().parts()[0].1, 7);
    }

    #[test]
    fn pop_if_at_least_respects_threshold() {
        let ctx = ctx();
        let mut q = RankingQueue::new(Arc::clone(&ctx));
        q.push(rt(1, Some(0.3), Some(0.3))); // bound 0.6
        assert!(q.pop_if_at_least(Score::new(0.7)).is_none());
        assert!(q.pop_if_at_least(Score::new(0.6)).is_some());
        assert!(q.pop_if_at_least(Score::ZERO).is_none());
    }

    #[test]
    fn check_rank_order_detects_violations() {
        let ctx = ctx();
        let good = vec![
            rt(1, None, None),
            rt(2, Some(0.5), None),
            rt(3, Some(0.1), Some(0.1)),
        ];
        assert_eq!(check_rank_order(&good, &ctx), None);
        let bad = vec![rt(1, Some(0.1), Some(0.1)), rt(2, None, None)];
        assert_eq!(check_rank_order(&bad, &ctx), Some(1));
    }
}
