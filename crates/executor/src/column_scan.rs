//! The columnar table scan: block-at-a-time reads over a
//! [`ColumnTable`] with zone-map pruning and late materialisation.
//!
//! A [`ColumnScan`] implements the same contract as [`SeqScan`] (storage
//! order, `P = ∅`) but reads the table's columnar projection instead of the
//! row heap:
//!
//! * a **pushed-down filter** (a conjunction of simple column-vs-constant
//!   comparisons, fused into the scan by the optimizer's `columnarize`
//!   pass) is evaluated directly against the typed column vectors; row
//!   tuples are materialised only for rows that pass — the σ spine never
//!   assembles a tuple it immediately drops;
//! * **zone-map filter pruning** skips whole blocks whose per-block
//!   min/max cannot satisfy the pushed filter;
//! * **zone-map score pruning** skips blocks whose maximal possible query
//!   score (block score maxima through the scoring function, other
//!   predicates at their caps) is strictly below the downstream top-k's
//!   current threshold (see [`TopKThreshold`]).
//!
//! Pruned blocks are never examined: their rows are charged to neither the
//! tuple budget nor the scan's `tuples_in` counter, which is exactly the
//! `tuples_scanned` reduction the zone-map regression tests assert.
//!
//! [`SeqScan`]: crate::scan::SeqScan

use std::cmp::Ordering;
use std::ops::Range;
use std::sync::atomic::AtomicU64;
use std::sync::Arc;

use ranksql_common::{Result, Schema, Tuple};
use ranksql_expr::{
    BoolExpr, BoundBoolExpr, CompareOp, RankedTuple, RankingContext, ScalarExpr, ScoreSource,
};
use ranksql_storage::{
    cmp_f64_total, ColumnKind, ColumnSlice, ColumnTable, SealedBlock, TableEpoch, ZoneEntry,
    COLUMN_BLOCK_ROWS,
};

use crate::context::{ExecutionContext, TopKThreshold, TupleBudget};
use crate::kernel;
use crate::metrics::OperatorMetrics;
use crate::operator::{Batch, PhysicalOperator};

/// One compiled conjunct of a pushed-down filter: a typed comparison the
/// scan evaluates straight on a column vector (and range-checks against the
/// column's zone maps).
#[derive(Debug, Clone, Copy)]
enum TypedCompare {
    /// `Int64` column vs `Int64` constant — exact integer comparison,
    /// matching `Value`'s same-type semantics.
    I64 { col: usize, op: CompareOp, rhs: i64 },
    /// `Int64` column vs `Float64` constant — compared as `f64`, matching
    /// `Value`'s cross-type semantics (monotone `i64 → f64` conversion
    /// keeps zone checks sound).
    I64AsF64 { col: usize, op: CompareOp, rhs: f64 },
    /// `Float64` column vs numeric constant.
    F64 { col: usize, op: CompareOp, rhs: f64 },
}

/// The compiled form of a pushed-down filter.
#[derive(Debug)]
enum CompiledFilter {
    /// Every conjunct compiled to a typed column comparison.
    Typed(Vec<TypedCompare>),
    /// At least one conjunct could not be compiled (mixed column, string
    /// comparison, arithmetic): rows are materialised first and the bound
    /// predicate is evaluated on the tuple — same semantics as a `Filter`
    /// operator, minus the pruning.
    Fallback(BoundBoolExpr),
}

/// Mirrors an operator for swapped operands (`lit OP col` → `col OP' lit`).
fn flip(op: CompareOp) -> CompareOp {
    match op {
        CompareOp::Lt => CompareOp::Gt,
        CompareOp::LtEq => CompareOp::GtEq,
        CompareOp::Gt => CompareOp::Lt,
        CompareOp::GtEq => CompareOp::LtEq,
        CompareOp::Eq | CompareOp::NotEq => op,
    }
}

/// A scalar operand that is constant at execution time: a literal or a
/// bound parameter.
fn const_operand(e: &ScalarExpr) -> Option<&ranksql_common::Value> {
    match e {
        ScalarExpr::Literal(v) => Some(v),
        ScalarExpr::Param { value: Some(v), .. } => Some(v),
        _ => None,
    }
}

/// Tries to compile one conjunct to a typed comparison.
fn compile_conjunct(
    conjunct: &BoolExpr,
    schema: &Schema,
    table: &ColumnTable,
) -> Option<TypedCompare> {
    let BoolExpr::Compare { op, left, right } = conjunct else {
        return None;
    };
    let (col_ref, op, value) = match (left, right) {
        (ScalarExpr::Column(c), rhs) => (c, *op, const_operand(rhs)?),
        (lhs, ScalarExpr::Column(c)) => (c, flip(*op), const_operand(lhs)?),
        _ => return None,
    };
    let col = col_ref.resolve(schema).ok()?;
    match (table.column_kind(col), value) {
        (ColumnKind::Int64, ranksql_common::Value::Int64(v)) => {
            Some(TypedCompare::I64 { col, op, rhs: *v })
        }
        (ColumnKind::Int64, ranksql_common::Value::Float64(v)) => {
            Some(TypedCompare::I64AsF64 { col, op, rhs: *v })
        }
        (ColumnKind::Float64, v) => v
            .as_f64()
            .filter(|_| v.data_type().is_numeric())
            .map(|rhs| TypedCompare::F64 { col, op, rhs }),
        _ => None,
    }
}

impl TypedCompare {
    /// Appends the rows of `range` that pass this comparison to `sel`.
    /// The column type and operator are matched once; the inner loops are
    /// the branch-free chunked kernels of [`crate::kernel`] (semantics
    /// identical to the `Value` comparison the row-backend `Filter` would
    /// perform, including `cmp_f64_total` NaN / signed-zero handling).
    /// `range` never spans a sealed-block boundary (the chunked filter
    /// clamps to the admitted block's end), so it maps onto one block slice.
    /// The kernels read the *fetched* [`SealedBlock`] (not the table), so a
    /// paged-out block is faulted in exactly once per admission.
    fn filter_range_into(
        &self,
        block: &SealedBlock,
        block_start: usize,
        range: Range<usize>,
        sel: &mut Vec<u32>,
    ) {
        let local = (range.start - block_start)..(range.end - block_start);
        let base = range.start as u32;
        match *self {
            TypedCompare::I64 { col, op, rhs } => {
                let ColumnSlice::Int64(v) = block.slice(col) else {
                    unreachable!("compiled against an Int64 column");
                };
                kernel::select_i64(&v[local], base, sel, op, rhs);
            }
            TypedCompare::I64AsF64 { col, op, rhs } => {
                let ColumnSlice::Int64(v) = block.slice(col) else {
                    unreachable!("compiled against an Int64 column");
                };
                kernel::select_i64_as_f64(&v[local], base, sel, op, rhs);
            }
            TypedCompare::F64 { col, op, rhs } => {
                let ColumnSlice::Float64(v) = block.slice(col) else {
                    unreachable!("compiled against a Float64 column");
                };
                kernel::select_f64(&v[local], base, sel, op, rhs);
            }
        }
    }

    /// Retains in `sel` only the rows (table-absolute, all inside `block`)
    /// that also pass this comparison, compacting the selection vector in
    /// place with branch-free writes.
    fn filter_sel_in_place(&self, block: &SealedBlock, block_start: usize, sel: &mut Vec<u32>) {
        let base = block_start as u32;
        match *self {
            TypedCompare::I64 { col, op, rhs } => {
                let ColumnSlice::Int64(v) = block.slice(col) else {
                    unreachable!("compiled against an Int64 column");
                };
                kernel::refine_i64(v, base, sel, op, rhs);
            }
            TypedCompare::I64AsF64 { col, op, rhs } => {
                let ColumnSlice::Int64(v) = block.slice(col) else {
                    unreachable!("compiled against an Int64 column");
                };
                kernel::refine_i64_as_f64(v, base, sel, op, rhs);
            }
            TypedCompare::F64 { col, op, rhs } => {
                let ColumnSlice::Float64(v) = block.slice(col) else {
                    unreachable!("compiled against a Float64 column");
                };
                kernel::refine_f64(v, base, sel, op, rhs);
            }
        }
    }

    /// Whether any value in `block` *may* satisfy this comparison, judged by
    /// the block's zone map.  `true` when in doubt (no zone entry).
    fn block_may_match(&self, table: &ColumnTable, block: usize) -> bool {
        match (*self, table.zone(self.col(), block)) {
            (TypedCompare::I64 { op, rhs, .. }, Some(ZoneEntry::Int64(min, max))) => {
                range_may_match(op, min.cmp(&rhs), max.cmp(&rhs))
            }
            (TypedCompare::I64AsF64 { op, rhs, .. }, Some(ZoneEntry::Int64(min, max))) => {
                range_may_match(
                    op,
                    cmp_f64_total(min as f64, rhs),
                    cmp_f64_total(max as f64, rhs),
                )
            }
            (TypedCompare::F64 { op, rhs, .. }, Some(ZoneEntry::Float64(min, max))) => {
                range_may_match(op, cmp_f64_total(min, rhs), cmp_f64_total(max, rhs))
            }
            _ => true,
        }
    }

    fn col(&self) -> usize {
        match *self {
            TypedCompare::I64 { col, .. }
            | TypedCompare::I64AsF64 { col, .. }
            | TypedCompare::F64 { col, .. } => col,
        }
    }
}

/// Whether a value range `[min, max]` (orderings of its endpoints against
/// the constant) can contain a value satisfying `op`.
fn range_may_match(op: CompareOp, min_vs: Ordering, max_vs: Ordering) -> bool {
    match op {
        CompareOp::Eq => min_vs != Ordering::Greater && max_vs != Ordering::Less,
        // The range collapses to exactly the constant only if both ends
        // equal it.
        CompareOp::NotEq => !(min_vs == Ordering::Equal && max_vs == Ordering::Equal),
        CompareOp::Lt => min_vs == Ordering::Less,
        CompareOp::LtEq => min_vs != Ordering::Greater,
        CompareOp::Gt => max_vs == Ordering::Greater,
        CompareOp::GtEq => max_vs != Ordering::Less,
    }
}

/// Columnar sequential scan (see the module docs).
///
/// Like [`SeqScan`](crate::scan::SeqScan) the output is storage-ordered with
/// `P = ∅`; a pushed filter only removes rows, never re-orders them, so
/// results are byte-identical to `Filter(SeqScan)` over the row backend.
pub struct ColumnScan {
    table: Arc<ColumnTable>,
    /// The pinned epoch's frozen delta tail: rows past the sealed blocks,
    /// in row layout.  Empty when scanning a full-coverage projection.
    tail: Arc<Vec<Tuple>>,
    /// First tail row == the sealed projection's row count.
    sealed_end: usize,
    schema: Schema,
    filter: Option<CompiledFilter>,
    /// The pushed filter bound for tuple-at-a-time evaluation over the tail
    /// (row-backend semantics, which the typed kernels match exactly).
    tail_filter: Option<BoundBoolExpr>,
    /// Top-k threshold raised by the downstream `SortLimit` (score pruning).
    prune_cell: Option<Arc<TopKThreshold>>,
    /// Per ranking predicate: the scan column its score is read from, when
    /// it is a zone-mapped attribute of this table.
    pred_cols: Vec<Option<usize>>,
    ctx: Arc<RankingContext>,
    metrics: Arc<OperatorMetrics>,
    /// Second metrics handle updated in lockstep (the `Repartition` node of
    /// the morsel path); `None` on the serial path.
    repart_metrics: Option<Arc<OperatorMetrics>>,
    budget: Arc<TupleBudget>,
    pruned_counter: Arc<AtomicU64>,
    /// Execution-wide count of buffer-pool pages faulted in from disk.
    faulted_pages: Arc<AtomicU64>,
    /// Execution-wide count of pages whose read zone-map pruning avoided.
    pruned_pages: Arc<AtomicU64>,
    /// One bit per block of the scanned table, set when this scan (or, on
    /// the morsel path, any sibling morsel of the same spine sharing this
    /// map) counted the block as pruned — so a block overlapping several
    /// morsels contributes exactly once to `blocks_pruned`.
    pruned_blocks: Arc<Vec<AtomicU64>>,
    /// Absolute row range this scan covers (the whole table serially, one
    /// morsel under an exchange).
    end: usize,
    /// Absolute cursor; rows before it are emitted or skipped.
    pos: usize,
    /// End of the currently admitted block (`pos == block_end` → advance).
    block_end: usize,
    /// The currently admitted block, fetched through the buffer pool when
    /// the backing table pages to disk: `(block_start_row, block)`.  All
    /// row materialisation and typed filtering inside the block reads this
    /// handle, so an admitted block is faulted in at most once.
    cur_block: Option<(usize, Arc<SealedBlock>)>,
    /// Selection vector of the current block under a fully compiled filter
    /// (reused across blocks); rows before `sel_pos` are already emitted.
    sel: Vec<u32>,
    sel_pos: usize,
    /// Scratch used by the tuple-at-a-time `next`.
    scratch: Batch,
}

impl ColumnScan {
    /// Creates a columnar scan over the whole table.
    ///
    /// `pushed_filter` and `zone_prune` come from the plan's
    /// [`ColumnarScan`](ranksql_algebra::ColumnarScan) annotation; when
    /// `zone_prune` is set the constructor adopts the threshold cell pushed
    /// by the enclosing `SortLimit` (absent cell = pruning stays off, which
    /// is always safe).
    pub fn new(
        table: Arc<ColumnTable>,
        pushed_filter: Option<&BoolExpr>,
        zone_prune: bool,
        exec: &ExecutionContext,
        label: impl Into<String>,
    ) -> Result<Self> {
        let metrics = exec.register(label);
        Self::build(
            table,
            Arc::new(Vec::new()),
            pushed_filter,
            zone_prune,
            exec,
            metrics,
            None,
            None,
            None,
        )
    }

    /// Creates a columnar scan over a pinned [`TableEpoch`]: the epoch's
    /// sealed blocks are scanned block-at-a-time (with pruning) and its
    /// frozen delta tail is streamed row-at-a-time afterwards, so the scan
    /// covers exactly the epoch's watermark regardless of concurrent
    /// inserts.  The epoch must have been pinned with the columnar layout.
    pub fn for_epoch(
        epoch: &TableEpoch,
        pushed_filter: Option<&BoolExpr>,
        zone_prune: bool,
        exec: &ExecutionContext,
        label: impl Into<String>,
    ) -> Result<Self> {
        let table = Arc::clone(
            epoch
                .columnar()
                .expect("ColumnScan requires an epoch pinned with the columnar layout"),
        );
        let metrics = exec.register(label);
        Self::build(
            table,
            Arc::clone(epoch.tail()),
            pushed_filter,
            zone_prune,
            exec,
            metrics,
            None,
            None,
            None,
        )
    }

    /// Creates a columnar scan over one morsel `range`, sharing the
    /// pre-registered metrics handles and the spine-wide threshold cell.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn for_morsel(
        table: Arc<ColumnTable>,
        tail: Arc<Vec<Tuple>>,
        range: (usize, usize),
        pushed_filter: Option<&BoolExpr>,
        cell: Option<Arc<TopKThreshold>>,
        pruned_blocks: Arc<Vec<AtomicU64>>,
        exec: &ExecutionContext,
        scan_label: &str,
        repart_label: &str,
    ) -> Result<Self> {
        let metrics = exec.register(scan_label.to_owned());
        let repart = exec.register(repart_label.to_owned());
        let mut scan = Self::build(
            table,
            tail,
            pushed_filter,
            false,
            exec,
            metrics,
            Some(repart),
            cell,
            Some(pruned_blocks),
        )?;
        scan.pos = range.0;
        scan.end = range.1;
        Ok(scan)
    }

    /// Allocates the per-(table, block) prune-dedup bitmap for a scan of
    /// `table`; the morsel path creates it once per spine and hands clones
    /// to every morsel instance.
    pub(crate) fn pruned_block_map(table: &ColumnTable) -> Arc<Vec<AtomicU64>> {
        let blocks = table.row_count().div_ceil(COLUMN_BLOCK_ROWS);
        Arc::new(
            (0..blocks.div_ceil(64))
                .map(|_| AtomicU64::new(0))
                .collect(),
        )
    }

    #[allow(clippy::too_many_arguments)]
    fn build(
        table: Arc<ColumnTable>,
        tail: Arc<Vec<Tuple>>,
        pushed_filter: Option<&BoolExpr>,
        pop_cell: bool,
        exec: &ExecutionContext,
        metrics: Arc<OperatorMetrics>,
        repart_metrics: Option<Arc<OperatorMetrics>>,
        cell: Option<Arc<TopKThreshold>>,
        pruned_blocks: Option<Arc<Vec<AtomicU64>>>,
    ) -> Result<Self> {
        let schema = table.schema().clone();
        let filter = match pushed_filter {
            None => None,
            Some(f) => {
                let compiled: Option<Vec<TypedCompare>> = f
                    .split_conjuncts()
                    .iter()
                    .map(|c| compile_conjunct(c, &schema, &table))
                    .collect();
                Some(match compiled {
                    Some(cmps) => CompiledFilter::Typed(cmps),
                    None => CompiledFilter::Fallback(f.bind(&schema)?),
                })
            }
        };
        let tail_filter = match pushed_filter {
            Some(f) if !tail.is_empty() => Some(f.bind(&schema)?),
            _ => None,
        };
        let ctx = exec.ranking_arc();
        let pred_cols = (0..ctx.num_predicates())
            .map(|i| match &ctx.predicate(i).source {
                ScoreSource::Attribute(c) => c
                    .resolve(&schema)
                    .ok()
                    .filter(|&col| table.score_zone_max(col, 0).is_some()),
                ScoreSource::Expression(_) => None,
            })
            .collect();
        let prune_cell = cell.or_else(|| {
            if pop_cell {
                exec.pop_prune_threshold()
            } else {
                None
            }
        });
        let pruned_blocks = pruned_blocks.unwrap_or_else(|| Self::pruned_block_map(&table));
        Ok(ColumnScan {
            end: table.row_count() + tail.len(),
            sealed_end: table.row_count(),
            pruned_blocks,
            table,
            tail,
            schema,
            filter,
            tail_filter,
            prune_cell,
            pred_cols,
            ctx,
            metrics,
            repart_metrics,
            budget: Arc::clone(exec.budget()),
            pruned_counter: Arc::clone(exec.blocks_pruned_counter()),
            faulted_pages: Arc::clone(exec.pages_faulted_counter()),
            pruned_pages: Arc::clone(exec.pages_pruned_counter()),
            pos: 0,
            block_end: 0,
            cur_block: None,
            sel: Vec::new(),
            sel_pos: 0,
            scratch: Batch::new(),
        })
    }

    /// The maximal possible query score of any tuple in `block`: block
    /// score maxima for this table's zone-mapped attribute predicates, the
    /// context's per-predicate caps for everything else.
    fn block_score_bound(&self, block: usize) -> f64 {
        let mut buf = [0.0f64; 64];
        let n = self.pred_cols.len();
        for (i, slot) in buf[..n].iter_mut().enumerate() {
            *slot = match self.pred_cols[i] {
                Some(col) => self
                    .table
                    .score_zone_max(col, block)
                    .unwrap_or_else(|| self.ctx.max_value_for(i)),
                None => self.ctx.max_value_for(i),
            };
        }
        self.ctx.scoring().combine(&buf[..n]).value()
    }

    /// Counts `block` as pruned, once per (table, block) across every scan
    /// sharing this scan's dedup bitmap: the first setter of the block's
    /// bit increments the global counter, later morsels overlapping the
    /// same block see the bit already set and skip it.
    fn count_pruned(&self, block: usize) {
        use std::sync::atomic::Ordering;
        let bit = 1u64 << (block % 64);
        if self.pruned_blocks[block / 64].fetch_or(bit, Ordering::Relaxed) & bit == 0 {
            self.pruned_counter.fetch_add(1, Ordering::Relaxed);
            // On a paged backend a pruned block is a page never read: its
            // extent stays on disk.  Resident blocks report 0 pages.
            let pages = self.table.block_pages(block);
            if pages > 0 {
                self.pruned_pages.fetch_add(pages, Ordering::Relaxed);
            }
        }
    }

    /// Whether the current block still has rows (or selected rows) to emit.
    fn block_has_pending(&self) -> bool {
        match &self.filter {
            Some(CompiledFilter::Typed(_)) => {
                self.sel_pos < self.sel.len() || self.pos < self.block_end
            }
            _ => self.pos < self.block_end,
        }
    }

    /// Advances to the next admitted (non-pruned) block (zone checks run
    /// once per block here); returns `false` when the scan range is
    /// exhausted.
    fn advance_block(&mut self) -> Result<bool> {
        let sealed_end = self.sealed_end.min(self.end);
        while self.pos < sealed_end {
            let block = self.pos / COLUMN_BLOCK_ROWS;
            let block_rows = self.table.block_rows(block);
            let end = block_rows.end.min(self.end);
            // Zone-map filter pruning.
            if let Some(CompiledFilter::Typed(cmps)) = &self.filter {
                if cmps.iter().any(|c| !c.block_may_match(&self.table, block)) {
                    self.count_pruned(block);
                    self.pos = end;
                    continue;
                }
            }
            // Zone-map score pruning against the top-k threshold.
            if let Some(cell) = &self.prune_cell {
                if cell.prunes(self.block_score_bound(block)) {
                    self.count_pruned(block);
                    self.pos = end;
                    continue;
                }
            }
            // The block survived pruning: fault it in (buffer-pool read on
            // a paged backend, free on a resident one) exactly once per
            // admission.
            let (sealed, faulted) = self.table.fetch_block(block)?;
            if faulted {
                use std::sync::atomic::Ordering;
                self.faulted_pages
                    .fetch_add(self.table.block_pages(block), Ordering::Relaxed);
            }
            self.cur_block = Some((block * COLUMN_BLOCK_ROWS, sealed));
            self.block_end = end;
            return Ok(true);
        }
        Ok(false)
    }

    /// Minimum rows filtered per demand-driven chunk of the typed path —
    /// small enough that tight tuple budgets behave like the row backend's
    /// per-demand charging, large enough to amortize the chunk setup.
    const MIN_FILTER_CHUNK: usize = 64;

    /// Filters the next chunk of the current admitted block into the
    /// selection vector (demand-driven: roughly `want` rows at a time, so
    /// the tuple budget is charged in step with what the consumer actually
    /// pulls — matching the row backend's `Filter(SeqScan)` granularity,
    /// where tight budgets must trip identically across backends).
    fn filter_next_chunk(&mut self, want: usize, cmps: &[TypedCompare]) -> Result<()> {
        let chunk_end = self
            .pos
            .saturating_add(want.max(Self::MIN_FILTER_CHUNK))
            .min(self.block_end);
        self.sel.clear();
        self.sel_pos = 0;
        let (block_start, block) = self
            .cur_block
            .as_ref()
            .map(|(s, b)| (*s, Arc::clone(b)))
            .expect("typed filter runs inside an admitted block");
        let (first, rest) = cmps.split_first().expect("typed filter is non-empty");
        first.filter_range_into(&block, block_start, self.pos..chunk_end, &mut self.sel);
        for c in rest {
            if self.sel.is_empty() {
                break;
            }
            c.filter_sel_in_place(&block, block_start, &mut self.sel);
        }
        let examined = (chunk_end - self.pos) as u64;
        self.pos = chunk_end;
        self.charge_examined(examined)
    }

    /// Materialises the tuple at table-absolute `row` from the currently
    /// admitted (already faulted-in) block — late materialisation never
    /// touches the table, so it cannot re-fault a paged block.
    fn block_tuple(&self, row: usize) -> Tuple {
        let (block_start, block) = self
            .cur_block
            .as_ref()
            .expect("materialisation runs inside an admitted block");
        block.tuple(self.table.table_id(), *block_start, row - *block_start)
    }

    /// Records examined rows against the tuple budget and scan metrics.
    fn charge_examined(&self, n: u64) -> Result<()> {
        if n == 0 {
            return Ok(());
        }
        self.budget.charge(n)?;
        self.metrics.add_in(n);
        if let Some(m) = &self.repart_metrics {
            m.add_in(n);
        }
        Ok(())
    }

    /// Core fill loop shared by `next` and `next_batch`.
    fn fill(&mut self, max: usize, out: &mut Batch) -> Result<usize> {
        let n_preds = self.ctx.num_predicates();
        let before = out.len();
        let mut examined: u64 = 0;
        while out.len() - before < max {
            if !self.block_has_pending() && !self.advance_block()? {
                // Sealed blocks exhausted: stream the epoch's frozen delta
                // tail row-at-a-time (row layout, per-row budget charge —
                // exactly the row backend's granularity).
                if self.pos >= self.end {
                    break;
                }
                let row = self.pos;
                self.pos += 1;
                examined += 1;
                let tuple = self.tail[row - self.sealed_end].clone();
                match &self.tail_filter {
                    Some(bound) if !bound.eval(&tuple)? => {}
                    _ => out.push(RankedTuple::unranked(tuple, n_preds)),
                }
                continue;
            }
            let want = max - (out.len() - before);
            match &self.filter {
                None => {
                    let take = want.min(self.block_end - self.pos);
                    for row in self.pos..self.pos + take {
                        out.push(RankedTuple::unranked(self.block_tuple(row), n_preds));
                    }
                    self.pos += take;
                    examined += take as u64;
                }
                Some(CompiledFilter::Typed(cmps)) => {
                    if self.sel_pos >= self.sel.len() {
                        let cmps = cmps.clone();
                        self.filter_next_chunk(want, &cmps)?;
                        continue;
                    }
                    let take = want.min(self.sel.len() - self.sel_pos);
                    for i in self.sel_pos..self.sel_pos + take {
                        let row = self.sel[i] as usize;
                        out.push(RankedTuple::unranked(self.block_tuple(row), n_preds));
                    }
                    self.sel_pos += take;
                }
                Some(CompiledFilter::Fallback(bound)) => {
                    while self.pos < self.block_end && out.len() - before < max {
                        let row = self.pos;
                        self.pos += 1;
                        examined += 1;
                        let tuple = self.block_tuple(row);
                        if bound.eval(&tuple)? {
                            out.push(RankedTuple::unranked(tuple, n_preds));
                        }
                    }
                }
            }
        }
        let produced = out.len() - before;
        self.charge_examined(examined)?;
        if produced > 0 {
            self.metrics.add_out(produced as u64);
            self.metrics.add_batch();
            if let Some(m) = &self.repart_metrics {
                m.add_out(produced as u64);
                m.add_batch();
            }
        }
        Ok(produced)
    }
}

impl PhysicalOperator for ColumnScan {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn next(&mut self) -> Result<Option<RankedTuple>> {
        self.scratch.clear();
        let mut scratch = std::mem::replace(&mut self.scratch, Batch::new());
        let n = self.fill(1, &mut scratch);
        let tuple = scratch.pop();
        self.scratch = scratch;
        n?;
        Ok(tuple)
    }

    fn next_batch(&mut self, max: usize, out: &mut Batch) -> Result<usize> {
        self.fill(max, out)
    }

    fn can_extend_limit(&self) -> bool {
        true // A scan imposes no top-k cap.
    }

    fn extend_limit(&mut self, _extra: usize) -> bool {
        true // A scan imposes no top-k cap.
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::operator::drain_batched;
    use ranksql_common::{DataType, Field, Value};
    use ranksql_expr::{RankPredicate, ScoringFunction};
    use ranksql_storage::TableBuilder;

    fn table(rows: usize) -> ranksql_storage::Table {
        let schema = Schema::new(vec![
            Field::new("id", DataType::Int64),
            Field::new("p", DataType::Float64),
        ])
        .qualify_all("T");
        TableBuilder::new("T", schema)
            .rows((0..rows).map(|i| {
                vec![
                    Value::from(i as i64),
                    Value::from(((i * 37) % 100) as f64 / 100.0),
                ]
            }))
            .build(0)
            .unwrap()
    }

    fn ctx() -> Arc<RankingContext> {
        RankingContext::new(
            vec![RankPredicate::attribute("p", "T.p")],
            ScoringFunction::Sum,
        )
    }

    #[test]
    fn plain_columnar_scan_matches_row_scan() {
        let t = table(3000);
        let exec = ExecutionContext::new(ctx());
        let mut scan = ColumnScan::new(t.columnar(), None, false, &exec, "cs").unwrap();
        let got = drain_batched(&mut scan, 512).unwrap();
        let want = t.scan();
        assert_eq!(got.len(), want.len());
        for (g, w) in got.iter().zip(want.iter()) {
            assert_eq!(g.tuple.id(), w.id());
            assert_eq!(g.tuple.values(), w.values());
        }
    }

    #[test]
    fn pushed_filter_matches_value_semantics_and_prunes_blocks() {
        let t = table(4000);
        let exec = ExecutionContext::new(ctx());
        // id < 100 lives entirely in the first block: blocks 1..4 prune.
        let filter = BoolExpr::compare(
            ScalarExpr::col("T.id"),
            CompareOp::Lt,
            ScalarExpr::lit(100i64),
        );
        let mut scan = ColumnScan::new(t.columnar(), Some(&filter), false, &exec, "cs").unwrap();
        let got = drain_batched(&mut scan, 1024).unwrap();
        assert_eq!(got.len(), 100);
        assert_eq!(exec.blocks_pruned(), 3, "3 of 4 blocks skipped");
        // Only the first block's rows were examined.
        assert_eq!(exec.budget().used(), 1024);
    }

    #[test]
    fn score_pruning_skips_blocks_below_the_threshold() {
        let t = table(4096);
        let exec = ExecutionContext::new(ctx());
        let cell = Arc::new(TopKThreshold::new());
        exec.push_prune_threshold(Arc::clone(&cell));
        let mut scan = ColumnScan::new(t.columnar(), None, true, &exec, "cs").unwrap();
        // p scores are < 1.0 everywhere; an impossible threshold prunes
        // every block the scan has not yet entered.
        cell.raise(2.0);
        let got = drain_batched(&mut scan, 1024).unwrap();
        assert!(got.is_empty());
        assert_eq!(exec.blocks_pruned(), 4);
        assert_eq!(exec.budget().used(), 0, "pruned rows are never examined");
        // An unset cell prunes nothing.
        let exec2 = ExecutionContext::new(ctx());
        let cell2 = Arc::new(TopKThreshold::new());
        exec2.push_prune_threshold(cell2);
        let mut scan2 = ColumnScan::new(t.columnar(), None, true, &exec2, "cs").unwrap();
        assert_eq!(drain_batched(&mut scan2, 1024).unwrap().len(), 4096);
    }

    /// Regression: the fused-filter path must charge the tuple budget in
    /// step with consumer demand (like the row backend's `Filter(SeqScan)`,
    /// which pulls scan chunks of the still-missing count) — a tight budget
    /// that succeeds on the row backend must not spuriously trip here just
    /// because a whole 1024-row block was filtered eagerly.
    #[test]
    fn fused_filter_charges_budget_per_demand_not_per_block() {
        let t = table(4096);
        let exec = ExecutionContext::with_budget(ctx(), 300);
        let filter = BoolExpr::compare(
            ScalarExpr::col("T.p"),
            CompareOp::GtEq,
            ScalarExpr::lit(0.5),
        );
        let mut scan = ColumnScan::new(t.columnar(), Some(&filter), false, &exec, "cs").unwrap();
        let mut out = Batch::new();
        let n = scan.next_batch(5, &mut out).unwrap();
        assert_eq!(n, 5);
        assert!(
            exec.budget().used() <= 300,
            "pulling 5 rows must not charge a whole block (charged {})",
            exec.budget().used()
        );
    }

    #[test]
    fn fallback_filter_keeps_semantics_on_generic_columns() {
        let schema = Schema::new(vec![Field::new("x", DataType::Utf8)]).qualify_all("G");
        let t = TableBuilder::new("G", schema)
            .rows([
                vec![Value::from("b")],
                vec![Value::from("a")],
                vec![Value::from("c")],
            ])
            .build(0)
            .unwrap();
        let exec = ExecutionContext::new(RankingContext::unranked());
        let filter = BoolExpr::compare(
            ScalarExpr::col("G.x"),
            CompareOp::GtEq,
            ScalarExpr::lit("b"),
        );
        let mut scan = ColumnScan::new(t.columnar(), Some(&filter), false, &exec, "cs").unwrap();
        let got = drain_batched(&mut scan, 8).unwrap();
        assert_eq!(got.len(), 2);
        assert_eq!(got[0].tuple.value(0), &Value::from("b"));
    }

    #[test]
    fn epoch_scan_streams_sealed_blocks_plus_frozen_tail() {
        let t = table(1200);
        let _ = t.columnar(); // seal coverage at 1200
        for i in 1200..1500usize {
            t.insert(vec![
                Value::from(i as i64),
                Value::from(((i * 37) % 100) as f64 / 100.0),
            ])
            .unwrap();
        }
        // No seal boundary was crossed, so the pinned epoch carries a
        // genuine 300-row tail past the sealed blocks.
        let epoch = t.pin_epoch(true);
        assert_eq!(epoch.row_count(), 1500);
        assert_eq!(epoch.tail().len(), 300);

        let exec = ExecutionContext::new(ctx());
        let mut scan = ColumnScan::for_epoch(&epoch, None, false, &exec, "cs").unwrap();
        let got = drain_batched(&mut scan, 256).unwrap();
        assert_eq!(got.len(), 1500);
        for (i, g) in got.iter().enumerate() {
            assert_eq!(g.tuple.value(0), &Value::from(i as i64), "storage order");
        }

        // A pushed filter applies identically to sealed rows (typed
        // kernels) and tail rows (bound row-semantics evaluation).
        let filter = BoolExpr::compare(
            ScalarExpr::col("T.p"),
            CompareOp::GtEq,
            ScalarExpr::lit(0.5),
        );
        let exec2 = ExecutionContext::new(ctx());
        let mut scan2 = ColumnScan::for_epoch(&epoch, Some(&filter), false, &exec2, "cs").unwrap();
        let got2 = drain_batched(&mut scan2, 256).unwrap();
        let want: Vec<u64> = (0..1500u64)
            .filter(|i| ((i * 37) % 100) as f64 / 100.0 >= 0.5)
            .collect();
        assert_eq!(got2.len(), want.len());
        assert!(got2
            .iter()
            .zip(&want)
            .all(|(g, &w)| g.tuple.value(0) == &Value::from(w as i64)));
        assert_eq!(exec2.budget().used(), 1500, "tail rows are charged per row");

        // Inserts after the pin are invisible to the epoch.
        t.insert(vec![Value::from(9999i64), Value::from(0.99)])
            .unwrap();
        let exec3 = ExecutionContext::new(ctx());
        let mut scan3 = ColumnScan::for_epoch(&epoch, None, false, &exec3, "cs").unwrap();
        assert_eq!(drain_batched(&mut scan3, 512).unwrap().len(), 1500);
    }

    #[test]
    fn threshold_cell_raises_monotonically() {
        let cell = TopKThreshold::new();
        assert!(!cell.prunes(f64::NEG_INFINITY));
        cell.raise(1.5);
        cell.raise(0.5); // lower: ignored
        cell.raise(f64::NAN); // NaN: ignored
        assert_eq!(cell.get(), 1.5);
        assert!(cell.prunes(1.4));
        assert!(!cell.prunes(1.5), "ties are never pruned");
        assert!(cell.prunes(f64::NAN), "NaN bounds sort below everything");
    }
}
