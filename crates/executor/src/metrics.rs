//! Per-operator runtime metrics.
//!
//! The cardinality-estimation experiment (Figure 13) compares the *real*
//! output cardinality of every operator in a plan against the optimizer's
//! estimate, and Example 4 reasons about plans through the number of tuples
//! each operator processed.  Each physical operator therefore registers an
//! [`OperatorMetrics`] handle in a shared [`MetricsRegistry`] and updates it
//! while running.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

/// Counters for one physical operator.
#[derive(Debug, Default)]
pub struct OperatorMetrics {
    name: Mutex<String>,
    tuples_in: AtomicU64,
    tuples_out: AtomicU64,
    batches_out: AtomicU64,
    buffered_peak: AtomicU64,
}

impl OperatorMetrics {
    /// Creates metrics labelled with the operator name.
    pub fn new(name: impl Into<String>) -> Arc<Self> {
        let m = OperatorMetrics::default();
        *m.name.lock() = name.into();
        Arc::new(m)
    }

    /// The operator label.
    pub fn name(&self) -> String {
        self.name.lock().clone()
    }

    /// Records `n` tuples drawn from the operator's input(s).
    pub fn add_in(&self, n: u64) {
        self.tuples_in.fetch_add(n, Ordering::Relaxed);
    }

    /// Records one tuple emitted by the operator.
    pub fn add_out(&self, n: u64) {
        self.tuples_out.fetch_add(n, Ordering::Relaxed);
    }

    /// Records one non-empty batch emitted through the batched pull path.
    pub fn add_batch(&self) {
        self.batches_out.fetch_add(1, Ordering::Relaxed);
    }

    /// Records the current number of buffered tuples, keeping the maximum.
    pub fn observe_buffered(&self, n: u64) {
        self.buffered_peak.fetch_max(n, Ordering::Relaxed);
    }

    /// Tuples drawn from inputs.
    pub fn tuples_in(&self) -> u64 {
        self.tuples_in.load(Ordering::Relaxed)
    }

    /// Tuples emitted.
    pub fn tuples_out(&self) -> u64 {
        self.tuples_out.load(Ordering::Relaxed)
    }

    /// Non-empty batches emitted through the batched pull path (0 when the
    /// operator was only ever driven tuple-at-a-time).
    pub fn batches_out(&self) -> u64 {
        self.batches_out.load(Ordering::Relaxed)
    }

    /// Mean number of tuples per emitted batch (0 when no batch was
    /// emitted).  A fill far below the configured batch size means the
    /// operator trickles tuples out — expected for incremental rank-aware
    /// operators under small `k`, suspicious for scans and filters.
    pub fn mean_batch_fill(&self) -> f64 {
        let batches = self.batches_out();
        if batches == 0 {
            0.0
        } else {
            self.tuples_out() as f64 / batches as f64
        }
    }

    /// Peak number of buffered tuples (priority queues, hash tables).
    pub fn buffered_peak(&self) -> u64 {
        self.buffered_peak.load(Ordering::Relaxed)
    }
}

/// An ordered collection of the metrics of every operator in a plan.
///
/// Operators are registered during plan lowering in post-order (inputs before
/// parents), so index `i` consistently refers to the same operator across
/// runs of the same plan shape.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    ops: Mutex<Vec<Arc<OperatorMetrics>>>,
}

impl MetricsRegistry {
    /// Creates an empty registry.
    pub fn new() -> Arc<Self> {
        Arc::new(MetricsRegistry::default())
    }

    /// Registers a new operator and returns its metrics handle.
    pub fn register(&self, name: impl Into<String>) -> Arc<OperatorMetrics> {
        let m = OperatorMetrics::new(name);
        self.ops.lock().push(Arc::clone(&m));
        m
    }

    /// Snapshot of all operators' metrics, in registration order.
    pub fn snapshot(&self) -> Vec<Arc<OperatorMetrics>> {
        self.ops.lock().clone()
    }

    /// `(name, tuples_out)` pairs in registration order — the series plotted
    /// by Figure 13.
    pub fn output_cardinalities(&self) -> Vec<(String, u64)> {
        self.ops
            .lock()
            .iter()
            .map(|m| (m.name(), m.tuples_out()))
            .collect()
    }

    /// Per-operator runtime actuals (tuples, batches, mean batch fill) in
    /// registration order — the series `explain_with_actuals` pairs against
    /// the physical plan.
    pub fn operator_actuals(&self) -> Vec<ranksql_algebra::OperatorActuals> {
        self.ops
            .lock()
            .iter()
            .map(|m| ranksql_algebra::OperatorActuals {
                label: m.name(),
                rows: m.tuples_out(),
                batches: m.batches_out(),
                mean_batch_fill: m.mean_batch_fill(),
            })
            .collect()
    }

    /// Number of registered operators.
    pub fn len(&self) -> usize {
        self.ops.lock().len()
    }

    /// Whether no operators have been registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn metrics_accumulate() {
        let m = OperatorMetrics::new("Rank_p1");
        m.add_in(3);
        m.add_in(2);
        m.add_out(1);
        m.observe_buffered(4);
        m.observe_buffered(2);
        assert_eq!(m.tuples_in(), 5);
        assert_eq!(m.tuples_out(), 1);
        assert_eq!(m.buffered_peak(), 4);
        assert_eq!(m.name(), "Rank_p1");
    }

    #[test]
    fn registry_orders_and_reports() {
        let reg = MetricsRegistry::new();
        let a = reg.register("SeqScan(A)");
        let b = reg.register("HRJN");
        a.add_out(10);
        b.add_out(3);
        assert_eq!(reg.len(), 2);
        let cards = reg.output_cardinalities();
        assert_eq!(cards[0], ("SeqScan(A)".to_string(), 10));
        assert_eq!(cards[1], ("HRJN".to_string(), 3));
        assert!(!reg.is_empty());
    }
}
