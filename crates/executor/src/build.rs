//! Building operator trees from the physical plan IR and driving execution.
//!
//! The executor consumes **only** [`PhysicalPlan`]: every physical decision
//! (scan strategy, join algorithm, sort fusion, probe scheduling) was made
//! by whoever produced the plan — the optimizer's lowering or the
//! structural [`PhysicalPlan::from_logical`] mapping.  [`build_operator`] is
//! a mechanical walk that instantiates the named operator for every node,
//! threading one [`ExecutionContext`] through all constructors.

use std::sync::Arc;
use std::time::{Duration, Instant};

use ranksql_algebra::{LogicalPlan, PhysicalOp, PhysicalPlan, SetOpKind};
use ranksql_common::{RankSqlError, Result};
use ranksql_expr::{RankedTuple, RankingContext, ScoreSource};
use ranksql_storage::{BTreeIndex, Catalog, EpochSet, ScoreIndex};

use crate::column_scan::ColumnScan;
use crate::context::{ExecutionContext, TopKThreshold};
use crate::exchange::{ExchangeOp, RepartitionPassthrough};
use crate::filter::{Filter, Project};
use crate::join::{HashJoin, NestedLoopJoin, SortMergeJoin};
use crate::metrics::MetricsRegistry;
use crate::mpro::MProOp;
use crate::operator::{drain_batched, BoxedOperator};
use crate::rank::RankOp;
use crate::rank_join::RankJoin;
use crate::scan::{AttributeIndexScan, RankScan, SeqScan};
use crate::set_ops::{ExceptOp, IntersectOp, UnionOp};
use crate::sort_limit::{LimitOp, SortLimitOp, SortOp};

/// Whether `plan` is a σ/π (or transparent `Repartition`) chain over a
/// zone-pruning columnar scan — the pattern under which a `SortLimit` and
/// its scan share a [`TopKThreshold`].
fn spine_has_pruning_scan(plan: &PhysicalPlan) -> bool {
    match &plan.op {
        PhysicalOp::SeqScan {
            columnar: Some(c), ..
        } => c.zone_prune,
        PhysicalOp::Filter { input, .. }
        | PhysicalOp::Project { input, .. }
        | PhysicalOp::Repartition { input } => spine_has_pruning_scan(input),
        _ => false,
    }
}

/// Collects the names of tables the plan reads through columnar scans.
fn columnar_scanned_tables(plan: &PhysicalPlan, out: &mut Vec<String>) {
    if let PhysicalOp::SeqScan {
        table,
        columnar: Some(_),
        ..
    } = &plan.op
    {
        if !out.iter().any(|t| t == table) {
            out.push(table.clone());
        }
    }
    for c in plan.children() {
        columnar_scanned_tables(c, out);
    }
}

/// Data-derived per-predicate score maxima for a columnar plan: for every
/// ranking predicate that reads an attribute of a **columnar-scanned**
/// table, the table-wide zone-map maximum of that column (clamped into
/// `[0, 1]`); everything else keeps the global predicate maximum.
///
/// Only tables the plan actually column-scans contribute — their
/// projections exist (or are about to be built by the scan) anyway, so
/// deriving a cap never forces an `O(rows)` projection build for a table
/// the plan only rank-scans.
///
/// The caps are read through `epochs` — the epoch set the execution will
/// run with — so the fold covers exactly the sealed blocks *and* the frozen
/// delta tail the scans will stream (a tail row can carry a table's maximal
/// score; a sealed-only fold would be unsound).
///
/// Returns `None` for plans without a columnar scan, so row-backend
/// executions keep their exact historical upper bounds (and byte-identical
/// intermediate streams).  Install the caps with
/// [`RankingContext::with_predicate_caps`]; rank-aware operators (µ, MPro,
/// HRJN/NRJN) then consume the zone maps through every upper bound they
/// compute — emitting earlier and probing less, without changing results.
pub fn zone_score_caps(
    ranking: &RankingContext,
    catalog: &Catalog,
    plan: &PhysicalPlan,
    epochs: &EpochSet,
) -> Option<Vec<f64>> {
    let mut tables = Vec::new();
    columnar_scanned_tables(plan, &mut tables);
    if tables.is_empty() {
        return None;
    }
    let caps = ranking
        .predicates()
        .iter()
        .map(|p| match &p.source {
            ScoreSource::Attribute(c) => c
                .relation
                .as_ref()
                .filter(|rel| tables.iter().any(|t| t == *rel))
                .and_then(|rel| catalog.table(rel).ok())
                .and_then(|t| {
                    let epoch = epochs.pin(&t, true);
                    c.resolve(t.schema())
                        .ok()
                        .and_then(|col| epoch.score_max(col))
                })
                .unwrap_or_else(|| ranking.max_predicate_value()),
            ScoreSource::Expression(_) => ranking.max_predicate_value(),
        })
        .collect();
    Some(caps)
}

/// Checks that a plan's ranking-predicate index exists in the context.
fn check_predicate(ctx: &RankingContext, predicate: usize) -> Result<()> {
    if predicate >= ctx.num_predicates() {
        return Err(RankSqlError::Plan(format!(
            "plan references predicate #{predicate} but the query has only {}",
            ctx.num_predicates()
        )));
    }
    Ok(())
}

/// Lowers a physical plan to an operator tree.
///
/// Operators register their metrics in the context's registry bottom-up
/// (inputs before parents), so the registration order is a deterministic
/// post-order walk of `plan` — the cardinality-estimation experiment and
/// `explain_with_actuals` rely on this to pair real and estimated
/// cardinalities per operator.
///
/// Every scan resolves its table through the context's pinned epoch
/// ([`ExecutionContext::pin_epoch`]), so all access paths of one execution
/// read the same row-count watermark and concurrent inserts never shift an
/// open operator tree.
///
/// Rank-scans and attribute-index scans require an index on the scanned
/// table; if none exists one is built over the epoch prefix and cached,
/// and an index lagging the watermark (rows were appended since it was
/// built) is *extended* over the missing suffix — never rebuilt from
/// scratch — mirroring the paper's assumption that such indexes are
/// available as access paths.
pub fn build_operator(
    plan: &PhysicalPlan,
    catalog: &Catalog,
    exec: &ExecutionContext,
) -> Result<BoxedOperator> {
    let label = plan.node_label(Some(exec.ranking()));
    match &plan.op {
        PhysicalOp::SeqScan {
            table, columnar, ..
        } => {
            let table = catalog.table(table)?;
            match columnar {
                None => Ok(Box::new(SeqScan::new(&table, exec, label))),
                Some(c) => Ok(Box::new(ColumnScan::for_epoch(
                    &exec.pin_epoch(&table, true),
                    c.pushed_filter.as_ref(),
                    c.zone_prune,
                    exec,
                    label,
                )?)),
            }
        }
        PhysicalOp::RankScan {
            table, predicate, ..
        } => {
            check_predicate(exec.ranking(), *predicate)?;
            let table = catalog.table(table)?;
            let pred = exec.ranking().predicate(*predicate);
            // The index must cover exactly the pinned epoch's watermark: a
            // lagging cached index is extended over the missing row suffix
            // (evaluating the predicate only on the new rows); a missing one
            // is built over the epoch prefix.  One built past the watermark
            // (by a later execution) is replaced by a private epoch-local
            // build without regressing the shared cache.
            let watermark = exec.pin_epoch(&table, false).row_count();
            let index = match table.score_index(&pred.name) {
                Some(idx) if idx.indexed_rows() == watermark => idx,
                Some(idx) if idx.indexed_rows() < watermark => {
                    let first = idx.indexed_rows();
                    let ext = idx.extended(
                        pred,
                        table.schema(),
                        &table.scan_range(first..watermark),
                        first as u64,
                    )?;
                    table.add_score_index(ext)
                }
                cached => {
                    let built =
                        ScoreIndex::build(pred, table.schema(), &table.scan_prefix(watermark))?;
                    if cached.is_none() {
                        table.add_score_index(built)
                    } else {
                        Arc::new(built)
                    }
                }
            };
            Ok(Box::new(RankScan::new(
                table, index, *predicate, exec, label,
            )?))
        }
        PhysicalOp::AttributeIndexScan { table, column, .. } => {
            let table = catalog.table(table)?;
            // Same extend-or-build policy as the rank-scan arm above.
            let watermark = exec.pin_epoch(&table, false).row_count();
            let index = match table.btree_index(column) {
                Some(idx) if idx.indexed_rows() == watermark => idx,
                Some(idx) if idx.indexed_rows() < watermark => {
                    let first = idx.indexed_rows();
                    let ext = idx.extended(&table.scan_range(first..watermark), first as u64);
                    table.add_btree_index(ext)
                }
                cached => {
                    let built =
                        BTreeIndex::build(column, table.schema(), &table.scan_prefix(watermark))?;
                    if cached.is_none() {
                        table.add_btree_index(built)
                    } else {
                        Arc::new(built)
                    }
                }
            };
            Ok(Box::new(AttributeIndexScan::new(
                table, index, exec, label,
            )?))
        }
        PhysicalOp::Filter { input, predicate } => {
            let child = build_operator(input, catalog, exec)?;
            Ok(Box::new(Filter::new(child, predicate, exec, label)?))
        }
        PhysicalOp::Project { input, columns } => {
            let child = build_operator(input, catalog, exec)?;
            Ok(Box::new(Project::new(child, columns, exec, label)?))
        }
        PhysicalOp::RankMaterialize { input, predicate } => {
            check_predicate(exec.ranking(), *predicate)?;
            let child = build_operator(input, catalog, exec)?;
            Ok(Box::new(RankOp::new(child, *predicate, exec, label)))
        }
        PhysicalOp::MproProbe { input, schedule } => {
            for &p in schedule {
                check_predicate(exec.ranking(), p)?;
            }
            let child = build_operator(input, catalog, exec)?;
            Ok(Box::new(MProOp::new(child, schedule.clone(), exec, label)))
        }
        PhysicalOp::NestedLoopsJoin {
            left,
            right,
            condition,
        } => {
            let l = build_operator(left, catalog, exec)?;
            let r = build_operator(right, catalog, exec)?;
            Ok(Box::new(NestedLoopJoin::new(
                l,
                r,
                condition.as_ref(),
                exec,
                label,
            )?))
        }
        PhysicalOp::HashJoin {
            left,
            right,
            condition,
        } => {
            let l = build_operator(left, catalog, exec)?;
            let r = build_operator(right, catalog, exec)?;
            Ok(Box::new(HashJoin::new(
                l,
                r,
                condition.as_ref(),
                exec,
                label,
            )?))
        }
        PhysicalOp::SortMergeJoin {
            left,
            right,
            condition,
        } => {
            let l = build_operator(left, catalog, exec)?;
            let r = build_operator(right, catalog, exec)?;
            Ok(Box::new(SortMergeJoin::new(
                l,
                r,
                condition.as_ref(),
                exec,
                label,
            )?))
        }
        PhysicalOp::HashRankJoin {
            left,
            right,
            condition,
        } => {
            let l = build_operator(left, catalog, exec)?;
            let r = build_operator(right, catalog, exec)?;
            Ok(Box::new(RankJoin::hrjn(
                l,
                r,
                condition.as_ref(),
                exec,
                label,
            )?))
        }
        PhysicalOp::NestedLoopsRankJoin {
            left,
            right,
            condition,
        } => {
            let l = build_operator(left, catalog, exec)?;
            let r = build_operator(right, catalog, exec)?;
            Ok(Box::new(RankJoin::nrjn(
                l,
                r,
                condition.as_ref(),
                exec,
                label,
            )?))
        }
        PhysicalOp::SetOp { kind, left, right } => {
            let l = build_operator(left, catalog, exec)?;
            let r = build_operator(right, catalog, exec)?;
            if l.schema().len() != r.schema().len() {
                return Err(RankSqlError::Plan(
                    "set operation inputs are not union compatible".into(),
                ));
            }
            let op: BoxedOperator = match kind {
                SetOpKind::Union => Box::new(UnionOp::new(l, r, exec, label)),
                SetOpKind::Intersect => Box::new(IntersectOp::new(l, r, exec, label)),
                SetOpKind::Except => Box::new(ExceptOp::new(l, r, exec, label)),
            };
            Ok(op)
        }
        PhysicalOp::Sort { input, predicates } => {
            for p in predicates.iter() {
                check_predicate(exec.ranking(), p)?;
            }
            let child = build_operator(input, catalog, exec)?;
            Ok(Box::new(SortOp::new(child, *predicates, exec, label)))
        }
        PhysicalOp::SortLimit {
            input,
            predicates,
            k,
        } => {
            for p in predicates.iter() {
                check_predicate(exec.ranking(), p)?;
            }
            // Zone-map score pruning: when this top-k sits on a σ/π spine
            // over a zone-pruning columnar scan, hand the pair a shared
            // threshold cell — the heap publishes its worst kept score, the
            // scan skips blocks that cannot beat it.  The push/pop protocol
            // is strictly nested because the verified spine is a linear
            // operator chain (no other SortLimit can be built in between).
            let cell = if spine_has_pruning_scan(input) {
                let cell = Arc::new(TopKThreshold::new());
                exec.push_prune_threshold(Arc::clone(&cell));
                Some(cell)
            } else {
                None
            };
            let child = build_operator(input, catalog, exec)?;
            let mut op = SortLimitOp::new(child, *predicates, *k, exec, label);
            if let Some(cell) = cell {
                op = op.with_threshold(cell);
            }
            Ok(Box::new(op))
        }
        PhysicalOp::Limit { input, k } => {
            let child = build_operator(input, catalog, exec)?;
            Ok(Box::new(LimitOp::new(child, *k, exec, label)))
        }
        PhysicalOp::Exchange { input, merge } => Ok(Box::new(ExchangeOp::new(
            input, *merge, catalog, exec, label,
        )?)),
        PhysicalOp::Repartition { input } => {
            // Outside an exchange the repartition marker is transparent:
            // build the scan and forward it.
            let child = build_operator(input, catalog, exec)?;
            Ok(Box::new(RepartitionPassthrough::new(child, exec, label)))
        }
    }
}

/// The outcome of executing a plan.
#[derive(Debug)]
pub struct ExecutionResult {
    /// The tuples produced by the plan root, in emission order.
    pub tuples: Vec<RankedTuple>,
    /// Per-operator metrics, in bottom-up registration order.
    pub metrics: Arc<MetricsRegistry>,
    /// Wall-clock execution time (building + draining the operator tree).
    pub elapsed: Duration,
    /// Per-predicate evaluation counts accumulated during this execution.
    pub predicate_evaluations: Vec<u64>,
    /// Tuples the scans actually examined (zone-map pruning lowers this —
    /// and only this — for identical results).
    pub tuples_scanned: u64,
    /// Zone-map prune events: block ranges skipped by filter or score
    /// pruning.  Serially this equals the number of skipped blocks; under
    /// morsel-parallel execution a block overlapping several morsels may
    /// count once per morsel (the exact row savings are in
    /// `tuples_scanned`).
    pub blocks_pruned: u64,
    /// Buffer-pool pages faulted in from disk by columnar scans (0 on
    /// RAM-resident backends).
    pub pages_faulted: u64,
    /// Pages of paged-out blocks that zone-map pruning skipped — disk reads
    /// that never happened (0 on RAM-resident backends).
    pub pages_pruned: u64,
}

impl ExecutionResult {
    /// Total ranking-predicate evaluations during this execution.
    pub fn total_predicate_evaluations(&self) -> u64 {
        self.predicate_evaluations.iter().sum()
    }

    /// `(label, tuples_out)` per operator in post-order.
    pub fn actual_cardinalities(&self) -> Vec<(String, u64)> {
        self.metrics.output_cardinalities()
    }

    /// Per-operator runtime actuals (tuples, batches, mean batch fill) in
    /// post-order — the series [`PhysicalPlan::explain_with_actuals`] pairs
    /// against the plan.
    pub fn operator_actuals(&self) -> Vec<ranksql_algebra::OperatorActuals> {
        self.metrics.operator_actuals()
    }
}

/// Builds and fully drains a physical plan under an explicit execution
/// context, collecting results and metrics.
///
/// The root is driven through the batched pull interface with the context's
/// [`ExecutionContext::batch_size`], so the whole tree runs vectorized;
/// plans whose root is a `Limit` still stop early because `Limit` caps what
/// it requests from its input per batch.
///
/// The ranking context's evaluation counters are snapshotted around the run
/// so that [`ExecutionResult::predicate_evaluations`] reflects only this
/// execution.
pub fn execute_physical_plan(
    plan: &PhysicalPlan,
    catalog: &Catalog,
    exec: &ExecutionContext,
) -> Result<ExecutionResult> {
    let before = exec.ranking().counters().snapshot();
    let scanned_before = exec.budget().used();
    let pruned_before = exec.blocks_pruned();
    let faulted_before = exec.pages_faulted();
    let pages_pruned_before = exec.pages_pruned();
    let start = Instant::now();
    let mut root = build_operator(plan, catalog, exec)?;
    let tuples = drain_batched(root.as_mut(), exec.batch_size())?;
    let elapsed = start.elapsed();
    let after = exec.ranking().counters().snapshot();
    let predicate_evaluations = after
        .iter()
        .zip(before.iter())
        .map(|(a, b)| a - b)
        .collect();
    Ok(ExecutionResult {
        tuples,
        metrics: Arc::clone(exec.metrics()),
        elapsed,
        predicate_evaluations,
        tuples_scanned: exec.budget().used() - scanned_before,
        blocks_pruned: exec.blocks_pruned() - pruned_before,
        pages_faulted: exec.pages_faulted() - faulted_before,
        pages_pruned: exec.pages_pruned() - pages_pruned_before,
    })
}

/// Convenience wrapper: structurally lowers a logical plan (zero-cost
/// annotations) and executes it with a fresh unlimited context.
pub fn execute_plan(
    plan: &LogicalPlan,
    catalog: &Catalog,
    ctx: &Arc<RankingContext>,
) -> Result<ExecutionResult> {
    let physical = PhysicalPlan::from_logical(plan)?;
    let exec = ExecutionContext::new(Arc::clone(ctx));
    execute_physical_plan(&physical, catalog, &exec)
}

/// Convenience wrapper taking the ranking context from a
/// [`ranksql_algebra::RankQuery`].
pub fn execute_query_plan(
    query: &ranksql_algebra::RankQuery,
    plan: &LogicalPlan,
    catalog: &Catalog,
) -> Result<ExecutionResult> {
    execute_plan(plan, catalog, &query.ranking)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::oracle_top_k;
    use ranksql_algebra::{JoinAlgorithm, RankQuery, ScanAccess};
    use ranksql_common::{BitSet64, DataType, Field, Schema, Value};
    use ranksql_expr::{BoolExpr, RankPredicate, ScoringFunction};

    /// Builds a two-table catalog and a ranking query over it.
    fn setup(rows: usize) -> (Catalog, RankQuery) {
        let cat = Catalog::new();
        let r = cat
            .create_table(
                "R",
                Schema::new(vec![
                    Field::new("a", DataType::Int64),
                    Field::new("p1", DataType::Float64),
                    Field::new("flag", DataType::Bool),
                ]),
            )
            .unwrap();
        let s = cat
            .create_table(
                "S",
                Schema::new(vec![
                    Field::new("a", DataType::Int64),
                    Field::new("p2", DataType::Float64),
                ]),
            )
            .unwrap();
        // Deterministic pseudo-random content.
        for i in 0..rows {
            let a = (i * 7 % 13) as i64;
            let p1 = ((i * 37 % 100) as f64) / 100.0;
            r.insert(vec![
                Value::from(a),
                Value::from(p1),
                Value::from(i % 3 != 0),
            ])
            .unwrap();
            let a2 = (i * 5 % 13) as i64;
            let p2 = ((i * 61 % 100) as f64) / 100.0;
            s.insert(vec![Value::from(a2), Value::from(p2)]).unwrap();
        }
        let ranking = RankingContext::new(
            vec![
                RankPredicate::attribute("p1", "R.p1"),
                RankPredicate::attribute("p2", "S.p2"),
            ],
            ScoringFunction::Sum,
        );
        let query = RankQuery::new(
            vec!["R".into(), "S".into()],
            vec![
                BoolExpr::col_eq_col("R.a", "S.a"),
                BoolExpr::column_is_true("R.flag"),
            ],
            ranking,
            5,
        );
        (cat, query)
    }

    fn scores(query: &RankQuery, tuples: &[RankedTuple]) -> Vec<f64> {
        tuples
            .iter()
            .map(|t| query.ranking.upper_bound(&t.state).value())
            .collect()
    }

    #[test]
    fn canonical_plan_matches_oracle() {
        let (cat, query) = setup(40);
        let plan = query.canonical_plan(&cat).unwrap();
        let result = execute_query_plan(&query, &plan, &cat).unwrap();
        let oracle = oracle_top_k(&query, &cat).unwrap();
        assert_eq!(result.tuples.len(), oracle.len());
        assert_eq!(scores(&query, &result.tuples), scores(&query, &oracle));
    }

    #[test]
    fn pipelined_rank_plan_matches_oracle() {
        let (cat, query) = setup(40);
        let r = cat.table("R").unwrap();
        let s = cat.table("S").unwrap();
        // RankScan_p1(R) filtered, HRJN with µ_p2 over SeqScan(S), limit k.
        let plan = ranksql_algebra::LogicalPlan::rank_scan(&r, 0)
            .select(BoolExpr::column_is_true("R.flag"))
            .join(
                ranksql_algebra::LogicalPlan::scan(&s).rank(1),
                Some(BoolExpr::col_eq_col("R.a", "S.a")),
                JoinAlgorithm::HashRankJoin,
            )
            .limit(query.k);
        let result = execute_query_plan(&query, &plan, &cat).unwrap();
        let oracle = oracle_top_k(&query, &cat).unwrap();
        assert_eq!(scores(&query, &result.tuples), scores(&query, &oracle));
        assert!(result.tuples.len() <= query.k);
    }

    #[test]
    fn equivalent_plans_from_the_laws_agree_on_results() {
        let (cat, query) = setup(25);
        let canonical = query.canonical_plan(&cat).unwrap();
        let expected = scores(&query, &oracle_top_k(&query, &cat).unwrap());
        let alternatives = ranksql_algebra::equivalent_plans(&canonical, &query, 40);
        assert!(alternatives.len() > 3);
        for plan in alternatives {
            let result = execute_query_plan(&query, &plan, &cat).unwrap();
            assert_eq!(
                scores(&query, &result.tuples),
                expected,
                "plan disagreed with oracle:\n{}",
                plan.explain(Some(&query.ranking))
            );
        }
    }

    #[test]
    fn metrics_and_counters_are_reported() {
        let (cat, query) = setup(30);
        let r = cat.table("R").unwrap();
        // Sort directly under Limit fuses into one SortLimit operator, so the
        // physical tree has 3 nodes: SeqScan → Rank_p1 → SortLimit.
        let plan = ranksql_algebra::LogicalPlan::scan(&r)
            .rank(0)
            .sort(BitSet64::singleton(0))
            .limit(3);
        let result = execute_plan(&plan, &cat, &query.ranking).unwrap();
        assert_eq!(result.tuples.len(), 3);
        assert_eq!(result.metrics.len(), 3);
        let labels: Vec<String> = result
            .actual_cardinalities()
            .iter()
            .map(|(l, _)| l.clone())
            .collect();
        assert!(labels[2].starts_with("SortLimit["), "{labels:?}");
        assert_eq!(result.predicate_evaluations[0], 30);
        assert_eq!(result.predicate_evaluations[1], 0);
        assert_eq!(result.total_predicate_evaluations(), 30);
        assert!(result.elapsed.as_nanos() > 0);
    }

    #[test]
    fn fused_sort_limit_matches_unfused_sort_plus_limit() {
        let (cat, query) = setup(60);
        let r = cat.table("R").unwrap();
        let logical = ranksql_algebra::LogicalPlan::scan(&r)
            .sort(BitSet64::singleton(0))
            .limit(7);
        // Fused execution (the default structural lowering).
        let fused = execute_plan(&logical, &cat, &query.ranking).unwrap();
        // Hand-built unfused physical plan: Sort then Limit as two nodes.
        let scan = PhysicalPlan::from_logical(&ranksql_algebra::LogicalPlan::scan(&r)).unwrap();
        let unfused = PhysicalPlan::unestimated(PhysicalOp::Limit {
            input: Box::new(PhysicalPlan::unestimated(PhysicalOp::Sort {
                input: Box::new(scan),
                predicates: BitSet64::singleton(0),
            })),
            k: 7,
        });
        let exec = ExecutionContext::new(Arc::clone(&query.ranking));
        let reference = execute_physical_plan(&unfused, &cat, &exec).unwrap();
        assert_eq!(
            scores(&query, &fused.tuples),
            scores(&query, &reference.tuples)
        );
        let ids_fused: Vec<_> = fused.tuples.iter().map(|t| t.tuple.id().clone()).collect();
        let ids_ref: Vec<_> = reference
            .tuples
            .iter()
            .map(|t| t.tuple.id().clone())
            .collect();
        assert_eq!(ids_fused, ids_ref);
    }

    #[test]
    fn rank_scan_builds_missing_index_on_demand() {
        let (cat, query) = setup(10);
        let r = cat.table("R").unwrap();
        assert!(r.score_index("p1").is_none());
        let plan = ranksql_algebra::LogicalPlan::rank_scan(&r, 0).limit(2);
        let result = execute_plan(&plan, &cat, &query.ranking).unwrap();
        assert_eq!(result.tuples.len(), 2);
        assert!(r.score_index("p1").is_some());
    }

    #[test]
    fn rank_scan_extends_the_index_after_inserts() {
        let (cat, query) = setup(10);
        let r = cat.table("R").unwrap();
        let plan = ranksql_algebra::LogicalPlan::rank_scan(&r, 0).limit(3);
        execute_plan(&plan, &cat, &query.ranking).unwrap();
        assert!(r.score_index("p1").is_some());

        // Insert a new best row: the index is kept (it still covers its
        // epoch prefix) and lags the table by exactly the new row.
        r.insert(vec![Value::from(1), Value::from(0.999), Value::from(true)])
            .unwrap();
        let kept = r.score_index("p1").expect("insert must keep the index");
        assert_eq!(kept.indexed_rows(), 10, "kept index covers its epoch");

        // The next execution extends the index over the missing suffix, so
        // the new row must surface as the top result (a silently stale
        // index would miss it).
        let result = execute_plan(&plan, &cat, &query.ranking).unwrap();
        let top = query.ranking.upper_bound(&result.tuples[0].state).value();
        let n = query.ranking.num_predicates() as f64;
        assert!((top - (0.999 + (n - 1.0))).abs() < 1e-9, "top={top}");
        assert_eq!(r.score_index("p1").unwrap().indexed_rows(), 11);
    }

    #[test]
    fn lagging_cached_index_is_extended_not_fatal() {
        let (cat, query) = setup(10);
        let r = cat.table("R").unwrap();
        let pred = query.ranking.predicate(0);
        // An index built before an insert is cached after it: a valid
        // prefix epoch, lagging the table by one row.
        let lagging = ScoreIndex::build(pred, r.schema(), &r.scan()).unwrap();
        r.insert(vec![Value::from(1), Value::from(0.999), Value::from(true)])
            .unwrap();
        r.add_score_index(lagging);
        assert_ne!(r.score_index("p1").unwrap().indexed_rows(), r.row_count());

        // The executor extends the cached prefix over the missing suffix
        // and returns the current top row.
        let plan = ranksql_algebra::LogicalPlan::rank_scan(&r, 0).limit(1);
        let result = execute_plan(&plan, &cat, &query.ranking).unwrap();
        let top = query.ranking.upper_bound(&result.tuples[0].state).value();
        assert!((top - (0.999 + 1.0)).abs() < 1e-9, "top={top}");
        assert_eq!(r.score_index("p1").unwrap().indexed_rows(), r.row_count());
    }

    #[test]
    fn stale_index_handles_are_rejected_with_a_catalog_error() {
        let (cat, query) = setup(10);
        let r = cat.table("R").unwrap();
        let pred = query.ranking.predicate(0);
        let stale = Arc::new(ScoreIndex::build(pred, r.schema(), &r.scan()).unwrap());
        r.insert(vec![Value::from(1), Value::from(0.5), Value::from(true)])
            .unwrap();
        let exec = ExecutionContext::new(Arc::clone(&query.ranking));
        let err = match RankScan::new(Arc::clone(&r), stale, 0, &exec, "RankScan") {
            Err(e) => e,
            Ok(_) => panic!("stale index handle must be rejected"),
        };
        assert!(matches!(err, RankSqlError::Catalog(_)), "{err:?}");
        assert!(err.to_string().contains("stale"), "{err}");
    }

    #[test]
    fn tuple_budget_aborts_runaway_scans() {
        let (cat, query) = setup(30);
        let plan = query.canonical_plan(&cat).unwrap();
        let physical = PhysicalPlan::from_logical(&plan).unwrap();
        // The canonical plan scans 30 + 30 tuples; a budget of 10 must trip.
        let exec = ExecutionContext::with_budget(Arc::clone(&query.ranking), 10);
        let err = execute_physical_plan(&physical, &cat, &exec).unwrap_err();
        assert!(err.to_string().contains("tuple budget exceeded"), "{err}");
        // An ample budget executes normally.
        let exec = ExecutionContext::with_budget(Arc::clone(&query.ranking), 100);
        let ok = execute_physical_plan(&physical, &cat, &exec).unwrap();
        assert_eq!(ok.tuples.len(), query.k.min(ok.tuples.len()));
    }

    #[test]
    fn invalid_plans_are_rejected() {
        let (cat, query) = setup(5);
        let r = cat.table("R").unwrap();
        // Unknown predicate index.
        let bad = ranksql_algebra::LogicalPlan::scan(&r).rank(9);
        assert!(execute_plan(&bad, &cat, &query.ranking).is_err());
        // Unknown table.
        let ghost = ranksql_algebra::LogicalPlan::Scan {
            table: "Ghost".into(),
            schema: r.schema().clone(),
            access: ScanAccess::Sequential,
        };
        assert!(execute_plan(&ghost, &cat, &query.ranking).is_err());
    }
}
