//! Lowering logical plans to physical operator trees and driving execution.

use std::sync::Arc;
use std::time::{Duration, Instant};

use ranksql_algebra::{JoinAlgorithm, LogicalPlan, ScanAccess, SetOpKind};
use ranksql_common::{RankSqlError, Result};
use ranksql_expr::{RankedTuple, RankingContext};
use ranksql_storage::{BTreeIndex, Catalog, ScoreIndex};

use crate::filter::{Filter, Project};
use crate::join::{HashJoin, NestedLoopJoin, SortMergeJoin};
use crate::metrics::MetricsRegistry;
use crate::operator::{drain, BoxedOperator};
use crate::rank::RankOp;
use crate::rank_join::RankJoin;
use crate::scan::{AttributeIndexScan, RankScan, SeqScan};
use crate::set_ops::{ExceptOp, IntersectOp, UnionOp};
use crate::sort_limit::{LimitOp, SortOp};

/// Lowers a logical plan to a physical operator tree.
///
/// Operators register their metrics in `registry` bottom-up (inputs before
/// parents), so the registration order is deterministic for a given plan
/// shape — the cardinality-estimation experiment relies on this to pair real
/// and estimated cardinalities per operator.
///
/// Rank-scans require a score index on the scanned table; if none exists one
/// is built on the fly and cached on the table, mirroring the paper's
/// assumption that such indexes are available as access paths.
pub fn build_operator(
    plan: &LogicalPlan,
    catalog: &Catalog,
    ctx: &Arc<RankingContext>,
    registry: &MetricsRegistry,
) -> Result<BoxedOperator> {
    match plan {
        LogicalPlan::Scan { table, access, .. } => {
            let table = catalog.table(table)?;
            match access {
                ScanAccess::Sequential => {
                    let m = registry.register(plan.node_label(Some(ctx)));
                    Ok(Box::new(SeqScan::new(&table, Arc::clone(ctx), m)))
                }
                ScanAccess::RankIndex { predicate } => {
                    let pred = ctx.predicate(*predicate);
                    let index = match table.score_index(&pred.name) {
                        Some(idx) => idx,
                        None => {
                            let built = ScoreIndex::build(pred, table.schema(), &table.scan())?;
                            table.add_score_index(built)
                        }
                    };
                    let m = registry.register(plan.node_label(Some(ctx)));
                    Ok(Box::new(RankScan::new(table, index, *predicate, Arc::clone(ctx), m)?))
                }
                ScanAccess::AttributeIndex { column } => {
                    let index = match table.btree_index(column) {
                        Some(idx) => idx,
                        None => {
                            let built = BTreeIndex::build(column, table.schema(), &table.scan())?;
                            table.add_btree_index(built)
                        }
                    };
                    let m = registry.register(plan.node_label(Some(ctx)));
                    Ok(Box::new(AttributeIndexScan::new(table, index, Arc::clone(ctx), m)))
                }
            }
        }
        LogicalPlan::Select { input, predicate } => {
            let child = build_operator(input, catalog, ctx, registry)?;
            let m = registry.register(plan.node_label(Some(ctx)));
            Ok(Box::new(Filter::new(child, predicate, m)?))
        }
        LogicalPlan::Project { input, columns } => {
            let child = build_operator(input, catalog, ctx, registry)?;
            let m = registry.register(plan.node_label(Some(ctx)));
            Ok(Box::new(Project::new(child, columns, m)?))
        }
        LogicalPlan::Rank { input, predicate } => {
            if *predicate >= ctx.num_predicates() {
                return Err(RankSqlError::Plan(format!(
                    "rank operator references predicate #{predicate} but the query has only {}",
                    ctx.num_predicates()
                )));
            }
            let child = build_operator(input, catalog, ctx, registry)?;
            let m = registry.register(plan.node_label(Some(ctx)));
            Ok(Box::new(RankOp::new(child, *predicate, Arc::clone(ctx), m)))
        }
        LogicalPlan::Join { left, right, condition, algorithm } => {
            let l = build_operator(left, catalog, ctx, registry)?;
            let r = build_operator(right, catalog, ctx, registry)?;
            let m = registry.register(plan.node_label(Some(ctx)));
            let op: BoxedOperator = match algorithm {
                JoinAlgorithm::NestedLoop => {
                    Box::new(NestedLoopJoin::new(l, r, condition.as_ref(), m)?)
                }
                JoinAlgorithm::Hash => Box::new(HashJoin::new(l, r, condition.as_ref(), m)?),
                JoinAlgorithm::SortMerge => {
                    Box::new(SortMergeJoin::new(l, r, condition.as_ref(), m)?)
                }
                JoinAlgorithm::HashRankJoin => {
                    Box::new(RankJoin::hrjn(l, r, condition.as_ref(), Arc::clone(ctx), m)?)
                }
                JoinAlgorithm::NestedLoopRankJoin => {
                    Box::new(RankJoin::nrjn(l, r, condition.as_ref(), Arc::clone(ctx), m)?)
                }
            };
            Ok(op)
        }
        LogicalPlan::SetOp { kind, left, right } => {
            let l = build_operator(left, catalog, ctx, registry)?;
            let r = build_operator(right, catalog, ctx, registry)?;
            if l.schema().len() != r.schema().len() {
                return Err(RankSqlError::Plan(
                    "set operation inputs are not union compatible".into(),
                ));
            }
            let m = registry.register(plan.node_label(Some(ctx)));
            let op: BoxedOperator = match kind {
                SetOpKind::Union => Box::new(UnionOp::new(l, r, Arc::clone(ctx), m)),
                SetOpKind::Intersect => Box::new(IntersectOp::new(l, r, Arc::clone(ctx), m)),
                SetOpKind::Except => Box::new(ExceptOp::new(l, r, Arc::clone(ctx), m)),
            };
            Ok(op)
        }
        LogicalPlan::Sort { input, predicates } => {
            let child = build_operator(input, catalog, ctx, registry)?;
            let m = registry.register(plan.node_label(Some(ctx)));
            Ok(Box::new(SortOp::new(child, *predicates, Arc::clone(ctx), m)))
        }
        LogicalPlan::Limit { input, k } => {
            let child = build_operator(input, catalog, ctx, registry)?;
            let m = registry.register(plan.node_label(Some(ctx)));
            Ok(Box::new(LimitOp::new(child, *k, m)))
        }
    }
}

/// The outcome of executing a plan.
#[derive(Debug)]
pub struct ExecutionResult {
    /// The tuples produced by the plan root, in emission order.
    pub tuples: Vec<RankedTuple>,
    /// Per-operator metrics, in bottom-up registration order.
    pub metrics: Arc<MetricsRegistry>,
    /// Wall-clock execution time (building + draining the operator tree).
    pub elapsed: Duration,
    /// Per-predicate evaluation counts accumulated during this execution.
    pub predicate_evaluations: Vec<u64>,
}

impl ExecutionResult {
    /// Total ranking-predicate evaluations during this execution.
    pub fn total_predicate_evaluations(&self) -> u64 {
        self.predicate_evaluations.iter().sum()
    }
}

/// Builds and fully drains a plan, collecting results and metrics.
///
/// The ranking context's evaluation counters are snapshotted around the run
/// so that [`ExecutionResult::predicate_evaluations`] reflects only this
/// execution.
pub fn execute_plan(
    plan: &LogicalPlan,
    catalog: &Catalog,
    ctx: &Arc<RankingContext>,
) -> Result<ExecutionResult> {
    let registry = MetricsRegistry::new();
    let before = ctx.counters().snapshot();
    let start = Instant::now();
    let mut root = build_operator(plan, catalog, ctx, &registry)?;
    let tuples = drain(root.as_mut())?;
    let elapsed = start.elapsed();
    let after = ctx.counters().snapshot();
    let predicate_evaluations =
        after.iter().zip(before.iter()).map(|(a, b)| a - b).collect();
    Ok(ExecutionResult { tuples, metrics: registry, elapsed, predicate_evaluations })
}

/// Convenience wrapper taking the ranking context from a
/// [`ranksql_algebra::RankQuery`].
pub fn execute_query_plan(
    query: &ranksql_algebra::RankQuery,
    plan: &LogicalPlan,
    catalog: &Catalog,
) -> Result<ExecutionResult> {
    execute_plan(plan, catalog, &query.ranking)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::oracle_top_k;
    use ranksql_algebra::RankQuery;
    use ranksql_common::{BitSet64, DataType, Field, Schema, Value};
    use ranksql_expr::{BoolExpr, RankPredicate, ScoringFunction};

    /// Builds a two-table catalog and a ranking query over it.
    fn setup(rows: usize) -> (Catalog, RankQuery) {
        let cat = Catalog::new();
        let r = cat
            .create_table(
                "R",
                Schema::new(vec![
                    Field::new("a", DataType::Int64),
                    Field::new("p1", DataType::Float64),
                    Field::new("flag", DataType::Bool),
                ]),
            )
            .unwrap();
        let s = cat
            .create_table(
                "S",
                Schema::new(vec![
                    Field::new("a", DataType::Int64),
                    Field::new("p2", DataType::Float64),
                ]),
            )
            .unwrap();
        // Deterministic pseudo-random content.
        for i in 0..rows {
            let a = (i * 7 % 13) as i64;
            let p1 = ((i * 37 % 100) as f64) / 100.0;
            r.insert(vec![Value::from(a), Value::from(p1), Value::from(i % 3 != 0)]).unwrap();
            let a2 = (i * 5 % 13) as i64;
            let p2 = ((i * 61 % 100) as f64) / 100.0;
            s.insert(vec![Value::from(a2), Value::from(p2)]).unwrap();
        }
        let ranking = RankingContext::new(
            vec![
                RankPredicate::attribute("p1", "R.p1"),
                RankPredicate::attribute("p2", "S.p2"),
            ],
            ScoringFunction::Sum,
        );
        let query = RankQuery::new(
            vec!["R".into(), "S".into()],
            vec![BoolExpr::col_eq_col("R.a", "S.a"), BoolExpr::column_is_true("R.flag")],
            ranking,
            5,
        );
        (cat, query)
    }

    fn scores(query: &RankQuery, tuples: &[RankedTuple]) -> Vec<f64> {
        tuples.iter().map(|t| query.ranking.upper_bound(&t.state).value()).collect()
    }

    #[test]
    fn canonical_plan_matches_oracle() {
        let (cat, query) = setup(40);
        let plan = query.canonical_plan(&cat).unwrap();
        let result = execute_query_plan(&query, &plan, &cat).unwrap();
        let oracle = oracle_top_k(&query, &cat).unwrap();
        assert_eq!(result.tuples.len(), oracle.len());
        assert_eq!(scores(&query, &result.tuples), scores(&query, &oracle));
    }

    #[test]
    fn pipelined_rank_plan_matches_oracle() {
        let (cat, query) = setup(40);
        let r = cat.table("R").unwrap();
        let s = cat.table("S").unwrap();
        // RankScan_p1(R) filtered, HRJN with µ_p2 over SeqScan(S), limit k.
        let plan = ranksql_algebra::LogicalPlan::rank_scan(&r, 0)
            .select(BoolExpr::column_is_true("R.flag"))
            .join(
                ranksql_algebra::LogicalPlan::scan(&s).rank(1),
                Some(BoolExpr::col_eq_col("R.a", "S.a")),
                JoinAlgorithm::HashRankJoin,
            )
            .limit(query.k);
        let result = execute_query_plan(&query, &plan, &cat).unwrap();
        let oracle = oracle_top_k(&query, &cat).unwrap();
        assert_eq!(scores(&query, &result.tuples), scores(&query, &oracle));
        assert!(result.tuples.len() <= query.k);
    }

    #[test]
    fn equivalent_plans_from_the_laws_agree_on_results() {
        let (cat, query) = setup(25);
        let canonical = query.canonical_plan(&cat).unwrap();
        let expected = scores(&query, &oracle_top_k(&query, &cat).unwrap());
        let alternatives = ranksql_algebra::equivalent_plans(&canonical, &query, 40);
        assert!(alternatives.len() > 3);
        for plan in alternatives {
            let result = execute_query_plan(&query, &plan, &cat).unwrap();
            assert_eq!(
                scores(&query, &result.tuples),
                expected,
                "plan disagreed with oracle:\n{}",
                plan.explain(Some(&query.ranking))
            );
        }
    }

    #[test]
    fn metrics_and_counters_are_reported() {
        let (cat, query) = setup(30);
        let r = cat.table("R").unwrap();
        let plan = ranksql_algebra::LogicalPlan::scan(&r)
            .rank(0)
            .sort(BitSet64::singleton(0))
            .limit(3);
        let result = execute_plan(&plan, &cat, &query.ranking).unwrap();
        assert_eq!(result.tuples.len(), 3);
        assert_eq!(result.metrics.len(), 4);
        assert_eq!(result.predicate_evaluations[0], 30);
        assert_eq!(result.predicate_evaluations[1], 0);
        assert_eq!(result.total_predicate_evaluations(), 30);
        assert!(result.elapsed.as_nanos() > 0);
    }

    #[test]
    fn rank_scan_builds_missing_index_on_demand() {
        let (cat, query) = setup(10);
        let r = cat.table("R").unwrap();
        assert!(r.score_index("p1").is_none());
        let plan = ranksql_algebra::LogicalPlan::rank_scan(&r, 0).limit(2);
        let result = execute_plan(&plan, &cat, &query.ranking).unwrap();
        assert_eq!(result.tuples.len(), 2);
        assert!(r.score_index("p1").is_some());
    }

    #[test]
    fn invalid_plans_are_rejected() {
        let (cat, query) = setup(5);
        let r = cat.table("R").unwrap();
        // Unknown predicate index.
        let bad = ranksql_algebra::LogicalPlan::scan(&r).rank(9);
        assert!(execute_plan(&bad, &cat, &query.ranking).is_err());
        // Unknown table.
        let ghost = ranksql_algebra::LogicalPlan::Scan {
            table: "Ghost".into(),
            schema: r.schema().clone(),
            access: ScanAccess::Sequential,
        };
        assert!(execute_plan(&ghost, &cat, &query.ranking).is_err());
    }
}
