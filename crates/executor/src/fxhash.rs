//! A fast, non-cryptographic hasher for the executor's internal hash tables.
//!
//! Join build/probe sides hash small keys (a handful of [`Value`]s) once per
//! input tuple; with the standard library's DoS-resistant SipHash that
//! hashing is a measurable slice of the hash-join hot path.  The executor's
//! tables are query-internal — keys come from the data already admitted into
//! the engine, not from an adversary choosing hash inputs — so the
//! rustc-hash ("Fx") multiply-rotate hash is the appropriate trade-off, as
//! in rustc itself.
//!
//! [`Value`]: ranksql_common::Value

use std::hash::{BuildHasherDefault, Hasher};

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// The FxHash mixing function: rotate, xor, multiply.
#[derive(Debug, Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, i: u64) {
        self.hash = (self.hash.rotate_left(5) ^ i).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        // Full-avalanche finalizer (murmur3's fmix64).  The multiply in
        // `add_to_hash` only propagates entropy upward, and the engine's
        // join keys concentrate their entropy in high bits (`Value` hashes
        // integers through their f64 bit pattern, whose mantissa low bits
        // are zero for small integers) — without the avalanche such keys
        // collide in the low bucket-index bits of a SwissTable, degrading
        // the join to linear probing.
        let mut h = self.hash;
        h ^= h >> 33;
        h = h.wrapping_mul(0xff51_afd7_ed55_8ccd);
        h ^= h >> 33;
        h = h.wrapping_mul(0xc4ce_b9fe_1a85_ec53);
        h ^= h >> 33;
        h
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(chunk.try_into().expect("8-byte chunk")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rest.len()].copy_from_slice(rest);
            self.add_to_hash(u64::from_le_bytes(buf));
            self.add_to_hash(rest.len() as u64);
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }
}

/// A `BuildHasher` producing [`FxHasher`]s (deterministic, zero-sized).
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` using [`FxHasher`] — the executor's join tables.
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;
    use ranksql_common::Value;
    use std::hash::{BuildHasher, Hash};

    fn fx_hash_of(v: &impl Hash) -> u64 {
        FxBuildHasher::default().hash_one(v)
    }

    #[test]
    fn equal_keys_hash_equal_and_unequal_keys_spread() {
        let a = vec![Value::from(1i64), Value::from("x")];
        let b = vec![Value::from(1i64), Value::from("x")];
        assert_eq!(fx_hash_of(&a), fx_hash_of(&b));
        let distinct: std::collections::HashSet<u64> =
            (0..1000i64).map(|i| fx_hash_of(&Value::from(i))).collect();
        assert!(
            distinct.len() > 990,
            "only {} distinct hashes",
            distinct.len()
        );
    }

    #[test]
    fn map_round_trips() {
        let mut m: FxHashMap<Vec<Value>, u32> = FxHashMap::default();
        m.insert(vec![Value::from(7i64)], 1);
        assert_eq!(m.get([Value::from(7i64)].as_slice()), Some(&1));
        assert_eq!(m.get([Value::from(8i64)].as_slice()), None);
    }
}
