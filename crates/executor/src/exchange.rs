//! Morsel-driven parallel execution: the `Exchange` / `Repartition`
//! operators.
//!
//! An [`ExchangeOp`] executes a *parallel-safe spine* — a chain of
//! membership operators (morsel scan → σ/π → hash-join probe → optional
//! per-partition τ/τ+λ) — once per **morsel** (a contiguous chunk of the
//! driving table's rows) across a scoped-thread [`WorkerPool`], then
//! reassembles the per-morsel outputs into one serial stream.
//!
//! Three properties make this deterministic — byte-identical output across
//! any thread count, and identical to serial execution:
//!
//! 1. **Morsel partitioning is thread-independent**: morsels are fixed-size
//!    contiguous row ranges; the worker count only affects who processes a
//!    morsel, never what a morsel is.
//! 2. **Reassembly is order-defined**: `Concat` glues morsel outputs back in
//!    morsel order (= the serial emission order of the same pipeline), and
//!    `Ordered` k-way merges rank-sorted runs under the *total* order of
//!    `RankedTuple::cmp_desc` (score descending, ties on tuple identity).
//! 3. **Shared build state is built once, serially**: the build side of a
//!    hash join inside the spine is drained a single time (possibly itself
//!    through a nested concat-exchange) and the resulting [`JoinTable`] is
//!    shared read-only across all probe instances.
//!
//! Rank-aware operators (µ, MPro, HRJN/NRJN) are never placed inside an
//! exchange: they keep their incremental single-threaded top-k semantics
//! *above* it, exactly as the paper's ranking principle requires.
//!
//! **Metrics.** The exchange registers each spine operator exactly once (in
//! plan post-order, like serial lowering) and hands the registered handles to
//! every morsel instance through the execution context's preset-metrics
//! mechanism, so per-operator counters (`rows_out`, `batches_out`, mean
//! batch fill) aggregate across workers and `explain_analyze` reports one
//! truthful row per plan node regardless of parallelism.

use std::collections::BinaryHeap;
use std::sync::Arc;

use ranksql_algebra::{ExchangeMerge, PhysicalOp, PhysicalPlan};
use ranksql_common::{morsel_ranges, RankSqlError, Result, Schema, Score, Tuple, WorkerPool};
use ranksql_expr::{BoolExpr, RankedTuple, RankingContext};
use ranksql_storage::Catalog;

use crate::build::build_operator;
use crate::column_scan::ColumnScan;
use crate::context::{ExecutionContext, TopKThreshold, TupleBudget};
use crate::filter::{Filter, Project};
use crate::join::{build_join_table, extract_join_keys, HashJoin, JoinTable};
use crate::metrics::OperatorMetrics;
use crate::operator::{drain_batched, Batch, BoxedOperator, PhysicalOperator};
use crate::sort_limit::{SortLimitOp, SortOp};

/// A scan over one morsel (contiguous row range) of a snapshotted table.
///
/// All morsel instances share one `Arc` snapshot of the table taken when the
/// exchange was prepared; each instance clones only the tuples of its own
/// range, so the total copy work equals one full scan regardless of morsel
/// count.  The scan updates both the `SeqScan` and the `Repartition` plan
/// nodes' metrics (the repartition node is a transparent marker).
pub(crate) struct MorselScan {
    rows: Arc<Vec<Tuple>>,
    end: usize,
    pos: usize,
    schema: Schema,
    ctx: Arc<RankingContext>,
    scan_metrics: Arc<OperatorMetrics>,
    repart_metrics: Arc<OperatorMetrics>,
    budget: Arc<TupleBudget>,
}

impl MorselScan {
    fn new(
        rows: Arc<Vec<Tuple>>,
        range: (usize, usize),
        schema: Schema,
        scan_label: &str,
        repart_label: &str,
        exec: &ExecutionContext,
    ) -> Self {
        // Two `register` calls in spine order (scan, then repartition): in a
        // preset-metrics instance context these return the shared handles.
        let scan_metrics = exec.register(scan_label.to_owned());
        let repart_metrics = exec.register(repart_label.to_owned());
        MorselScan {
            rows,
            end: range.1,
            pos: range.0,
            schema,
            ctx: exec.ranking_arc(),
            scan_metrics,
            repart_metrics,
            budget: Arc::clone(exec.budget()),
        }
    }
}

impl PhysicalOperator for MorselScan {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn next(&mut self) -> Result<Option<RankedTuple>> {
        if self.pos >= self.end {
            return Ok(None);
        }
        let t = self.rows[self.pos].clone();
        self.pos += 1;
        self.budget.charge(1)?;
        self.scan_metrics.add_in(1);
        self.scan_metrics.add_out(1);
        self.repart_metrics.add_in(1);
        self.repart_metrics.add_out(1);
        Ok(Some(RankedTuple::unranked(t, self.ctx.num_predicates())))
    }

    fn next_batch(&mut self, max: usize, out: &mut Batch) -> Result<usize> {
        let n = max.min(self.end - self.pos);
        if n == 0 {
            return Ok(0);
        }
        let n_preds = self.ctx.num_predicates();
        out.extend(
            self.rows[self.pos..self.pos + n]
                .iter()
                .map(|t| RankedTuple::unranked(t.clone(), n_preds)),
        );
        self.pos += n;
        self.budget.charge(n as u64)?;
        for m in [&self.scan_metrics, &self.repart_metrics] {
            m.add_in(n as u64);
            m.add_out(n as u64);
            m.add_batch();
        }
        Ok(n)
    }
}

/// The resolved, shareable form of an exchange's parallel-safe subtree.
///
/// Prepared once per exchange (table snapshot taken, hash-join build sides
/// drained and hashed, every operator's metrics registered); instantiated
/// once per morsel into a throw-away pipeline of ordinary executor
/// operators.
enum SpineNode {
    /// `Repartition(SeqScan)` — the morsel source.
    Morsel {
        rows: Arc<Vec<Tuple>>,
        schema: Schema,
        scan_label: String,
        repart_label: String,
    },
    /// `Repartition(ColumnScan)` — the columnar morsel source.  All morsel
    /// instances read the one shared [`ColumnTable`] projection; the
    /// optional threshold cell is shared with the per-partition `SortLimit`
    /// instances (see [`SpineNode::threshold_cell`]), so a threshold raised
    /// by any worker prunes blocks for every worker.
    MorselColumnar {
        table: Arc<ranksql_storage::ColumnTable>,
        /// The pinned epoch's frozen delta tail (rows past the sealed
        /// blocks); the morsel space covers sealed rows + tail.
        tail: Arc<Vec<Tuple>>,
        pushed_filter: Option<BoolExpr>,
        cell: Option<Arc<TopKThreshold>>,
        /// Spine-wide prune-dedup bitmap: a block overlapping several
        /// morsels is counted in `blocks_pruned` by the first morsel only.
        pruned_blocks: Arc<Vec<std::sync::atomic::AtomicU64>>,
        scan_label: String,
        repart_label: String,
    },
    /// Selection σ on the spine.
    Filter {
        input: Box<SpineNode>,
        predicate: BoolExpr,
        label: String,
    },
    /// Projection π on the spine.
    Project {
        input: Box<SpineNode>,
        columns: Vec<String>,
        label: String,
    },
    /// Hash-join probe on the spine; the build side was drained once into
    /// the shared read-only table, and the joined schema / probe key columns
    /// / residual condition were extracted once alongside it.
    HashJoin {
        probe: Box<SpineNode>,
        schema: Schema,
        left_key_cols: Vec<usize>,
        residual: Option<BoolExpr>,
        table: Arc<JoinTable>,
        label: String,
    },
    /// Nested-loops join on the spine (the canonical plan's cross product);
    /// the inner relation was materialised once and is shared read-only.
    NestedLoops {
        outer: Box<SpineNode>,
        schema: Schema,
        condition: Option<BoolExpr>,
        right_rows: Arc<Vec<RankedTuple>>,
        label: String,
    },
    /// Per-partition blocking sort (merged by an ordered exchange).
    Sort {
        input: Box<SpineNode>,
        predicates: ranksql_common::BitSet64,
        label: String,
    },
    /// Per-partition top-k sort (merged + re-limited by an ordered
    /// exchange).
    SortLimit {
        input: Box<SpineNode>,
        predicates: ranksql_common::BitSet64,
        k: usize,
        label: String,
    },
}

impl SpineNode {
    /// Rows of the driving table (the morsel space).
    fn base_rows(&self) -> usize {
        match self {
            SpineNode::Morsel { rows, .. } => rows.len(),
            SpineNode::MorselColumnar { table, tail, .. } => table.row_count() + tail.len(),
            SpineNode::Filter { input, .. }
            | SpineNode::Project { input, .. }
            | SpineNode::Sort { input, .. }
            | SpineNode::SortLimit { input, .. } => input.base_rows(),
            SpineNode::HashJoin { probe, .. } => probe.base_rows(),
            SpineNode::NestedLoops { outer, .. } => outer.base_rows(),
        }
    }

    /// The zone-pruning threshold cell of this spine's σ/π chain, if its
    /// driving scan is a zone-pruning columnar scan.
    fn threshold_cell(&self) -> Option<Arc<TopKThreshold>> {
        match self {
            SpineNode::MorselColumnar { cell, .. } => cell.clone(),
            SpineNode::Filter { input, .. } | SpineNode::Project { input, .. } => {
                input.threshold_cell()
            }
            _ => None,
        }
    }

    /// Builds one pipeline instance over the morsel `range`.
    ///
    /// `exec` must be a preset-metrics instance context with a fresh cursor;
    /// the construction below performs `register` calls in exactly the order
    /// [`prepare_spine`] registered the shared handles.
    fn instantiate(&self, range: (usize, usize), exec: &ExecutionContext) -> Result<BoxedOperator> {
        match self {
            SpineNode::Morsel {
                rows,
                schema,
                scan_label,
                repart_label,
            } => Ok(Box::new(MorselScan::new(
                Arc::clone(rows),
                range,
                schema.clone(),
                scan_label,
                repart_label,
                exec,
            ))),
            SpineNode::MorselColumnar {
                table,
                tail,
                pushed_filter,
                cell,
                pruned_blocks,
                scan_label,
                repart_label,
                ..
            } => Ok(Box::new(ColumnScan::for_morsel(
                Arc::clone(table),
                Arc::clone(tail),
                range,
                pushed_filter.as_ref(),
                cell.clone(),
                Arc::clone(pruned_blocks),
                exec,
                scan_label,
                repart_label,
            )?)),
            SpineNode::Filter {
                input,
                predicate,
                label,
            } => {
                let child = input.instantiate(range, exec)?;
                Ok(Box::new(Filter::new(
                    child,
                    predicate,
                    exec,
                    label.clone(),
                )?))
            }
            SpineNode::Project {
                input,
                columns,
                label,
            } => {
                let child = input.instantiate(range, exec)?;
                Ok(Box::new(Project::new(child, columns, exec, label.clone())?))
            }
            SpineNode::HashJoin {
                probe,
                schema,
                left_key_cols,
                residual,
                table,
                label,
            } => {
                let child = probe.instantiate(range, exec)?;
                Ok(Box::new(HashJoin::with_prebuilt(
                    child,
                    schema.clone(),
                    left_key_cols.clone(),
                    residual.as_ref(),
                    Arc::clone(table),
                    exec,
                    label.clone(),
                )?))
            }
            SpineNode::NestedLoops {
                outer,
                schema,
                condition,
                right_rows,
                label,
            } => {
                let child = outer.instantiate(range, exec)?;
                Ok(Box::new(crate::join::NestedLoopJoin::with_prebuilt(
                    child,
                    schema.clone(),
                    condition.as_ref(),
                    Arc::clone(right_rows),
                    exec,
                    label.clone(),
                )?))
            }
            SpineNode::Sort {
                input,
                predicates,
                label,
            } => {
                let child = input.instantiate(range, exec)?;
                Ok(Box::new(SortOp::new(
                    child,
                    *predicates,
                    exec,
                    label.clone(),
                )))
            }
            SpineNode::SortLimit {
                input,
                predicates,
                k,
                label,
            } => {
                let cell = input.threshold_cell();
                let child = input.instantiate(range, exec)?;
                let mut op = SortLimitOp::new(child, *predicates, *k, exec, label.clone());
                // Per-partition top-k instances share the spine's threshold
                // cell with the morsel scans: any partition's k-th best
                // score is a valid global bound (at least k tuples beat it),
                // so cross-worker pruning stays result-preserving.
                if let Some(cell) = cell {
                    op = op.with_threshold(cell);
                }
                Ok(Box::new(op))
            }
        }
    }
}

/// Resolves an exchange's input subtree into a [`SpineNode`], registering
/// every spine operator's metrics (post-order) and collecting the handles
/// morsel instances will reuse.  Hash-join build sides are built and drained
/// here, exactly once, through the ordinary serial `build_operator` path —
/// so a nested (concat) exchange on a build side parallelizes the build.
fn prepare_spine(
    plan: &PhysicalPlan,
    catalog: &Catalog,
    exec: &ExecutionContext,
    handles: &mut Vec<Arc<OperatorMetrics>>,
) -> Result<SpineNode> {
    let label = plan.node_label(Some(exec.ranking()));
    match &plan.op {
        PhysicalOp::Repartition { input } => {
            let PhysicalOp::SeqScan {
                table, columnar, ..
            } = &input.op
            else {
                return Err(RankSqlError::Plan(format!(
                    "Repartition must mark a sequential scan, found `{}`",
                    input.node_label(Some(exec.ranking()))
                )));
            };
            let table = catalog.table(table)?;
            let scan_label = input.node_label(Some(exec.ranking()));
            handles.push(exec.register(scan_label.clone()));
            handles.push(exec.register(label.clone()));
            // The spine resolves against the execution's pinned epoch, so
            // every morsel (and every other access path of this execution)
            // reads the same row-count watermark no matter how many rows
            // writers append while the exchange runs.
            match columnar {
                None => {
                    let epoch = exec.pin_epoch(&table, false);
                    Ok(SpineNode::Morsel {
                        rows: Arc::new(table.scan_prefix(epoch.row_count())),
                        schema: table.schema().clone(),
                        scan_label,
                        repart_label: label,
                    })
                }
                Some(c) => {
                    let epoch = exec.pin_epoch(&table, true);
                    let columnar = Arc::clone(
                        epoch
                            .columnar()
                            .expect("columnar spine requires a columnar epoch"),
                    );
                    let pruned_blocks = ColumnScan::pruned_block_map(&columnar);
                    Ok(SpineNode::MorselColumnar {
                        table: columnar,
                        tail: Arc::clone(epoch.tail()),
                        pushed_filter: c.pushed_filter.clone(),
                        cell: c.zone_prune.then(|| Arc::new(TopKThreshold::new())),
                        pruned_blocks,
                        scan_label,
                        repart_label: label,
                    })
                }
            }
        }
        PhysicalOp::Filter { input, predicate } => {
            let child = prepare_spine(input, catalog, exec, handles)?;
            handles.push(exec.register(label.clone()));
            Ok(SpineNode::Filter {
                input: Box::new(child),
                predicate: predicate.clone(),
                label,
            })
        }
        PhysicalOp::Project { input, columns } => {
            let child = prepare_spine(input, catalog, exec, handles)?;
            handles.push(exec.register(label.clone()));
            Ok(SpineNode::Project {
                input: Box::new(child),
                columns: columns.clone(),
                label,
            })
        }
        PhysicalOp::HashJoin {
            left,
            right,
            condition,
        } => {
            let probe = prepare_spine(left, catalog, exec, handles)?;
            // The build side runs once through the normal serial path (its
            // operators register their own metrics here, keeping global
            // post-order intact).
            let mut build = build_operator(right, catalog, exec)?;
            let build_rows = drain_batched(build.as_mut(), exec.batch_size())?;
            let left_schema = left.schema()?;
            let right_schema = right.schema()?;
            let keys = extract_join_keys(condition.as_ref(), &left_schema, &right_schema);
            if keys.keys.is_empty() {
                return Err(RankSqlError::Execution(
                    "hash join requires at least one equi-join condition".into(),
                ));
            }
            let right_cols: Vec<usize> = keys.keys.iter().map(|&(_, r)| r).collect();
            let metrics = exec.register(label.clone());
            metrics.add_in(build_rows.len() as u64);
            handles.push(metrics);
            let table = Arc::new(build_join_table(build_rows, &right_cols));
            Ok(SpineNode::HashJoin {
                probe: Box::new(probe),
                schema: left_schema.join(&right_schema),
                left_key_cols: keys.keys.iter().map(|&(l, _)| l).collect(),
                residual: keys.residual,
                table,
                label,
            })
        }
        PhysicalOp::NestedLoopsJoin {
            left,
            right,
            condition,
        } => {
            let outer = prepare_spine(left, catalog, exec, handles)?;
            let mut inner = build_operator(right, catalog, exec)?;
            let right_rows = drain_batched(inner.as_mut(), exec.batch_size())?;
            let metrics = exec.register(label.clone());
            metrics.add_in(right_rows.len() as u64);
            handles.push(metrics);
            Ok(SpineNode::NestedLoops {
                outer: Box::new(outer),
                schema: left.schema()?.join(&right.schema()?),
                condition: condition.clone(),
                right_rows: Arc::new(right_rows),
                label,
            })
        }
        PhysicalOp::Sort { input, predicates } => {
            let child = prepare_spine(input, catalog, exec, handles)?;
            handles.push(exec.register(label.clone()));
            Ok(SpineNode::Sort {
                input: Box::new(child),
                predicates: *predicates,
                label,
            })
        }
        PhysicalOp::SortLimit {
            input,
            predicates,
            k,
        } => {
            let child = prepare_spine(input, catalog, exec, handles)?;
            handles.push(exec.register(label.clone()));
            Ok(SpineNode::SortLimit {
                input: Box::new(child),
                predicates: *predicates,
                k: *k,
                label,
            })
        }
        _ => Err(RankSqlError::Plan(format!(
            "operator `{label}` is not parallel-safe under an Exchange"
        ))),
    }
}

/// Deferred fan-out state of an [`ExchangeOp`] (consumed by the first pull).
struct RunState {
    spine: SpineNode,
    handles: Arc<Vec<Arc<OperatorMetrics>>>,
    exec: ExecutionContext,
    merge: ExchangeMerge,
}

/// The gather operator of morsel-driven parallel execution.
///
/// Construction resolves the spine (snapshots the driving table, drains and
/// hashes build sides, registers metrics); the first pull fans the morsels
/// across a [`WorkerPool`] of `ExecutionContext::threads` workers and
/// materialises the deterministically merged output, which subsequent pulls
/// stream out.  A worker error or panic surfaces as the `Err` of the first
/// pull — never a deadlock, never partial results.
pub struct ExchangeOp {
    schema: Schema,
    metrics: Arc<OperatorMetrics>,
    ordered: bool,
    /// Whether the merge re-limits the stream (`Ordered { limit: Some(_) }`):
    /// such an exchange discards tuples beyond the cap (as do the
    /// per-partition top-k sorts feeding it), so it can never be extended.
    limited: bool,
    run: Option<RunState>,
    merged: Option<std::vec::IntoIter<RankedTuple>>,
}

impl ExchangeOp {
    /// Prepares an exchange over `input` (which must be a parallel-safe
    /// spine containing exactly one `Repartition`-marked scan).
    pub fn new(
        input: &PhysicalPlan,
        merge: ExchangeMerge,
        catalog: &Catalog,
        exec: &ExecutionContext,
        label: impl Into<String>,
    ) -> Result<Self> {
        let mut handles = Vec::new();
        let spine = prepare_spine(input, catalog, exec, &mut handles)?;
        let schema = input.schema()?;
        // The exchange's own metrics register last — after the whole
        // subtree — preserving the global post-order pairing.
        let metrics = exec.register(label);
        Ok(ExchangeOp {
            schema,
            metrics,
            ordered: matches!(merge, ExchangeMerge::Ordered { .. }),
            limited: matches!(merge, ExchangeMerge::Ordered { limit: Some(_) }),
            run: Some(RunState {
                spine,
                handles: Arc::new(handles),
                exec: exec.clone(),
                merge,
            }),
            merged: None,
        })
    }

    /// Runs the parallel fan-out if it has not run yet.
    fn execute(&mut self) -> Result<()> {
        if self.merged.is_some() {
            return Ok(());
        }
        let run = self
            .run
            .as_ref()
            .expect("exchange run state present before execution");
        let ranges = morsel_ranges(run.spine.base_rows(), run.exec.morsel_size());
        let pool = WorkerPool::new(run.exec.threads());
        let outputs = pool.run(ranges.len(), |i| {
            let instance = run.exec.with_preset_metrics(Arc::clone(&run.handles));
            let mut op = run.spine.instantiate(ranges[i], &instance)?;
            drain_batched(op.as_mut(), run.exec.batch_size())
        })?;
        let merged: Vec<RankedTuple> = match run.merge {
            ExchangeMerge::Concat => outputs.into_iter().flatten().collect(),
            ExchangeMerge::Ordered { limit } => merge_ordered(outputs, run.exec.ranking(), limit),
        };
        self.metrics.observe_buffered(merged.len() as u64);
        self.run = None;
        self.merged = Some(merged.into_iter());
        Ok(())
    }
}

impl PhysicalOperator for ExchangeOp {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn next(&mut self) -> Result<Option<RankedTuple>> {
        self.execute()?;
        let next = self.merged.as_mut().expect("merged after execute").next();
        if next.is_some() {
            self.metrics.add_out(1);
        }
        Ok(next)
    }

    fn next_batch(&mut self, max: usize, out: &mut Batch) -> Result<usize> {
        self.execute()?;
        let merged = self.merged.as_mut().expect("merged after execute");
        let mut n = 0;
        while n < max {
            match merged.next() {
                Some(t) => {
                    out.push(t);
                    n += 1;
                }
                None => break,
            }
        }
        if n > 0 {
            self.metrics.add_out(n as u64);
            self.metrics.add_batch();
        }
        Ok(n)
    }

    fn is_ranked(&self) -> bool {
        // An ordered merge emits in non-increasing complete-score order; a
        // concat makes no ordering promise of its own.
        self.ordered
    }

    fn can_extend_limit(&self) -> bool {
        // Concat and unlimited ordered merges materialise the *complete*
        // partition outputs — no discard, nothing to raise.  A re-limiting
        // merge (and the per-partition top-k sorts feeding it) discards
        // beyond k, so it cannot be extended after the fact.
        !self.limited
    }

    fn extend_limit(&mut self, _extra: usize) -> bool {
        !self.limited
    }
}

/// One run head inside the k-way merge heap: max-heap on score, ties popped
/// in ascending tuple-id order — the same total order as
/// `RankedTuple::cmp_desc`, so merging per-partition sorted runs reproduces
/// a full serial sort exactly.
struct MergeHead {
    tuple: RankedTuple,
    score: Score,
    run: usize,
}

impl PartialEq for MergeHead {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == std::cmp::Ordering::Equal
    }
}

impl Eq for MergeHead {}

impl PartialOrd for MergeHead {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for MergeHead {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.score
            .cmp(&other.score)
            .then_with(|| other.tuple.tuple.id().cmp(self.tuple.tuple.id()))
    }
}

/// K-way merges rank-sorted runs (each in `cmp_desc` order) into one sorted
/// stream, keeping at most `limit` tuples.
fn merge_ordered(
    runs: Vec<Vec<RankedTuple>>,
    ctx: &Arc<RankingContext>,
    limit: Option<usize>,
) -> Vec<RankedTuple> {
    let cap = limit.unwrap_or(usize::MAX);
    let mut iters: Vec<std::vec::IntoIter<RankedTuple>> =
        runs.into_iter().map(|r| r.into_iter()).collect();
    let mut heap = BinaryHeap::with_capacity(iters.len());
    for (run, iter) in iters.iter_mut().enumerate() {
        if let Some(t) = iter.next() {
            heap.push(MergeHead {
                score: ctx.upper_bound(&t.state),
                tuple: t,
                run,
            });
        }
    }
    let mut out = Vec::new();
    while out.len() < cap {
        let Some(head) = heap.pop() else {
            break;
        };
        if let Some(t) = iters[head.run].next() {
            heap.push(MergeHead {
                score: ctx.upper_bound(&t.state),
                tuple: t,
                run: head.run,
            });
        }
        out.push(head.tuple);
    }
    out
}

/// Serial fallback for a [`Repartition`](PhysicalOp::Repartition) built
/// outside an exchange: a transparent pass-through over the full scan.
pub struct RepartitionPassthrough {
    inner: BoxedOperator,
    schema: Schema,
    metrics: Arc<OperatorMetrics>,
}

impl RepartitionPassthrough {
    /// Wraps the already-built scan.
    pub fn new(inner: BoxedOperator, exec: &ExecutionContext, label: impl Into<String>) -> Self {
        let schema = inner.schema().clone();
        RepartitionPassthrough {
            inner,
            schema,
            metrics: exec.register(label),
        }
    }
}

impl PhysicalOperator for RepartitionPassthrough {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn next(&mut self) -> Result<Option<RankedTuple>> {
        let next = self.inner.next()?;
        if next.is_some() {
            self.metrics.add_in(1);
            self.metrics.add_out(1);
        }
        Ok(next)
    }

    fn next_batch(&mut self, max: usize, out: &mut Batch) -> Result<usize> {
        let n = self.inner.next_batch(max, out)?;
        if n > 0 {
            self.metrics.add_in(n as u64);
            self.metrics.add_out(n as u64);
            self.metrics.add_batch();
        }
        Ok(n)
    }

    fn is_ranked(&self) -> bool {
        self.inner.is_ranked()
    }

    fn can_extend_limit(&self) -> bool {
        self.inner.can_extend_limit()
    }

    fn extend_limit(&mut self, extra: usize) -> bool {
        self.inner.extend_limit(extra)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::execute_physical_plan;
    use ranksql_common::{BitSet64, DataType, Field, Value};
    use ranksql_expr::{CompareOp, RankPredicate, ScalarExpr, ScoringFunction};

    /// Two-table catalog with deterministic pseudo-random content.
    fn setup(rows: usize) -> (Catalog, Arc<RankingContext>) {
        let cat = Catalog::new();
        let r = cat
            .create_table(
                "R",
                ranksql_common::Schema::new(vec![
                    Field::new("a", DataType::Int64),
                    Field::new("p1", DataType::Float64),
                ]),
            )
            .unwrap();
        let s = cat
            .create_table(
                "S",
                ranksql_common::Schema::new(vec![
                    Field::new("a", DataType::Int64),
                    Field::new("p2", DataType::Float64),
                ]),
            )
            .unwrap();
        for i in 0..rows {
            r.insert(vec![
                Value::from((i * 7 % 13) as i64),
                Value::from(((i * 37 % 100) as f64) / 100.0),
            ])
            .unwrap();
            s.insert(vec![
                Value::from((i * 5 % 13) as i64),
                Value::from(((i * 61 % 100) as f64) / 100.0),
            ])
            .unwrap();
        }
        let ctx = RankingContext::new(
            vec![
                RankPredicate::attribute("p1", "R.p1"),
                RankPredicate::attribute("p2", "S.p2"),
            ],
            ScoringFunction::Sum,
        );
        (cat, ctx)
    }

    fn seq_scan(cat: &Catalog, name: &str) -> PhysicalPlan {
        let t = cat.table(name).unwrap();
        PhysicalPlan::unestimated(PhysicalOp::SeqScan {
            table: name.to_owned(),
            schema: t.schema().clone(),
            columnar: None,
        })
    }

    fn repartitioned(scan: PhysicalPlan) -> PhysicalPlan {
        PhysicalPlan::unestimated(PhysicalOp::Repartition {
            input: Box::new(scan),
        })
    }

    /// `Exchange(concat)(Filter(Repartition(SeqScan R)))`.
    fn parallel_filter_plan(cat: &Catalog) -> PhysicalPlan {
        let filter = PhysicalPlan::unestimated(PhysicalOp::Filter {
            input: Box::new(repartitioned(seq_scan(cat, "R"))),
            predicate: BoolExpr::compare(
                ScalarExpr::col("R.p1"),
                CompareOp::GtEq,
                ScalarExpr::lit(0.25),
            ),
        });
        PhysicalPlan::unestimated(PhysicalOp::Exchange {
            input: Box::new(filter),
            merge: ExchangeMerge::Concat,
        })
    }

    /// `Exchange(merge k)(SortLimit(HashJoin(Repartition(SeqScan R), SeqScan S)))`.
    fn parallel_join_topk_plan(cat: &Catalog, k: usize) -> PhysicalPlan {
        let join = PhysicalPlan::unestimated(PhysicalOp::HashJoin {
            left: Box::new(repartitioned(seq_scan(cat, "R"))),
            right: Box::new(seq_scan(cat, "S")),
            condition: Some(BoolExpr::col_eq_col("R.a", "S.a")),
        });
        let topk = PhysicalPlan::unestimated(PhysicalOp::SortLimit {
            input: Box::new(join),
            predicates: BitSet64::all(2),
            k,
        });
        PhysicalPlan::unestimated(PhysicalOp::Exchange {
            input: Box::new(topk),
            merge: ExchangeMerge::Ordered { limit: Some(k) },
        })
    }

    fn ids(tuples: &[RankedTuple]) -> Vec<ranksql_common::TupleId> {
        tuples.iter().map(|t| t.tuple.id().clone()).collect()
    }

    #[test]
    fn concat_exchange_matches_serial_filter_for_every_thread_count() {
        let (cat, ctx) = setup(97);
        // Serial reference: the same pipeline without exchange machinery.
        let serial = PhysicalPlan::unestimated(PhysicalOp::Filter {
            input: Box::new(seq_scan(&cat, "R")),
            predicate: BoolExpr::compare(
                ScalarExpr::col("R.p1"),
                CompareOp::GtEq,
                ScalarExpr::lit(0.25),
            ),
        });
        let exec = ExecutionContext::new(Arc::clone(&ctx)).with_threads(1);
        let want = ids(&execute_physical_plan(&serial, &cat, &exec).unwrap().tuples);
        assert!(!want.is_empty());
        let plan = parallel_filter_plan(&cat);
        for threads in [1, 2, 4, 8] {
            for morsel in [7, 64, 4096] {
                let exec = ExecutionContext::new(Arc::clone(&ctx))
                    .with_threads(threads)
                    .with_morsel_size(morsel);
                let got = execute_physical_plan(&plan, &cat, &exec).unwrap();
                assert_eq!(ids(&got.tuples), want, "threads={threads} morsel={morsel}");
            }
        }
    }

    #[test]
    fn ordered_exchange_matches_serial_top_k_for_every_thread_count() {
        let (cat, ctx) = setup(120);
        let serial = PhysicalPlan::unestimated(PhysicalOp::SortLimit {
            input: Box::new(PhysicalPlan::unestimated(PhysicalOp::HashJoin {
                left: Box::new(seq_scan(&cat, "R")),
                right: Box::new(seq_scan(&cat, "S")),
                condition: Some(BoolExpr::col_eq_col("R.a", "S.a")),
            })),
            predicates: BitSet64::all(2),
            k: 9,
        });
        let exec = ExecutionContext::new(Arc::clone(&ctx)).with_threads(1);
        let want = ids(&execute_physical_plan(&serial, &cat, &exec).unwrap().tuples);
        assert_eq!(want.len(), 9);
        let plan = parallel_join_topk_plan(&cat, 9);
        for threads in [1, 2, 4, 8] {
            for morsel in [11, 4096] {
                let exec = ExecutionContext::new(Arc::clone(&ctx))
                    .with_threads(threads)
                    .with_morsel_size(morsel);
                let got = execute_physical_plan(&plan, &cat, &exec).unwrap();
                assert_eq!(ids(&got.tuples), want, "threads={threads} morsel={morsel}");
            }
        }
    }

    #[test]
    fn exchange_metrics_register_one_entry_per_plan_node() {
        let (cat, ctx) = setup(50);
        let plan = parallel_join_topk_plan(&cat, 5);
        let exec = ExecutionContext::new(Arc::clone(&ctx))
            .with_threads(4)
            .with_morsel_size(8);
        let result = execute_physical_plan(&plan, &cat, &exec).unwrap();
        // One metrics entry per plan node — morsel instances must not add
        // registry entries of their own.
        assert_eq!(result.metrics.len(), plan.node_count());
        // The scan node aggregated all 50 rows across all workers.
        let cards = result.actual_cardinalities();
        assert_eq!(cards[0].0, "SeqScan(R)");
        assert_eq!(cards[0].1, 50);
        // The explain pairing holds: each node carries its actuals.
        let text = plan.explain_with_actuals(Some(&ctx), &result.operator_actuals());
        assert!(text.contains("Exchange(merge; k=5)"), "{text}");
        assert!(text.contains("Repartition(morsels)"), "{text}");
    }

    #[test]
    fn worker_errors_surface_as_clean_query_errors() {
        let (cat, ctx) = setup(60);
        let plan = parallel_filter_plan(&cat);
        // A tuple budget of 10 trips inside the workers.
        let exec = ExecutionContext::with_budget(Arc::clone(&ctx), 10)
            .with_threads(4)
            .with_morsel_size(8);
        let err = execute_physical_plan(&plan, &cat, &exec).unwrap_err();
        assert!(err.to_string().contains("tuple budget exceeded"), "{err}");
        // The catalog and plan are unaffected: a fresh context succeeds.
        let exec = ExecutionContext::new(Arc::clone(&ctx)).with_threads(4);
        assert!(execute_physical_plan(&plan, &cat, &exec).is_ok());
    }

    #[test]
    fn repartition_without_exchange_degrades_to_a_passthrough() {
        let (cat, ctx) = setup(20);
        let plan = repartitioned(seq_scan(&cat, "R"));
        let exec = ExecutionContext::new(Arc::clone(&ctx));
        let result = execute_physical_plan(&plan, &cat, &exec).unwrap();
        assert_eq!(result.tuples.len(), 20);
        assert_eq!(result.metrics.len(), 2);
    }

    #[test]
    fn exchange_rejects_non_parallel_safe_spines() {
        let (cat, ctx) = setup(10);
        // A rank-materialize on the spine is not parallel-safe.
        let bad = PhysicalPlan::unestimated(PhysicalOp::Exchange {
            input: Box::new(PhysicalPlan::unestimated(PhysicalOp::RankMaterialize {
                input: Box::new(repartitioned(seq_scan(&cat, "R"))),
                predicate: 0,
            })),
            merge: ExchangeMerge::Concat,
        });
        let exec = ExecutionContext::new(Arc::clone(&ctx));
        let err = execute_physical_plan(&bad, &cat, &exec).unwrap_err();
        assert!(err.to_string().contains("not parallel-safe"), "{err}");
        // A repartition over something that is not a SeqScan is rejected.
        let bad_scan = PhysicalPlan::unestimated(PhysicalOp::Exchange {
            input: Box::new(repartitioned(PhysicalPlan::unestimated(
                PhysicalOp::RankScan {
                    table: "R".into(),
                    schema: cat.table("R").unwrap().schema().clone(),
                    predicate: 0,
                },
            ))),
            merge: ExchangeMerge::Concat,
        });
        let err = execute_physical_plan(&bad_scan, &cat, &exec).unwrap_err();
        assert!(
            err.to_string().contains("must mark a sequential scan"),
            "{err}"
        );
    }
}
