//! Rank-aware set operators: union, intersection and difference.
//!
//! The rank-relational definitions (Figure 3) require:
//!
//! * `R_{P1} ∪ S_{P2}` / `R_{P1} ∩ S_{P2}` — membership as usual, output
//!   ordered by the *aggregate* order `P1 ∪ P2` (duplicate occurrences of a
//!   tuple contribute their evaluated predicates to one output tuple);
//! * `R_{P1} − S_{P2}` — membership as usual, output ordered by `P1` only.
//!
//! Tuples are identified by their [`TupleId`] (set semantics over
//! provenance), matching Proposition 6's multiple-scan law where both
//! operands range over the same base relation.
//!
//! The intersection is *incremental*: a tuple can be emitted as soon as both
//! of its occurrences have been seen and its merged upper bound dominates the
//! frontier of both inputs — no full materialisation is needed.  Union must
//! in general see both inputs before it can prove a tuple's final aggregate
//! score (a duplicate may still be pending), so it buffers its inputs; the
//! difference materialises only the subtrahend and streams the outer side.

use std::collections::{HashMap, HashSet};
use std::sync::Arc;

use ranksql_common::{Result, Schema, Score, TupleId};
use ranksql_expr::{RankedTuple, RankingContext};

use crate::context::ExecutionContext;
use crate::metrics::OperatorMetrics;
use crate::operator::{Batch, BoxedOperator, PhysicalOperator, RankingQueue};

/// Rank-aware union (set semantics by tuple identity).
pub struct UnionOp {
    left: BoxedOperator,
    right: BoxedOperator,
    schema: Schema,
    ctx: Arc<RankingContext>,
    metrics: Arc<OperatorMetrics>,
    output: Option<std::vec::IntoIter<RankedTuple>>,
    batch_size: usize,
}

impl UnionOp {
    /// Creates a union of two union-compatible inputs.
    pub fn new(
        left: BoxedOperator,
        right: BoxedOperator,
        exec: &ExecutionContext,
        label: impl Into<String>,
    ) -> Self {
        let schema = left.schema().clone();
        UnionOp {
            left,
            right,
            schema,
            ctx: exec.ranking_arc(),
            metrics: exec.register(label),
            output: None,
            batch_size: exec.batch_size(),
        }
    }

    fn prepare(&mut self) -> Result<()> {
        if self.output.is_some() {
            return Ok(());
        }
        let mut merged: HashMap<TupleId, RankedTuple> = HashMap::new();
        let mut order: Vec<TupleId> = Vec::new();
        let mut buf = Batch::with_capacity(self.batch_size);
        for input in [&mut self.left, &mut self.right] {
            loop {
                buf.clear();
                let n = input.next_batch(self.batch_size, &mut buf)?;
                if n == 0 {
                    break;
                }
                self.metrics.add_in(n as u64);
                for rt in buf.drain(..) {
                    match merged.get_mut(rt.tuple.id()) {
                        Some(existing) => {
                            existing.state = existing.state.merge(&rt.state);
                        }
                        None => {
                            order.push(rt.tuple.id().clone());
                            merged.insert(rt.tuple.id().clone(), rt);
                        }
                    }
                }
            }
        }
        let mut rows: Vec<RankedTuple> = order
            .into_iter()
            .map(|id| merged.remove(&id).expect("inserted above"))
            .collect();
        let ctx = Arc::clone(&self.ctx);
        rows.sort_by(|a, b| ctx.cmp_desc(a, b));
        self.metrics.observe_buffered(rows.len() as u64);
        self.output = Some(rows.into_iter());
        Ok(())
    }
}

impl PhysicalOperator for UnionOp {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn next(&mut self) -> Result<Option<RankedTuple>> {
        self.prepare()?;
        let next = self.output.as_mut().expect("prepared").next();
        if next.is_some() {
            self.metrics.add_out(1);
        }
        Ok(next)
    }

    fn next_batch(&mut self, max: usize, out: &mut Batch) -> Result<usize> {
        self.prepare()?;
        let output = self.output.as_mut().expect("prepared");
        let mut n = 0;
        while n < max {
            match output.next() {
                Some(t) => {
                    out.push(t);
                    n += 1;
                }
                None => break,
            }
        }
        if n > 0 {
            self.metrics.add_out(n as u64);
            self.metrics.add_batch();
        }
        Ok(n)
    }

    fn can_extend_limit(&self) -> bool {
        self.left.can_extend_limit() && self.right.can_extend_limit()
    }

    fn extend_limit(&mut self, extra: usize) -> bool {
        // Both inputs are fully merged into the output buffer — no discard.
        self.left.extend_limit(extra) & self.right.extend_limit(extra)
    }
}

/// Rank-aware, incremental intersection.
///
/// A tuple appears in the output once both inputs have produced it; its score
/// state is the merge of the two occurrences (aggregate order `P1 ∪ P2`).
/// The head of the buffer can be emitted as soon as its merged upper bound is
/// at least the frontier bound of both inputs, because any *future* match
/// must involve a tuple one of the inputs has not yet produced, whose bound
/// cannot exceed that input's frontier.
pub struct IntersectOp {
    left: BoxedOperator,
    right: BoxedOperator,
    schema: Schema,
    ctx: Arc<RankingContext>,
    metrics: Arc<OperatorMetrics>,
    /// Tuples seen on exactly one side so far, by identity.
    pending_left: HashMap<TupleId, RankedTuple>,
    pending_right: HashMap<TupleId, RankedTuple>,
    /// Matched tuples waiting for emission.
    output: RankingQueue,
    left_bound: Score,
    right_bound: Score,
    left_exhausted: bool,
    right_exhausted: bool,
    left_ranked: bool,
    right_ranked: bool,
    turn_left: bool,
}

impl IntersectOp {
    /// Creates an intersection of two union-compatible inputs.
    pub fn new(
        left: BoxedOperator,
        right: BoxedOperator,
        exec: &ExecutionContext,
        label: impl Into<String>,
    ) -> Self {
        let ctx = exec.ranking_arc();
        let metrics = exec.register(label);
        let schema = left.schema().clone();
        let initial = ctx.initial_upper_bound();
        let left_ranked = left.is_ranked();
        let right_ranked = right.is_ranked();
        IntersectOp {
            left,
            right,
            schema,
            output: RankingQueue::new(Arc::clone(&ctx)),
            ctx,
            metrics,
            pending_left: HashMap::new(),
            pending_right: HashMap::new(),
            left_bound: initial,
            right_bound: initial,
            left_exhausted: false,
            right_exhausted: false,
            left_ranked,
            right_ranked,
            turn_left: true,
        }
    }

    fn frontier(&self) -> Score {
        let l = if self.left_exhausted {
            Score::new(f64::NEG_INFINITY)
        } else if !self.left_ranked {
            self.ctx.initial_upper_bound()
        } else {
            self.left_bound
        };
        let r = if self.right_exhausted {
            Score::new(f64::NEG_INFINITY)
        } else if !self.right_ranked {
            self.ctx.initial_upper_bound()
        } else {
            self.right_bound
        };
        l.max(r)
    }

    fn advance(&mut self, from_left: bool) -> Result<()> {
        let next = if from_left {
            self.left.next()?
        } else {
            self.right.next()?
        };
        match next {
            None => {
                if from_left {
                    self.left_exhausted = true;
                } else {
                    self.right_exhausted = true;
                }
            }
            Some(rt) => {
                self.metrics.add_in(1);
                let bound = self.ctx.upper_bound(&rt.state);
                let (own_pending, other_pending) = if from_left {
                    self.left_bound = bound;
                    (&mut self.pending_left, &mut self.pending_right)
                } else {
                    self.right_bound = bound;
                    (&mut self.pending_right, &mut self.pending_left)
                };
                if let Some(other) = other_pending.remove(rt.tuple.id()) {
                    let merged = RankedTuple::new(rt.tuple, rt.state.merge(&other.state));
                    self.output.push(merged);
                } else {
                    own_pending.insert(rt.tuple.id().clone(), rt);
                }
                self.metrics.observe_buffered(
                    (self.pending_left.len() + self.pending_right.len() + self.output.len()) as u64,
                );
            }
        }
        Ok(())
    }
}

impl PhysicalOperator for IntersectOp {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn next(&mut self) -> Result<Option<RankedTuple>> {
        loop {
            let both_done = self.left_exhausted && self.right_exhausted;
            if let Some(best) = self.output.peek_score() {
                if both_done || best >= self.frontier() {
                    let t = self.output.pop().expect("non-empty");
                    self.metrics.add_out(1);
                    return Ok(Some(t));
                }
            } else if both_done {
                return Ok(None);
            }
            // Pull from the side with the higher frontier (it is the one
            // blocking emission); alternate on ties.
            let from_left = if self.left_exhausted {
                false
            } else if self.right_exhausted || self.left_bound > self.right_bound {
                true
            } else if self.right_bound > self.left_bound {
                false
            } else {
                self.turn_left = !self.turn_left;
                self.turn_left
            };
            self.advance(from_left)?;
        }
    }

    fn next_batch(&mut self, max: usize, out: &mut Batch) -> Result<usize> {
        // Incremental rank-aware operator: the tuple-at-a-time adapter keeps
        // the emission threshold exact — only batch accounting is added.
        let mut n = 0;
        while n < max {
            match self.next()? {
                Some(t) => {
                    out.push(t);
                    n += 1;
                }
                None => break,
            }
        }
        if n > 0 {
            self.metrics.add_batch();
        }
        Ok(n)
    }

    fn can_extend_limit(&self) -> bool {
        self.left.can_extend_limit() && self.right.can_extend_limit()
    }

    fn extend_limit(&mut self, extra: usize) -> bool {
        // Incremental: drawn tuples are buffered, never discarded.
        self.left.extend_limit(extra) & self.right.extend_limit(extra)
    }
}

/// Rank-aware difference: `R_{P1} − S_{P2}` keeps the outer input's order and
/// membership minus the subtrahend's members.  The subtrahend must be fully
/// consumed (membership cannot be decided earlier), the outer side streams.
pub struct ExceptOp {
    left: BoxedOperator,
    right: Option<BoxedOperator>,
    excluded: Option<HashSet<TupleId>>,
    schema: Schema,
    metrics: Arc<OperatorMetrics>,
    batch_size: usize,
    /// Scratch buffer for batched left-side pulls (fully consumed per call).
    in_buf: Batch,
}

impl ExceptOp {
    /// Creates a difference (left minus right).
    pub fn new(
        left: BoxedOperator,
        right: BoxedOperator,
        exec: &ExecutionContext,
        label: impl Into<String>,
    ) -> Self {
        let schema = left.schema().clone();
        ExceptOp {
            left,
            right: Some(right),
            excluded: None,
            schema,
            metrics: exec.register(label),
            batch_size: exec.batch_size(),
            in_buf: Batch::new(),
        }
    }

    fn ensure_excluded(&mut self) -> Result<()> {
        if self.excluded.is_none() {
            let mut right = self.right.take().expect("right present");
            let mut set = HashSet::new();
            let mut buf = Batch::with_capacity(self.batch_size);
            loop {
                buf.clear();
                let n = right.next_batch(self.batch_size, &mut buf)?;
                if n == 0 {
                    break;
                }
                self.metrics.add_in(n as u64);
                for rt in buf.drain(..) {
                    set.insert(rt.tuple.id().clone());
                }
            }
            self.excluded = Some(set);
        }
        Ok(())
    }
}

impl PhysicalOperator for ExceptOp {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn next(&mut self) -> Result<Option<RankedTuple>> {
        self.ensure_excluded()?;
        while let Some(rt) = self.left.next()? {
            self.metrics.add_in(1);
            if !self
                .excluded
                .as_ref()
                .expect("built")
                .contains(rt.tuple.id())
            {
                self.metrics.add_out(1);
                return Ok(Some(rt));
            }
        }
        Ok(None)
    }

    fn next_batch(&mut self, max: usize, out: &mut Batch) -> Result<usize> {
        self.ensure_excluded()?;
        let mut produced = 0;
        let mut pulled = 0u64;
        while produced < max {
            self.in_buf.clear();
            let n = self.left.next_batch(max - produced, &mut self.in_buf)?;
            if n == 0 {
                break;
            }
            pulled += n as u64;
            let excluded = self.excluded.as_ref().expect("built");
            for rt in self.in_buf.drain(..) {
                if !excluded.contains(rt.tuple.id()) {
                    out.push(rt);
                    produced += 1;
                }
            }
        }
        self.metrics.add_in(pulled);
        if produced > 0 {
            self.metrics.add_out(produced as u64);
            self.metrics.add_batch();
        }
        Ok(produced)
    }

    fn is_ranked(&self) -> bool {
        self.left.is_ranked()
    }

    fn can_extend_limit(&self) -> bool {
        self.left.can_extend_limit() && self.right.as_ref().is_none_or(|r| r.can_extend_limit())
    }

    fn extend_limit(&mut self, extra: usize) -> bool {
        // The subtrahend is (or will be) fully drained into the exclusion
        // set; only the streaming outer side matters for extension.
        self.left.extend_limit(extra) & self.right.as_mut().is_none_or(|r| r.extend_limit(extra))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::operator::{check_rank_order, drain, take};
    use crate::rank::RankOp;
    use crate::scan::{RankScan, SeqScan};
    use ranksql_common::{DataType, Field, Value};
    use ranksql_expr::{RankPredicate, ScoringFunction};
    use ranksql_storage::{ScoreIndex, Table, TableBuilder};

    /// One shared base relation R with two ranking predicates p1, p2 —
    /// the multiple-scan scenario of Proposition 6 and Figure 2(a).
    fn table_r() -> Arc<Table> {
        let schema = Schema::new(vec![
            Field::new("a", DataType::Int64),
            Field::new("b", DataType::Int64),
            Field::new("p1", DataType::Float64),
            Field::new("p2", DataType::Float64),
        ])
        .qualify_all("R");
        let rows = [(1, 2, 0.9, 0.65), (2, 3, 0.8, 0.5), (3, 4, 0.7, 0.7)];
        Arc::new(
            TableBuilder::new("R", schema)
                .rows(rows.iter().map(|&(a, b, p1, p2)| {
                    vec![
                        Value::from(a),
                        Value::from(b),
                        Value::from(p1),
                        Value::from(p2),
                    ]
                }))
                .build(0)
                .unwrap(),
        )
    }

    fn ctx_r() -> Arc<RankingContext> {
        RankingContext::new(
            vec![
                RankPredicate::attribute("p1", "R.p1"),
                RankPredicate::attribute("p2", "R.p2"),
            ],
            ScoringFunction::Sum,
        )
    }

    fn rank_scan(
        t: &Arc<Table>,
        pred: usize,
        exec: &ExecutionContext,
        name: &str,
    ) -> BoxedOperator {
        let idx = Arc::new(
            ScoreIndex::build(exec.ranking().predicate(pred), t.schema(), &t.scan()).unwrap(),
        );
        Box::new(RankScan::new(Arc::clone(t), idx, pred, exec, name).unwrap())
    }

    #[test]
    fn intersection_implements_the_multiple_scan_law() {
        // Proposition 6: µ_{p1}(µ_{p2}(R)) ≡ µ_{p1}(R) ∩ µ_{p2}(R).
        // Left-hand side via two µ over a seq-scan; right-hand side via two
        // rank-scans merged by the incremental intersection.
        let t = table_r();
        let ctx_lhs = ctx_r();
        let exec_lhs = ExecutionContext::new(Arc::clone(&ctx_lhs));
        let scan = SeqScan::new(&t, &exec_lhs, "seq");
        let mu2 = RankOp::new(Box::new(scan), 1, &exec_lhs, "mu_p2");
        let mut lhs = RankOp::new(Box::new(mu2), 0, &exec_lhs, "mu_p1");

        let ctx_rhs = ctx_r();
        let exec_rhs = ExecutionContext::new(Arc::clone(&ctx_rhs));
        let left = rank_scan(&t, 0, &exec_rhs, "rs_p1");
        let right = rank_scan(&t, 1, &exec_rhs, "rs_p2");
        let mut rhs = IntersectOp::new(left, right, &exec_rhs, "intersect");

        let a = drain(&mut lhs).unwrap();
        let b = drain(&mut rhs).unwrap();
        assert_eq!(a.len(), 3);
        assert_eq!(b.len(), 3);
        for (x, y) in a.iter().zip(b.iter()) {
            assert_eq!(x.tuple.id(), y.tuple.id());
            assert_eq!(ctx_lhs.upper_bound(&x.state), ctx_rhs.upper_bound(&y.state));
        }
        // Figure 4(a): final order r1 (1.55), r3 (1.4), r2 (1.3).
        assert_eq!(ctx_rhs.upper_bound(&b[0].state), Score::new(1.55));
        assert_eq!(ctx_rhs.upper_bound(&b[1].state), Score::new(1.4));
        assert_eq!(ctx_rhs.upper_bound(&b[2].state), Score::new(1.3));
    }

    #[test]
    fn intersection_is_incremental_for_top_1() {
        // A relation where one tuple dominates both predicates by a wide
        // margin: the incremental intersection must find it without draining
        // either input.
        let schema = Schema::new(vec![
            Field::new("a", DataType::Int64),
            Field::new("p1", DataType::Float64),
            Field::new("p2", DataType::Float64),
        ])
        .qualify_all("W");
        let mut builder = TableBuilder::new("W", schema);
        builder = builder.row(vec![Value::from(0), Value::from(0.99), Value::from(0.98)]);
        for i in 1..50i64 {
            let low = 0.5 - (i as f64) / 200.0;
            builder = builder.row(vec![Value::from(i), Value::from(low), Value::from(low)]);
        }
        let t = Arc::new(builder.build(3).unwrap());
        let ctx = RankingContext::new(
            vec![
                RankPredicate::attribute("p1", "W.p1"),
                RankPredicate::attribute("p2", "W.p2"),
            ],
            ScoringFunction::Sum,
        );
        let exec = ExecutionContext::new(Arc::clone(&ctx));
        let left = rank_scan(&t, 0, &exec, "rs_p1");
        let right = rank_scan(&t, 1, &exec, "rs_p2");
        let mut op = IntersectOp::new(left, right, &exec, "intersect");
        let top = take(&mut op, 1).unwrap();
        assert_eq!(ctx.upper_bound(&top[0].state), Score::new(0.99 + 0.98));
        let pulled: u64 = exec
            .metrics()
            .snapshot()
            .iter()
            .filter(|m| m.name().starts_with("rs_"))
            .map(|m| m.tuples_out())
            .sum();
        assert!(
            pulled < 20,
            "intersection pulled {pulled} of 100 available tuples for a top-1 query"
        );
    }

    #[test]
    fn union_merges_duplicate_scores_and_orders_by_aggregate() {
        // Figure 4(d): R_{p1} ∪ R'_{p2} where the duplicates (r1/r1', r3/r2')
        // combine their evaluated predicates.  We model R' = the same base
        // table scanned by p2 so identities coincide for all three tuples;
        // the aggregate order is then the final F1 order of Figure 4(a).
        let t = table_r();
        let ctx = ctx_r();
        let exec = ExecutionContext::new(Arc::clone(&ctx));
        let left = rank_scan(&t, 0, &exec, "rs_p1");
        let right = rank_scan(&t, 1, &exec, "rs_p2");
        let mut op = UnionOp::new(left, right, &exec, "union");
        let out = drain(&mut op).unwrap();
        assert_eq!(out.len(), 3);
        assert_eq!(check_rank_order(&out, &ctx), None);
        let scores: Vec<f64> = out
            .iter()
            .map(|t| ctx.upper_bound(&t.state).value())
            .collect();
        assert!((scores[0] - 1.55).abs() < 1e-9);
        assert!((scores[1] - 1.4).abs() < 1e-9);
        assert!((scores[2] - 1.3).abs() < 1e-9);
    }

    #[test]
    fn union_keeps_tuples_present_on_only_one_side() {
        let t = table_r();
        let ctx = ctx_r();
        let exec = ExecutionContext::new(Arc::clone(&ctx));
        // Left: only tuples with a >= 2 (r2, r3); right: all three.
        let left_inner = rank_scan(&t, 0, &exec, "rs_p1");
        let filter = crate::filter::Filter::new(
            left_inner,
            &ranksql_expr::BoolExpr::compare(
                ranksql_expr::ScalarExpr::col("R.a"),
                ranksql_expr::CompareOp::GtEq,
                ranksql_expr::ScalarExpr::lit(2),
            ),
            &exec,
            "filter",
        )
        .unwrap();
        let right = rank_scan(&t, 1, &exec, "rs_p2");
        let mut op = UnionOp::new(Box::new(filter), right, &exec, "union");
        let out = drain(&mut op).unwrap();
        assert_eq!(out.len(), 3);
        // r1 was only on the right, so only p2 is evaluated for it.
        let r1 = out
            .iter()
            .find(|t| t.tuple.value(0) == &Value::from(1))
            .unwrap();
        assert!(!r1.state.is_evaluated(0));
        assert!(r1.state.is_evaluated(1));
    }

    #[test]
    fn except_keeps_outer_order_and_removes_matches() {
        // Figure 4(e): R_{p1} − R'_{p2} where R' misses r2 → result is {r2}
        // in the order of P1.  Model R' as a filtered scan excluding a = 2.
        let t = table_r();
        let ctx = ctx_r();
        let exec = ExecutionContext::new(Arc::clone(&ctx));
        let left = rank_scan(&t, 0, &exec, "rs_p1");
        let right_inner = rank_scan(&t, 1, &exec, "rs_p2");
        let right = crate::filter::Filter::new(
            right_inner,
            &ranksql_expr::BoolExpr::compare(
                ranksql_expr::ScalarExpr::col("R.a"),
                ranksql_expr::CompareOp::NotEq,
                ranksql_expr::ScalarExpr::lit(2),
            ),
            &exec,
            "filter",
        )
        .unwrap();
        let mut op = ExceptOp::new(left, Box::new(right), &exec, "except");
        let out = drain(&mut op).unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].tuple.value(0), &Value::from(2));
        // Ordered by P1 only: the upper bound reflects p1 = 0.8 → 1.8.
        assert_eq!(ctx.upper_bound(&out[0].state), Score::new(1.8));
        assert!(!out[0].state.is_evaluated(1));
    }

    #[test]
    fn intersect_with_disjoint_inputs_is_empty() {
        let t = table_r();
        let ctx = ctx_r();
        let exec = ExecutionContext::new(Arc::clone(&ctx));
        let left_inner = rank_scan(&t, 0, &exec, "rs_p1");
        let left = crate::filter::Filter::new(
            left_inner,
            &ranksql_expr::BoolExpr::compare(
                ranksql_expr::ScalarExpr::col("R.a"),
                ranksql_expr::CompareOp::Lt,
                ranksql_expr::ScalarExpr::lit(2),
            ),
            &exec,
            "f1",
        )
        .unwrap();
        let right_inner = rank_scan(&t, 1, &exec, "rs_p2");
        let right = crate::filter::Filter::new(
            right_inner,
            &ranksql_expr::BoolExpr::compare(
                ranksql_expr::ScalarExpr::col("R.a"),
                ranksql_expr::CompareOp::GtEq,
                ranksql_expr::ScalarExpr::lit(2),
            ),
            &exec,
            "f2",
        )
        .unwrap();
        let mut op = IntersectOp::new(Box::new(left), Box::new(right), &exec, "intersect");
        assert!(drain(&mut op).unwrap().is_empty());
    }
}
