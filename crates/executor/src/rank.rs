//! The rank operator µ (physical implementation).

use std::sync::Arc;

use ranksql_common::{Result, Schema, Score};
use ranksql_expr::{RankedTuple, RankingContext};

use crate::context::ExecutionContext;
use crate::metrics::OperatorMetrics;
use crate::operator::{Batch, BoxedOperator, PhysicalOperator, RankingQueue};

/// The physical rank operator µ_p (Section 4.1 / Example 3).
///
/// The input arrives in non-increasing order of `F_P[t]`.  For each input
/// tuple, µ evaluates the additional predicate `p`, obtaining `F_{P∪{p}}[t]`,
/// and buffers the tuple in a *ranking queue* (priority queue).  The queue
/// head can be emitted as soon as its score is at least the upper bound of
/// every *future* input tuple — which is the `F_P` bound of the most recently
/// drawn input tuple, because the input stream is ordered.  This makes µ
/// incremental and selective: it emits only as many tuples as its consumer
/// requests and never re-orders retroactively.
pub struct RankOp {
    input: BoxedOperator,
    predicate: usize,
    schema: Schema,
    ctx: Arc<RankingContext>,
    metrics: Arc<OperatorMetrics>,
    queue: RankingQueue,
    /// Upper bound (`F_P`) of any tuple the input may still produce.
    input_bound: Score,
    input_exhausted: bool,
    /// Whether the input honours the rank-ordering contract; if it does not
    /// (e.g. a traditional join), µ only emits after exhausting it, which is
    /// still correct — just not incremental.
    input_ranked: bool,
}

impl RankOp {
    /// Creates a µ operator evaluating context predicate `predicate`.
    pub fn new(
        input: BoxedOperator,
        predicate: usize,
        exec: &ExecutionContext,
        label: impl Into<String>,
    ) -> Self {
        let ctx = exec.ranking_arc();
        let metrics = exec.register(label);
        let schema = input.schema().clone();
        let initial_bound = ctx.initial_upper_bound();
        let input_ranked = input.is_ranked();
        RankOp {
            input,
            predicate,
            schema,
            queue: RankingQueue::new(Arc::clone(&ctx)),
            ctx,
            metrics,
            input_bound: initial_bound,
            input_exhausted: false,
            input_ranked,
        }
    }
}

impl PhysicalOperator for RankOp {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn next(&mut self) -> Result<Option<RankedTuple>> {
        loop {
            // Emit the queue head if it can no longer be beaten by future
            // input.
            if !self.queue.is_empty() {
                let can_emit = if self.input_exhausted {
                    true
                } else if !self.input_ranked {
                    false
                } else {
                    self.queue.peek_score().expect("non-empty queue") >= self.input_bound
                };
                if can_emit {
                    let t = self.queue.pop().expect("non-empty queue");
                    self.metrics.add_out(1);
                    return Ok(Some(t));
                }
            } else if self.input_exhausted {
                return Ok(None);
            }

            // Otherwise draw one more input tuple.
            match self.input.next()? {
                Some(mut rt) => {
                    self.metrics.add_in(1);
                    // The child's emission order bound — any future child
                    // tuple is no better than this.
                    self.input_bound = self.ctx.upper_bound(&rt.state);
                    if !rt.state.is_evaluated(self.predicate) {
                        self.ctx.evaluate_into(
                            self.predicate,
                            &rt.tuple,
                            &self.schema,
                            &mut rt.state,
                        )?;
                    }
                    self.queue.push(rt);
                    self.metrics.observe_buffered(self.queue.len() as u64);
                }
                None => {
                    self.input_exhausted = true;
                }
            }
        }
    }

    fn next_batch(&mut self, max: usize, out: &mut Batch) -> Result<usize> {
        // Incremental rank-aware operator: keep the tuple-at-a-time loop so
        // µ never draws more input than `max` emissions require; the batch
        // only adds chunked hand-off (and batch accounting) upstream.
        let mut n = 0;
        while n < max {
            match self.next()? {
                Some(t) => {
                    out.push(t);
                    n += 1;
                }
                None => break,
            }
        }
        if n > 0 {
            self.metrics.add_batch();
        }
        Ok(n)
    }

    fn can_extend_limit(&self) -> bool {
        self.input.can_extend_limit()
    }

    fn extend_limit(&mut self, extra: usize) -> bool {
        // µ buffers but never discards: everything still unemitted sits in
        // the ranking queue, so extension is just a matter of the input.
        self.input.extend_limit(extra)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::operator::{check_rank_order, drain, take};
    use crate::scan::{RankScan, SeqScan};
    use ranksql_common::{DataType, Field, Value};
    use ranksql_expr::{RankPredicate, ScoringFunction};
    use ranksql_storage::{ScoreIndex, Table, TableBuilder};

    /// Relation S of Figure 2(c) with ranking predicates p3, p4, p5.
    fn table_s() -> Arc<Table> {
        let schema = Schema::new(vec![
            Field::new("a", DataType::Int64),
            Field::new("c", DataType::Int64),
            Field::new("p3", DataType::Float64),
            Field::new("p4", DataType::Float64),
            Field::new("p5", DataType::Float64),
        ])
        .qualify_all("S");
        let rows = [
            (4, 3, 0.7, 0.8, 0.9),
            (1, 1, 0.9, 0.85, 0.8),
            (1, 2, 0.5, 0.45, 0.75),
            (4, 2, 0.4, 0.7, 0.95),
            (5, 1, 0.3, 0.9, 0.6),
            (2, 3, 0.25, 0.45, 0.9),
        ];
        Arc::new(
            TableBuilder::new("S", schema)
                .rows(rows.iter().map(|&(a, c, p3, p4, p5)| {
                    vec![
                        Value::from(a),
                        Value::from(c),
                        Value::from(p3),
                        Value::from(p4),
                        Value::from(p5),
                    ]
                }))
                .build(0)
                .unwrap(),
        )
    }

    fn ctx_s() -> Arc<RankingContext> {
        RankingContext::new(
            vec![
                RankPredicate::attribute("p3", "S.p3"),
                RankPredicate::attribute("p4", "S.p4"),
                RankPredicate::attribute("p5", "S.p5"),
            ],
            ScoringFunction::Sum,
        )
    }

    /// Builds the plan of Figure 6(b): µ_{p5}(µ_{p4}(idxScan_{p3}(S))).
    fn figure6b_plan(t: &Arc<Table>, exec: &ExecutionContext) -> RankOp {
        let idx = Arc::new(
            ScoreIndex::build(exec.ranking().predicate(0), t.schema(), &t.scan()).unwrap(),
        );
        let scan = RankScan::new(Arc::clone(t), idx, 0, exec, "idxScan_p3(S)").unwrap();
        let mu_p4 = RankOp::new(Box::new(scan), 1, exec, "mu_p4");
        RankOp::new(Box::new(mu_p4), 2, exec, "mu_p5")
    }

    #[test]
    fn figure6b_top1_is_s2_with_score_2_55() {
        // Example 3: top-1 of `SELECT * FROM S ORDER BY p3+p4+p5 LIMIT 1`
        // is s2 with final score 2.55.
        let t = table_s();
        let ctx = ctx_s();
        let exec = ExecutionContext::new(Arc::clone(&ctx));
        let mut plan = figure6b_plan(&t, &exec);
        let top = take(&mut plan, 1).unwrap();
        assert_eq!(top.len(), 1);
        assert_eq!(top[0].tuple.value(0), &Value::from(1));
        assert_eq!(top[0].tuple.value(1), &Value::from(1));
        assert_eq!(ctx.upper_bound(&top[0].state), Score::new(2.55));
        assert!(top[0].state.is_complete());
    }

    #[test]
    fn figure6b_processes_only_a_prefix_of_the_table() {
        // The paper's trace: µ_{p4} processes 3 tuples (s2, s1, s3) and
        // µ_{p5} processes 2 (s2, s1) to produce the top-1 answer; only 3 of
        // the 6 tuples are read from the scan.
        let t = table_s();
        let ctx = ctx_s();
        let exec = ExecutionContext::new(Arc::clone(&ctx));
        let mut plan = figure6b_plan(&t, &exec);
        let _ = take(&mut plan, 1).unwrap();
        let m = exec.metrics().snapshot();
        let by_name = |n: &str| m.iter().find(|x| x.name() == n).unwrap().clone();
        assert_eq!(by_name("idxScan_p3(S)").tuples_out(), 3);
        assert_eq!(by_name("mu_p4").tuples_in(), 3);
        assert_eq!(by_name("mu_p5").tuples_in(), 2);
        assert_eq!(by_name("mu_p5").tuples_out(), 1);
        // Predicate evaluation counts match Example 4's analysis for plan (b):
        // 3 evaluations of p4 and 2 of p5 (p3 comes from the index).
        assert_eq!(ctx.counters().count(0), 0);
        assert_eq!(ctx.counters().count(1), 3);
        assert_eq!(ctx.counters().count(2), 2);
    }

    #[test]
    fn full_drain_is_in_final_score_order() {
        let t = table_s();
        let ctx = ctx_s();
        let exec = ExecutionContext::new(Arc::clone(&ctx));
        let mut plan = figure6b_plan(&t, &exec);
        let all = drain(&mut plan).unwrap();
        assert_eq!(all.len(), 6);
        assert_eq!(check_rank_order(&all, &ctx), None);
        // Final order of Figure 6(a)'s sorted relation:
        // s2 (2.55), s1 (2.4), s4 (2.05), s5 (1.8), s3 (1.7), s6 (1.6).
        let scores: Vec<f64> = all
            .iter()
            .map(|t| ctx.upper_bound(&t.state).value())
            .collect();
        let expected = [2.55, 2.4, 2.05, 1.8, 1.7, 1.6];
        for (s, e) in scores.iter().zip(expected.iter()) {
            assert!((s - e).abs() < 1e-9, "scores {scores:?} != {expected:?}");
        }
    }

    #[test]
    fn figure6c_reversed_mu_order_gives_same_results_different_work() {
        // Plan (c) applies µ_{p5} before µ_{p4}; results identical, but the
        // number of tuples processed differs (selectivities are
        // context-sensitive, Section 4.1).
        let t = table_s();
        let exec_b = ExecutionContext::new(ctx_s());
        let exec_c = ExecutionContext::new(ctx_s());

        let mut plan_b = figure6b_plan(&t, &exec_b);
        let idx = Arc::new(
            ScoreIndex::build(exec_c.ranking().predicate(0), t.schema(), &t.scan()).unwrap(),
        );
        let scan = RankScan::new(Arc::clone(&t), idx, 0, &exec_c, "idxScan_p3(S)").unwrap();
        let mu_p5 = RankOp::new(Box::new(scan), 2, &exec_c, "mu_p5");
        let mut plan_c = RankOp::new(Box::new(mu_p5), 1, &exec_c, "mu_p4");

        let top_b = take(&mut plan_b, 1).unwrap();
        let top_c = take(&mut plan_c, 1).unwrap();
        assert_eq!(top_b[0].tuple.id(), top_c[0].tuple.id());
        // Figure 6(c): the scan feeds 5 tuples in plan (c) vs 3 in plan (b).
        let scanned_b = exec_b.metrics().snapshot()[0].tuples_out();
        let scanned_c = exec_c.metrics().snapshot()[0].tuples_out();
        assert_eq!(scanned_b, 3);
        assert_eq!(scanned_c, 5);
    }

    #[test]
    fn rank_over_seq_scan_is_correct_but_blocking() {
        let t = table_s();
        let ctx = ctx_s();
        let exec = ExecutionContext::new(Arc::clone(&ctx));
        let scan = SeqScan::new(&t, &exec, "seqscan");
        let mu = RankOp::new(Box::new(scan), 0, &exec, "mu_p3");
        let mu2 = RankOp::new(Box::new(mu), 1, &exec, "mu_p4");
        let mut mu3 = RankOp::new(Box::new(mu2), 2, &exec, "mu_p5");
        let top = take(&mut mu3, 2).unwrap();
        assert_eq!(ctx.upper_bound(&top[0].state), Score::new(2.55));
        assert_eq!(ctx.upper_bound(&top[1].state), Score::new(2.4));
        // All 6 tuples had to be read by the first µ (the input is unordered
        // in the ranking sense), demonstrating why rank-scans matter.
        assert_eq!(exec.metrics().snapshot()[0].tuples_out(), 6);
    }

    #[test]
    fn duplicate_rank_operator_is_idempotent() {
        let t = table_s();
        let ctx = ctx_s();
        let exec = ExecutionContext::new(Arc::clone(&ctx));
        let scan = SeqScan::new(&t, &exec, "seqscan");
        let mu = RankOp::new(Box::new(scan), 0, &exec, "mu_p3");
        let mut mu_again = RankOp::new(Box::new(mu), 0, &exec, "mu_p3'");
        let all = drain(&mut mu_again).unwrap();
        assert_eq!(all.len(), 6);
        // p3 evaluated once per tuple, not twice.
        assert_eq!(ctx.counters().count(0), 6);
    }

    #[test]
    fn empty_input_yields_empty_output() {
        let schema = Schema::new(vec![Field::new("p", DataType::Float64)]).qualify_all("E");
        let empty = Arc::new(TableBuilder::new("E", schema).build(9).unwrap());
        let ctx = RankingContext::new(
            vec![RankPredicate::attribute("p", "E.p")],
            ScoringFunction::Sum,
        );
        let exec = ExecutionContext::new(ctx);
        let scan = SeqScan::new(&empty, &exec, "scan");
        let mut mu = RankOp::new(Box::new(scan), 0, &exec, "mu");
        assert!(mu.next().unwrap().is_none());
        assert!(mu.next().unwrap().is_none());
    }
}
