//! The MPro-style multi-predicate rank operator (minimal probing).
//!
//! The paper notes (Section 4.2) that the physical µ operator "is a special
//! case (because it schedules one predicate) of the algorithms (MPro \[4\],
//! Upper \[2\]) for scheduling random object accesses in middleware top-k
//! query evaluation".  This module supplies the general case: a single operator
//! that is responsible for a *set* of ranking predicates and probes them
//! lazily, one predicate of one tuple at a time, only when that probe is
//! *necessary* for deciding the next output.
//!
//! A chain `µ_{p_j}(… µ_{p_1}(input))` evaluates `p_1` for every tuple that
//! reaches the first stage, `p_2` for every tuple that leaves it, and so on.
//! [`MProOp`] produces exactly the same rank-relation (same membership, same
//! order by `F_{P ∪ {p_1..p_j}}`), but a predicate of a tuple is evaluated
//! only when the tuple sits at the head of the ranking queue and could be
//! emitted next — the minimal-probing principle of Chang & Hwang (SIGMOD'02).
//! For small `k` this usually performs fewer predicate evaluations than the
//! equivalent µ chain (never more than once per tuple and predicate), at the
//! cost of a single shared priority queue.  The counts are not always
//! strictly lower: the chain's inner µ operators emit against tighter bounds
//! than the shared queue's raw input bound, which occasionally saves the
//! chain a probe near the stopping point.

use std::sync::Arc;

use ranksql_common::{Result, Schema, Score};
use ranksql_expr::{RankedTuple, RankingContext};

use crate::context::ExecutionContext;
use crate::metrics::OperatorMetrics;
use crate::operator::{Batch, BoxedOperator, PhysicalOperator, RankingQueue};

/// A multi-predicate rank operator with minimal-probing scheduling.
///
/// `MProOp::new(input, vec![p4, p5], …)` is algebraically equivalent to
/// `µ_{p5}(µ_{p4}(input))`: it emits the same tuples in the same order
/// (non-increasing `F_{P ∪ {p4, p5}}`), but decides *per tuple* when each
/// predicate is worth evaluating.
pub struct MProOp {
    input: BoxedOperator,
    /// The predicates this operator is responsible for, in probe order.
    schedule: Vec<usize>,
    schema: Schema,
    ctx: Arc<RankingContext>,
    metrics: Arc<OperatorMetrics>,
    queue: RankingQueue,
    /// Upper bound (`F_P`) of any tuple the input may still produce.
    input_bound: Score,
    input_exhausted: bool,
    /// Whether the input honours the rank-ordering contract; if not, the
    /// operator must exhaust it before emitting (correct but blocking).
    input_ranked: bool,
    /// Number of predicate probes performed (exposed for tests/benches).
    probes: u64,
}

impl MProOp {
    /// Creates an MPro operator evaluating the context predicates listed in
    /// `schedule` (probed per tuple in that order).
    pub fn new(
        input: BoxedOperator,
        schedule: Vec<usize>,
        exec: &ExecutionContext,
        label: impl Into<String>,
    ) -> Self {
        let ctx = exec.ranking_arc();
        let metrics = exec.register(label);
        let schema = input.schema().clone();
        let initial_bound = ctx.initial_upper_bound();
        let input_ranked = input.is_ranked();
        MProOp {
            input,
            schedule,
            schema,
            queue: RankingQueue::new(Arc::clone(&ctx)),
            ctx,
            metrics,
            input_bound: initial_bound,
            input_exhausted: false,
            input_ranked,
            probes: 0,
        }
    }

    /// A schedule ordered by ascending predicate cost (cheap probes first),
    /// the classical MPro heuristic when per-predicate selectivities are
    /// unknown.
    pub fn cost_ascending_schedule(ctx: &RankingContext, predicates: &[usize]) -> Vec<usize> {
        let mut s = predicates.to_vec();
        s.sort_by_key(|&p| ctx.predicate(p).cost);
        s
    }

    /// Number of predicate probes performed so far.
    pub fn probes(&self) -> u64 {
        self.probes
    }

    /// The first predicate of `schedule` the tuple has not evaluated yet.
    fn next_unevaluated(&self, t: &RankedTuple) -> Option<usize> {
        self.schedule
            .iter()
            .copied()
            .find(|&p| !t.state.is_evaluated(p))
    }

    /// Whether the queue head is allowed to surface (emit or probe) now,
    /// i.e. no *future* input tuple can beat it.
    fn head_surfaces(&self, head_score: Score) -> bool {
        if self.input_exhausted {
            true
        } else if !self.input_ranked {
            false
        } else {
            head_score >= self.input_bound
        }
    }
}

impl PhysicalOperator for MProOp {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn next(&mut self) -> Result<Option<RankedTuple>> {
        loop {
            if let Some(head_score) = self.queue.peek_score() {
                if self.head_surfaces(head_score) {
                    let mut t = self.queue.pop().expect("non-empty queue");
                    match self.next_unevaluated(&t) {
                        // Fully probed and unbeatable: this is the next output.
                        None => {
                            self.metrics.add_out(1);
                            return Ok(Some(t));
                        }
                        // The probe of `p` on this tuple is *necessary*: the
                        // tuple cannot be emitted or discarded without it.
                        Some(p) => {
                            self.ctx
                                .evaluate_into(p, &t.tuple, &self.schema, &mut t.state)?;
                            self.probes += 1;
                            self.queue.push(t);
                            self.metrics.observe_buffered(self.queue.len() as u64);
                            continue;
                        }
                    }
                }
            } else if self.input_exhausted {
                return Ok(None);
            }

            // The head (if any) may still be beaten by future input: draw one
            // more input tuple.
            match self.input.next()? {
                Some(rt) => {
                    self.metrics.add_in(1);
                    self.input_bound = self.ctx.upper_bound(&rt.state);
                    self.queue.push(rt);
                    self.metrics.observe_buffered(self.queue.len() as u64);
                }
                None => {
                    self.input_exhausted = true;
                }
            }
        }
    }

    fn next_batch(&mut self, max: usize, out: &mut Batch) -> Result<usize> {
        // Minimal probing is inherently tuple-at-a-time: batching the loop
        // would not change which probes are necessary, so only the hand-off
        // (and batch accounting) is chunked.
        let mut n = 0;
        while n < max {
            match self.next()? {
                Some(t) => {
                    out.push(t);
                    n += 1;
                }
                None => break,
            }
        }
        if n > 0 {
            self.metrics.add_batch();
        }
        Ok(n)
    }

    fn can_extend_limit(&self) -> bool {
        self.input.can_extend_limit()
    }

    fn extend_limit(&mut self, extra: usize) -> bool {
        // MPro buffers but never discards; extension only concerns the input.
        self.input.extend_limit(extra)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::operator::{check_rank_order, drain, take};
    use crate::rank::RankOp;
    use crate::scan::{RankScan, SeqScan};
    use ranksql_common::{DataType, Field, Value};
    use ranksql_expr::{RankPredicate, ScoringFunction};
    use ranksql_storage::{ScoreIndex, Table, TableBuilder};

    /// Relation S of Figure 2(c).
    fn table_s() -> Arc<Table> {
        let schema = Schema::new(vec![
            Field::new("a", DataType::Int64),
            Field::new("c", DataType::Int64),
            Field::new("p3", DataType::Float64),
            Field::new("p4", DataType::Float64),
            Field::new("p5", DataType::Float64),
        ])
        .qualify_all("S");
        let rows = [
            (4, 3, 0.7, 0.8, 0.9),
            (1, 1, 0.9, 0.85, 0.8),
            (1, 2, 0.5, 0.45, 0.75),
            (4, 2, 0.4, 0.7, 0.95),
            (5, 1, 0.3, 0.9, 0.6),
            (2, 3, 0.25, 0.45, 0.9),
        ];
        Arc::new(
            TableBuilder::new("S", schema)
                .rows(rows.iter().map(|&(a, c, p3, p4, p5)| {
                    vec![
                        Value::from(a),
                        Value::from(c),
                        Value::from(p3),
                        Value::from(p4),
                        Value::from(p5),
                    ]
                }))
                .build(0)
                .unwrap(),
        )
    }

    fn ctx_s() -> Arc<RankingContext> {
        RankingContext::new(
            vec![
                RankPredicate::attribute("p3", "S.p3"),
                RankPredicate::attribute("p4", "S.p4"),
                RankPredicate::attribute("p5", "S.p5"),
            ],
            ScoringFunction::Sum,
        )
    }

    fn rank_scan_p3(t: &Arc<Table>, exec: &ExecutionContext) -> RankScan {
        let idx = Arc::new(
            ScoreIndex::build(exec.ranking().predicate(0), t.schema(), &t.scan()).unwrap(),
        );
        RankScan::new(Arc::clone(t), idx, 0, exec, "idxScan_p3(S)").unwrap()
    }

    #[test]
    fn top1_matches_example3() {
        // Example 3: top-1 of `ORDER BY p3+p4+p5` over S is s2, score 2.55.
        let t = table_s();
        let ctx = ctx_s();
        let exec = ExecutionContext::new(Arc::clone(&ctx));
        let scan = rank_scan_p3(&t, &exec);
        let mut mpro = MProOp::new(Box::new(scan), vec![1, 2], &exec, "mpro");
        let top = take(&mut mpro, 1).unwrap();
        assert_eq!(top.len(), 1);
        assert_eq!(top[0].tuple.value(0), &Value::from(1));
        assert_eq!(top[0].tuple.value(1), &Value::from(1));
        assert_eq!(ctx.upper_bound(&top[0].state), Score::new(2.55));
        assert!(top[0].state.is_complete());
    }

    #[test]
    fn minimal_probing_beats_the_mu_chain_for_top1() {
        // The Figure 6(b) chain evaluates p4 three times and p5 twice (five
        // probes) for the top-1 answer; MPro needs only three probes
        // (p4 on s2 and s1, p5 on s2).
        let t = table_s();

        let ctx_chain = ctx_s();
        let exec = ExecutionContext::new(Arc::clone(&ctx_chain));
        let scan = rank_scan_p3(&t, &exec);
        let mu_p4 = RankOp::new(Box::new(scan), 1, &exec, "mu_p4");
        let mut mu_p5 = RankOp::new(Box::new(mu_p4), 2, &exec, "mu_p5");
        let _ = take(&mut mu_p5, 1).unwrap();
        let chain_probes = ctx_chain.counters().count(1) + ctx_chain.counters().count(2);

        let ctx_mpro = ctx_s();
        let exec2 = ExecutionContext::new(Arc::clone(&ctx_mpro));
        let scan2 = rank_scan_p3(&t, &exec2);
        let mut mpro = MProOp::new(Box::new(scan2), vec![1, 2], &exec2, "mpro");
        let _ = take(&mut mpro, 1).unwrap();
        let mpro_probes = ctx_mpro.counters().count(1) + ctx_mpro.counters().count(2);

        assert_eq!(chain_probes, 5);
        assert_eq!(mpro_probes, 3);
        assert_eq!(mpro.probes(), 3);
        assert!(mpro_probes < chain_probes);
    }

    #[test]
    fn full_drain_matches_the_mu_chain_order() {
        // Same rank-relation as the chain: membership and order identical.
        let t = table_s();
        let ctx = ctx_s();
        let exec = ExecutionContext::new(Arc::clone(&ctx));
        let scan = rank_scan_p3(&t, &exec);
        let mut mpro = MProOp::new(Box::new(scan), vec![1, 2], &exec, "mpro");
        let all = drain(&mut mpro).unwrap();
        assert_eq!(all.len(), 6);
        assert_eq!(check_rank_order(&all, &ctx), None);
        let scores: Vec<f64> = all
            .iter()
            .map(|t| ctx.upper_bound(&t.state).value())
            .collect();
        let expected = [2.55, 2.4, 2.05, 1.8, 1.7, 1.6];
        for (s, e) in scores.iter().zip(expected.iter()) {
            assert!((s - e).abs() < 1e-9, "scores {scores:?} != {expected:?}");
        }
    }

    #[test]
    fn empty_schedule_is_a_pass_through() {
        let t = table_s();
        let ctx = ctx_s();
        let exec = ExecutionContext::new(Arc::clone(&ctx));
        let scan = rank_scan_p3(&t, &exec);
        let mut mpro = MProOp::new(Box::new(scan), vec![], &exec, "mpro");
        let all = drain(&mut mpro).unwrap();
        assert_eq!(all.len(), 6);
        // No probes at all: p4, p5 never evaluated.
        assert_eq!(ctx.counters().count(1), 0);
        assert_eq!(ctx.counters().count(2), 0);
        assert_eq!(mpro.probes(), 0);
        // Order is by F_{p3} (the input order).
        assert_eq!(check_rank_order(&all, &ctx), None);
    }

    #[test]
    fn unranked_input_is_correct_but_blocking() {
        let t = table_s();
        let ctx = ctx_s();
        let exec = ExecutionContext::new(Arc::clone(&ctx));
        let scan = SeqScan::new(&t, &exec, "seqscan");
        let mut mpro = MProOp::new(Box::new(scan), vec![0, 1, 2], &exec, "mpro");
        let top = take(&mut mpro, 2).unwrap();
        assert_eq!(ctx.upper_bound(&top[0].state), Score::new(2.55));
        assert_eq!(ctx.upper_bound(&top[1].state), Score::new(2.4));
        // The whole table had to be read before the first emission.
        assert_eq!(exec.metrics().snapshot()[0].tuples_out(), 6);
    }

    #[test]
    fn cost_ascending_schedule_orders_by_cost() {
        let ctx = RankingContext::new(
            vec![
                RankPredicate::attribute_with_cost("a", "S.p3", 50),
                RankPredicate::attribute_with_cost("b", "S.p4", 5),
                RankPredicate::attribute_with_cost("c", "S.p5", 20),
            ],
            ScoringFunction::Sum,
        );
        assert_eq!(
            MProOp::cost_ascending_schedule(&ctx, &[0, 1, 2]),
            vec![1, 2, 0]
        );
        assert_eq!(MProOp::cost_ascending_schedule(&ctx, &[2, 0]), vec![2, 0]);
    }

    #[test]
    fn probe_counts_never_exceed_the_chain_on_any_k() {
        // For every k, MPro's probe count is at most the chain's.
        for k in 1..=6 {
            let t = table_s();

            let ctx_chain = ctx_s();
            let exec = ExecutionContext::new(Arc::clone(&ctx_chain));
            let scan = rank_scan_p3(&t, &exec);
            let mu_p4 = RankOp::new(Box::new(scan), 1, &exec, "mu_p4");
            let mut mu_p5 = RankOp::new(Box::new(mu_p4), 2, &exec, "mu_p5");
            let chain = take(&mut mu_p5, k).unwrap();
            let chain_probes = ctx_chain.counters().total();

            let ctx_mpro = ctx_s();
            let exec2 = ExecutionContext::new(Arc::clone(&ctx_mpro));
            let scan2 = rank_scan_p3(&t, &exec2);
            let mut mpro = MProOp::new(Box::new(scan2), vec![1, 2], &exec2, "mpro");
            let got = take(&mut mpro, k).unwrap();
            let mpro_probes = ctx_mpro.counters().total();

            assert_eq!(chain.len(), got.len(), "k = {k}");
            for (c, g) in chain.iter().zip(got.iter()) {
                assert_eq!(c.tuple.id(), g.tuple.id(), "k = {k}");
            }
            assert!(
                mpro_probes <= chain_probes,
                "k = {k}: MPro probed {mpro_probes} times, chain {chain_probes}"
            );
        }
    }
}
