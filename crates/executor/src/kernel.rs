//! Branch-free columnar comparison kernels.
//!
//! These are the hot inner loops of the columnar scan's pushed-down filter
//! (`crates/executor/src/column_scan.rs`): compare a typed column slice
//! against a constant and produce / refine a selection vector of matching
//! row numbers.  They are written the way rustc auto-vectorizes best:
//!
//! * the operator is matched **once**, outside the loop, so every loop body
//!   is a monomorphic comparison closure;
//! * comparisons run over fixed-width chunks ([`SELECT_LANES`] lanes) of a
//!   dense slice, filling a flag array — a shape LLVM turns into SIMD
//!   compares;
//! * selected row numbers are written **branch-free**: the candidate index
//!   is stored unconditionally and the output cursor advances by the flag
//!   (`sel[n] = row; n += keep as usize`), so the loop carries no
//!   data-dependent branch for the predictor to miss on.
//!
//! Floating-point kernels implement the engine's *total order*
//! ([`ranksql_storage::cmp_f64_total`]): `NaN == NaN`, `NaN` sorts greater
//! than every number, and `-0.0 == 0.0`.  For a non-NaN constant that
//! collapses to native comparisons plus an `x.is_nan()` OR-term on `Gt` /
//! `GtEq`; a NaN constant degenerates to constant-or-NaN-test kernels.
//! The unit tests pin every operator against the `cmp_f64_total` oracle.

use ranksql_expr::CompareOp;

/// Lanes per fixed-width chunk of the select kernels.  64 flags fit two
/// cache lines and give the auto-vectorizer full vectors at every width
/// the MSRV targets.
pub const SELECT_LANES: usize = 64;

/// Appends `base + i` to `sel` for every lane `i` of `vals` where `keep`
/// holds, using chunked compares and branch-free select writes.
#[inline]
fn select_into<T: Copy>(
    vals: &[T],
    base: u32,
    sel: &mut Vec<u32>,
    keep: impl Fn(T) -> bool + Copy,
) {
    let start = sel.len();
    // Reserve the worst case up front so the pack loop stores without
    // capacity checks; truncated back to the real count below.
    sel.resize(start + vals.len(), 0);
    let mut n = start;
    let mut row = base;
    let mut flags = [false; SELECT_LANES];
    let mut chunks = vals.chunks_exact(SELECT_LANES);
    for chunk in &mut chunks {
        // Compare phase: monomorphic, no side effects — vectorizable.
        for (f, &v) in flags.iter_mut().zip(chunk) {
            *f = keep(v);
        }
        // Pack phase: branch-free select writes.
        for (i, &f) in flags.iter().enumerate() {
            sel[n] = row + i as u32;
            n += f as usize;
        }
        row += SELECT_LANES as u32;
    }
    for (i, &v) in chunks.remainder().iter().enumerate() {
        sel[n] = row + i as u32;
        n += keep(v) as usize;
    }
    sel.truncate(n);
}

/// Keeps in `sel` only the rows whose value passes `keep`, compacting in
/// place with the same branch-free cursor advance as [`select_into`].
/// `sel` holds table-absolute row numbers; `vals` is the slice starting at
/// row `base` (a sealed block), so each row indexes at `row - base`.
#[inline]
fn refine_sel<T: Copy>(vals: &[T], base: u32, sel: &mut Vec<u32>, keep: impl Fn(T) -> bool + Copy) {
    let mut n = 0usize;
    for i in 0..sel.len() {
        let row = sel[i];
        sel[n] = row;
        n += keep(vals[(row - base) as usize]) as usize;
    }
    sel.truncate(n);
}

/// `Int64` column vs `Int64` constant: appends matching rows of `vals`
/// (numbered from `base`) to `sel`.
#[inline]
pub fn select_i64(vals: &[i64], base: u32, sel: &mut Vec<u32>, op: CompareOp, rhs: i64) {
    match op {
        CompareOp::Eq => select_into(vals, base, sel, move |x| x == rhs),
        CompareOp::NotEq => select_into(vals, base, sel, move |x| x != rhs),
        CompareOp::Lt => select_into(vals, base, sel, move |x| x < rhs),
        CompareOp::LtEq => select_into(vals, base, sel, move |x| x <= rhs),
        CompareOp::Gt => select_into(vals, base, sel, move |x| x > rhs),
        CompareOp::GtEq => select_into(vals, base, sel, move |x| x >= rhs),
    }
}

/// `Int64` column vs `Int64` constant: refines `sel` in place (`vals`
/// starts at row `base`; `sel` rows are table-absolute).
#[inline]
pub fn refine_i64(vals: &[i64], base: u32, sel: &mut Vec<u32>, op: CompareOp, rhs: i64) {
    match op {
        CompareOp::Eq => refine_sel(vals, base, sel, move |x| x == rhs),
        CompareOp::NotEq => refine_sel(vals, base, sel, move |x| x != rhs),
        CompareOp::Lt => refine_sel(vals, base, sel, move |x| x < rhs),
        CompareOp::LtEq => refine_sel(vals, base, sel, move |x| x <= rhs),
        CompareOp::Gt => refine_sel(vals, base, sel, move |x| x > rhs),
        CompareOp::GtEq => refine_sel(vals, base, sel, move |x| x >= rhs),
    }
}

/// Runs `action` with the branch-free total-order keep-closure for
/// `x OP rhs` under `cmp_f64_total` semantics.  `to_f64` lifts the slice's
/// element type (identity for `f64`, a monotone cast for `i64`).
macro_rules! with_f64_total_kernel {
    ($op:expr, $rhs:expr, $to_f64:expr, |$keep:ident| $action:expr) => {{
        let rhs: f64 = $rhs;
        let to = $to_f64;
        if rhs.is_nan() {
            // In the total order NaN equals NaN and exceeds every number.
            match $op {
                CompareOp::Eq | CompareOp::GtEq => {
                    let $keep = move |x| to(x).is_nan();
                    $action
                }
                CompareOp::NotEq | CompareOp::Lt => {
                    let $keep = move |x| !to(x).is_nan();
                    $action
                }
                CompareOp::LtEq => {
                    let $keep = move |_x| true;
                    $action
                }
                CompareOp::Gt => {
                    let $keep = move |_x| false;
                    $action
                }
            }
        } else {
            match $op {
                CompareOp::Eq => {
                    let $keep = move |x| to(x) == rhs;
                    $action
                }
                CompareOp::NotEq => {
                    let $keep = move |x| to(x) != rhs;
                    $action
                }
                CompareOp::Lt => {
                    let $keep = move |x| to(x) < rhs;
                    $action
                }
                CompareOp::LtEq => {
                    let $keep = move |x| to(x) <= rhs;
                    $action
                }
                CompareOp::Gt => {
                    let $keep = move |x| {
                        let v = to(x);
                        v > rhs || v.is_nan()
                    };
                    $action
                }
                CompareOp::GtEq => {
                    let $keep = move |x| {
                        let v = to(x);
                        v >= rhs || v.is_nan()
                    };
                    $action
                }
            }
        }
    }};
}

/// `Float64` column vs numeric constant under the engine's total order:
/// appends matching rows of `vals` (numbered from `base`) to `sel`.
#[inline]
pub fn select_f64(vals: &[f64], base: u32, sel: &mut Vec<u32>, op: CompareOp, rhs: f64) {
    with_f64_total_kernel!(op, rhs, |x: f64| x, |keep| select_into(
        vals, base, sel, keep
    ))
}

/// `Float64` column vs numeric constant: refines `sel` in place (`vals`
/// starts at row `base`; `sel` rows are table-absolute).
#[inline]
pub fn refine_f64(vals: &[f64], base: u32, sel: &mut Vec<u32>, op: CompareOp, rhs: f64) {
    with_f64_total_kernel!(op, rhs, |x: f64| x, |keep| refine_sel(
        vals, base, sel, keep
    ))
}

/// `Int64` column vs `Float64` constant (compared as `f64`, the engine's
/// cross-type semantics): appends matching rows to `sel`.
#[inline]
pub fn select_i64_as_f64(vals: &[i64], base: u32, sel: &mut Vec<u32>, op: CompareOp, rhs: f64) {
    with_f64_total_kernel!(op, rhs, |x: i64| x as f64, |keep| select_into(
        vals, base, sel, keep
    ))
}

/// `Int64` column vs `Float64` constant: refines `sel` in place (`vals`
/// starts at row `base`; `sel` rows are table-absolute).
#[inline]
pub fn refine_i64_as_f64(vals: &[i64], base: u32, sel: &mut Vec<u32>, op: CompareOp, rhs: f64) {
    with_f64_total_kernel!(op, rhs, |x: i64| x as f64, |keep| refine_sel(
        vals, base, sel, keep
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ranksql_storage::cmp_f64_total;
    use std::cmp::Ordering;

    const OPS: [CompareOp; 6] = [
        CompareOp::Eq,
        CompareOp::NotEq,
        CompareOp::Lt,
        CompareOp::LtEq,
        CompareOp::Gt,
        CompareOp::GtEq,
    ];

    fn op_matches(op: CompareOp, ord: Ordering) -> bool {
        match op {
            CompareOp::Eq => ord == Ordering::Equal,
            CompareOp::NotEq => ord != Ordering::Equal,
            CompareOp::Lt => ord == Ordering::Less,
            CompareOp::LtEq => ord != Ordering::Greater,
            CompareOp::Gt => ord == Ordering::Greater,
            CompareOp::GtEq => ord != Ordering::Less,
        }
    }

    #[test]
    fn i64_kernels_match_the_branchy_oracle() {
        let vals: Vec<i64> = (0..200).map(|i| (i * 37) % 50).collect();
        for op in OPS {
            for rhs in [-1i64, 0, 25, 49, 100] {
                let mut got = vec![7u32]; // pre-existing content is kept
                select_i64(&vals, 10, &mut got, op, rhs);
                let mut want = vec![7u32];
                for (i, &v) in vals.iter().enumerate() {
                    if op_matches(op, v.cmp(&rhs)) {
                        want.push(10 + i as u32);
                    }
                }
                assert_eq!(got, want, "select op {op:?} rhs {rhs}");

                // Refine against a block starting at row 10: sel carries
                // table-absolute rows, the kernel rebases into the slice.
                let mut sel: Vec<u32> = (10..10 + vals.len() as u32).step_by(3).collect();
                let oracle: Vec<u32> = sel
                    .iter()
                    .copied()
                    .filter(|&r| op_matches(op, vals[(r - 10) as usize].cmp(&rhs)))
                    .collect();
                refine_i64(&vals, 10, &mut sel, op, rhs);
                assert_eq!(sel, oracle, "refine op {op:?} rhs {rhs}");
            }
        }
    }

    #[test]
    fn f64_kernels_match_cmp_f64_total_including_nan_and_signed_zero() {
        let vals: Vec<f64> = vec![
            0.0,
            -0.0,
            1.5,
            -3.25,
            f64::NAN,
            f64::INFINITY,
            f64::NEG_INFINITY,
            0.5,
            f64::NAN,
            2.0,
        ];
        for op in OPS {
            for rhs in [0.0, -0.0, 0.5, f64::NAN, f64::INFINITY, -10.0] {
                let mut got = Vec::new();
                select_f64(&vals, 0, &mut got, op, rhs);
                let want: Vec<u32> = vals
                    .iter()
                    .enumerate()
                    .filter(|(_, &v)| op_matches(op, cmp_f64_total(v, rhs)))
                    .map(|(i, _)| i as u32)
                    .collect();
                assert_eq!(got, want, "select op {op:?} rhs {rhs}");

                let mut sel: Vec<u32> = (0..vals.len() as u32).collect();
                refine_f64(&vals, 0, &mut sel, op, rhs);
                assert_eq!(sel, want, "refine op {op:?} rhs {rhs}");
            }
        }
    }

    #[test]
    fn i64_as_f64_kernels_match_the_cast_oracle() {
        let vals: Vec<i64> = (-100..100).map(|i| i * 3).collect();
        for op in OPS {
            for rhs in [0.5, -0.0, 150.0, f64::NAN] {
                let mut got = Vec::new();
                select_i64_as_f64(&vals, 0, &mut got, op, rhs);
                let want: Vec<u32> = vals
                    .iter()
                    .enumerate()
                    .filter(|(_, &v)| op_matches(op, cmp_f64_total(v as f64, rhs)))
                    .map(|(i, _)| i as u32)
                    .collect();
                assert_eq!(got, want, "select op {op:?} rhs {rhs}");

                let mut sel: Vec<u32> = (0..vals.len() as u32).rev().collect();
                let oracle: Vec<u32> = sel
                    .iter()
                    .copied()
                    .filter(|&r| op_matches(op, cmp_f64_total(vals[r as usize] as f64, rhs)))
                    .collect();
                refine_i64_as_f64(&vals, 0, &mut sel, op, rhs);
                assert_eq!(sel, oracle, "refine op {op:?} rhs {rhs}");
            }
        }
    }

    #[test]
    fn chunk_boundaries_are_handled() {
        // Lengths straddling the lane width exercise the remainder path.
        for len in [0usize, 1, 63, 64, 65, 128, 200] {
            let vals: Vec<i64> = (0..len as i64).collect();
            let mut sel = Vec::new();
            select_i64(&vals, 0, &mut sel, CompareOp::GtEq, 0);
            assert_eq!(sel.len(), len);
            assert!(sel.iter().enumerate().all(|(i, &r)| r == i as u32));
        }
    }
}
