//! The traditional blocking sort (τ) and the top-k limit (λ).

use std::sync::Arc;

use ranksql_common::{BitSet64, Result, Schema};
use ranksql_expr::{RankedTuple, RankingContext};

use crate::context::{ExecutionContext, TopKThreshold};
use crate::metrics::OperatorMetrics;
use crate::operator::{Batch, BoxedOperator, PhysicalOperator};

/// The monolithic sort operator τ_F of the canonical plan: drains its input
/// completely, evaluates every still-missing ranking predicate of
/// `predicates` on every tuple, sorts by the (now complete) score and emits.
///
/// This is the operator the paper's *materialise-then-sort* scheme relies on;
/// its cost is independent of `k`, the first result appears only after the
/// whole input is consumed, and every predicate is evaluated on every tuple —
/// the three problems rank-aware plans avoid.
pub struct SortOp {
    input: BoxedOperator,
    predicates: BitSet64,
    schema: Schema,
    ctx: Arc<RankingContext>,
    metrics: Arc<OperatorMetrics>,
    sorted: Option<std::vec::IntoIter<RankedTuple>>,
    batch_size: usize,
}

impl SortOp {
    /// Creates a sort over `predicates` (the scoring function's predicates).
    pub fn new(
        input: BoxedOperator,
        predicates: BitSet64,
        exec: &ExecutionContext,
        label: impl Into<String>,
    ) -> Self {
        let schema = input.schema().clone();
        SortOp {
            input,
            predicates,
            schema,
            ctx: exec.ranking_arc(),
            metrics: exec.register(label),
            sorted: None,
            batch_size: exec.batch_size(),
        }
    }

    fn prepare(&mut self) -> Result<()> {
        if self.sorted.is_some() {
            return Ok(());
        }
        let mut rows = Vec::new();
        let mut buf = Batch::with_capacity(self.batch_size);
        loop {
            buf.clear();
            let n = self.input.next_batch(self.batch_size, &mut buf)?;
            if n == 0 {
                break;
            }
            self.metrics.add_in(n as u64);
            for mut rt in buf.drain(..) {
                for p in self.predicates.iter() {
                    if !rt.state.is_evaluated(p) {
                        self.ctx
                            .evaluate_into(p, &rt.tuple, &self.schema, &mut rt.state)?;
                    }
                }
                rows.push(rt);
            }
        }
        // Context-aware comparator: identical to `cmp_desc` under the
        // global predicate maximum, and consistent with the capped bounds
        // the rest of the pipeline uses when zone-map caps are installed.
        let ctx = Arc::clone(&self.ctx);
        rows.sort_by(|a, b| ctx.cmp_desc(a, b));
        self.metrics.observe_buffered(rows.len() as u64);
        self.sorted = Some(rows.into_iter());
        Ok(())
    }
}

impl PhysicalOperator for SortOp {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn next(&mut self) -> Result<Option<RankedTuple>> {
        self.prepare()?;
        let next = self.sorted.as_mut().expect("sorted after prepare").next();
        if next.is_some() {
            self.metrics.add_out(1);
        }
        Ok(next)
    }

    fn next_batch(&mut self, max: usize, out: &mut Batch) -> Result<usize> {
        self.prepare()?;
        let sorted = self.sorted.as_mut().expect("sorted after prepare");
        let mut n = 0;
        while n < max {
            match sorted.next() {
                Some(t) => {
                    out.push(t);
                    n += 1;
                }
                None => break,
            }
        }
        if n > 0 {
            self.metrics.add_out(n as u64);
            self.metrics.add_batch();
        }
        Ok(n)
    }

    fn can_extend_limit(&self) -> bool {
        // A full sort materialises *everything* — nothing is discarded, so
        // no cap exists here; before materialisation defer to the input.
        self.sorted.is_some() || self.input.can_extend_limit()
    }

    fn extend_limit(&mut self, extra: usize) -> bool {
        if self.sorted.is_none() {
            self.input.extend_limit(extra)
        } else {
            true
        }
    }
}

/// One buffered tuple of [`SortLimitOp`], ordered so that the heap maximum
/// is the tuple that sorts *last* under [`RankedTuple::cmp_desc`] — i.e. the
/// current worst of the kept top-k.
struct TopKEntry {
    tuple: RankedTuple,
    score: ranksql_common::Score,
}

impl PartialEq for TopKEntry {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == std::cmp::Ordering::Equal
    }
}

impl Eq for TopKEntry {}

impl PartialOrd for TopKEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for TopKEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Mirrors `cmp_desc`: higher score sorts first, ties broken by
        // ascending tuple id — so `Greater` means "sorts later" (worse).
        other
            .score
            .cmp(&self.score)
            .then_with(|| self.tuple.tuple.id().cmp(other.tuple.tuple.id()))
    }
}

/// The fused top-k sort (τ_F + λ_k): evaluates the missing predicates of
/// `predicates` like [`SortOp`], but keeps only the best `k` tuples in a
/// bounded heap instead of materialising and fully sorting the input —
/// `O(n log k)` comparisons and `O(k)` buffered tuples instead of
/// `O(n log n)` / `O(n)`.
///
/// Emission order is identical to `Limit(Sort(input))`: the shared
/// [`RankedTuple::cmp_desc`] comparator is a total order (deterministic
/// tie-break on tuple identity), so keeping the `k` smallest under it and
/// sorting them equals sorting everything and truncating.
pub struct SortLimitOp {
    input: BoxedOperator,
    predicates: BitSet64,
    k: usize,
    schema: Schema,
    ctx: Arc<RankingContext>,
    metrics: Arc<OperatorMetrics>,
    sorted: Option<std::vec::IntoIter<RankedTuple>>,
    batch_size: usize,
    /// Zone-pruning feedback channel: once the bounded heap holds `k`
    /// tuples, its worst kept score is published here so the columnar scan
    /// on this operator's σ/π spine can skip blocks that cannot beat it.
    threshold: Option<Arc<TopKThreshold>>,
}

impl SortLimitOp {
    /// Creates a fused top-k sort over `predicates` keeping `k` tuples.
    pub fn new(
        input: BoxedOperator,
        predicates: BitSet64,
        k: usize,
        exec: &ExecutionContext,
        label: impl Into<String>,
    ) -> Self {
        let schema = input.schema().clone();
        SortLimitOp {
            input,
            predicates,
            k,
            schema,
            ctx: exec.ranking_arc(),
            metrics: exec.register(label),
            sorted: None,
            batch_size: exec.batch_size(),
            threshold: None,
        }
    }

    /// Attaches the top-k threshold cell shared with the zone-pruning
    /// columnar scan feeding this operator.
    pub fn with_threshold(mut self, cell: Arc<TopKThreshold>) -> Self {
        self.threshold = Some(cell);
        self
    }

    fn prepare(&mut self) -> Result<()> {
        if self.sorted.is_some() {
            return Ok(());
        }
        if self.k == 0 {
            // The unfused Limit(Sort(x)) never pulls its input for k = 0;
            // match that and do no work at all.
            self.sorted = Some(Vec::new().into_iter());
            return Ok(());
        }
        let mut heap: std::collections::BinaryHeap<TopKEntry> =
            std::collections::BinaryHeap::with_capacity(self.k + 1);
        let mut buf = Batch::with_capacity(self.batch_size);
        let mut scores: Vec<ranksql_common::Score> = Vec::with_capacity(self.batch_size);
        loop {
            buf.clear();
            let n = self.input.next_batch(self.batch_size, &mut buf)?;
            if n == 0 {
                break;
            }
            self.metrics.add_in(n as u64);
            // Score phase: one tight pass over the batch evaluating the
            // still-missing predicates and the completed scores into a
            // scratch column, keeping the heap bookkeeping out of the
            // evaluation loop.
            scores.clear();
            for rt in buf.iter_mut() {
                for p in self.predicates.iter() {
                    if !rt.state.is_evaluated(p) {
                        self.ctx
                            .evaluate_into(p, &rt.tuple, &self.schema, &mut rt.state)?;
                    }
                }
                scores.push(self.ctx.upper_bound(&rt.state));
            }
            // Heap phase.  Once the heap is full, a candidate that sorts
            // *after* the current worst kept entry under `cmp_desc` (lower
            // score, or an equal score with a later tuple id) would be
            // pushed and immediately popped again — reject it with one
            // comparison instead of `O(log k)` heap churn.  The kept set
            // and its order are exactly those of the push-then-pop loop.
            for (rt, score) in buf.drain(..).zip(scores.drain(..)) {
                if heap.len() == self.k {
                    let worst = heap.peek().expect("k > 0 and heap is full");
                    let loses = match score.cmp(&worst.score) {
                        std::cmp::Ordering::Less => true,
                        std::cmp::Ordering::Equal => rt.tuple.id() > worst.tuple.tuple.id(),
                        std::cmp::Ordering::Greater => false,
                    };
                    if loses {
                        continue;
                    }
                }
                heap.push(TopKEntry { tuple: rt, score });
                if heap.len() > self.k {
                    heap.pop();
                }
            }
            self.metrics.observe_buffered(heap.len() as u64);
            // A full heap's worst kept score is a hard lower bound on the
            // k-th best result: publish it so the scan below can zone-prune.
            // Strictly-below tuples would be pushed and immediately popped,
            // so skipping them upstream cannot change the kept set (ties
            // are never pruned — the id tie-break stays deterministic).
            if let Some(cell) = &self.threshold {
                if heap.len() == self.k {
                    if let Some(worst) = heap.peek() {
                        cell.raise(worst.score.value());
                    }
                }
            }
        }
        // Ascending heap order = best first (the maximum is the worst kept).
        let rows: Vec<RankedTuple> = heap
            .into_sorted_vec()
            .into_iter()
            .map(|e| e.tuple)
            .collect();
        self.sorted = Some(rows.into_iter());
        Ok(())
    }
}

impl PhysicalOperator for SortLimitOp {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn next(&mut self) -> Result<Option<RankedTuple>> {
        self.prepare()?;
        let next = self.sorted.as_mut().expect("sorted after prepare").next();
        if next.is_some() {
            self.metrics.add_out(1);
        }
        Ok(next)
    }

    fn next_batch(&mut self, max: usize, out: &mut Batch) -> Result<usize> {
        self.prepare()?;
        let sorted = self.sorted.as_mut().expect("sorted after prepare");
        let mut n = 0;
        while n < max {
            match sorted.next() {
                Some(t) => {
                    out.push(t);
                    n += 1;
                }
                None => break,
            }
        }
        if n > 0 {
            self.metrics.add_out(n as u64);
            self.metrics.add_batch();
        }
        Ok(n)
    }

    fn can_extend_limit(&self) -> bool {
        // The bounded heap throws tuples beyond k away while materialising:
        // once that has happened the extension tuples are gone for good and
        // the caller must re-plan with a larger k.  Before the first pull
        // the cap can still simply be raised.
        self.sorted.is_none() && self.input.can_extend_limit()
    }

    fn extend_limit(&mut self, extra: usize) -> bool {
        if self.sorted.is_some() {
            return false;
        }
        if self.input.extend_limit(extra) {
            self.k = self.k.saturating_add(extra);
            true
        } else {
            false
        }
    }
}

/// The top-k limit operator λ_k: passes through the first `k` tuples of its
/// (already ranked) input and then stops drawing.
pub struct LimitOp {
    input: BoxedOperator,
    k: usize,
    emitted: usize,
    schema: Schema,
    metrics: Arc<OperatorMetrics>,
}

impl LimitOp {
    /// Creates a limit of `k` tuples.
    pub fn new(
        input: BoxedOperator,
        k: usize,
        exec: &ExecutionContext,
        label: impl Into<String>,
    ) -> Self {
        let schema = input.schema().clone();
        LimitOp {
            input,
            k,
            emitted: 0,
            schema,
            metrics: exec.register(label),
        }
    }
}

impl PhysicalOperator for LimitOp {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn next(&mut self) -> Result<Option<RankedTuple>> {
        if self.emitted >= self.k {
            return Ok(None);
        }
        match self.input.next()? {
            Some(t) => {
                self.metrics.add_in(1);
                self.metrics.add_out(1);
                self.emitted += 1;
                Ok(Some(t))
            }
            None => Ok(None),
        }
    }

    fn next_batch(&mut self, max: usize, out: &mut Batch) -> Result<usize> {
        // Never ask the input for more than the limit still allows, so the
        // early-stop property of λ_k carries over to batched pulls.
        let want = max.min(self.k - self.emitted.min(self.k));
        if want == 0 {
            return Ok(0);
        }
        let n = self.input.next_batch(want, out)?;
        self.emitted += n;
        if n > 0 {
            self.metrics.add_in(n as u64);
            self.metrics.add_out(n as u64);
            self.metrics.add_batch();
        }
        Ok(n)
    }

    fn is_ranked(&self) -> bool {
        self.input.is_ranked()
    }

    fn can_extend_limit(&self) -> bool {
        // λ_k only stops *drawing*; the input below still holds its state,
        // so raising k resumes exactly where the stream stopped.
        self.input.can_extend_limit()
    }

    fn extend_limit(&mut self, extra: usize) -> bool {
        if self.input.extend_limit(extra) {
            self.k = self.k.saturating_add(extra);
            true
        } else {
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::operator::{check_rank_order, drain};
    use crate::scan::SeqScan;
    use ranksql_common::{DataType, Field, Score, Value};
    use ranksql_expr::{RankPredicate, ScoringFunction};
    use ranksql_storage::{Table, TableBuilder};

    fn table_s() -> Table {
        let schema = Schema::new(vec![
            Field::new("a", DataType::Int64),
            Field::new("p3", DataType::Float64),
            Field::new("p4", DataType::Float64),
            Field::new("p5", DataType::Float64),
        ])
        .qualify_all("S");
        let rows = [
            (4, 0.7, 0.8, 0.9),
            (1, 0.9, 0.85, 0.8),
            (1, 0.5, 0.45, 0.75),
            (4, 0.4, 0.7, 0.95),
            (5, 0.3, 0.9, 0.6),
            (2, 0.25, 0.45, 0.9),
        ];
        TableBuilder::new("S", schema)
            .rows(rows.iter().map(|&(a, p3, p4, p5)| {
                vec![
                    Value::from(a),
                    Value::from(p3),
                    Value::from(p4),
                    Value::from(p5),
                ]
            }))
            .build(0)
            .unwrap()
    }

    fn ctx() -> Arc<RankingContext> {
        RankingContext::new(
            vec![
                RankPredicate::attribute("p3", "S.p3"),
                RankPredicate::attribute("p4", "S.p4"),
                RankPredicate::attribute("p5", "S.p5"),
            ],
            ScoringFunction::Sum,
        )
    }

    #[test]
    fn sort_produces_figure6a_order_and_evaluates_everything() {
        // Plan (a) of Figure 6: seq-scan + sort; every predicate evaluated on
        // every tuple (6 * 3 = 18 evaluations).
        let t = table_s();
        let ctx = ctx();
        let exec = ExecutionContext::new(Arc::clone(&ctx));
        let scan = SeqScan::new(&t, &exec, "seqscan");
        let mut sort = SortOp::new(Box::new(scan), BitSet64::all(3), &exec, "sort");
        let all = drain(&mut sort).unwrap();
        assert_eq!(all.len(), 6);
        assert_eq!(check_rank_order(&all, &ctx), None);
        assert_eq!(ctx.upper_bound(&all[0].state), Score::new(2.55));
        assert_eq!(ctx.upper_bound(&all[5].state), Score::new(1.6));
        assert_eq!(ctx.counters().total(), 18);
        assert!(all.iter().all(|t| t.state.is_complete()));
    }

    #[test]
    fn sort_skips_predicates_already_evaluated_below() {
        let t = table_s();
        let ctx = ctx();
        let exec = ExecutionContext::new(Arc::clone(&ctx));
        let scan = SeqScan::new(&t, &exec, "seqscan");
        let mu = crate::rank::RankOp::new(Box::new(scan), 0, &exec, "mu");
        let mut sort = SortOp::new(Box::new(mu), BitSet64::all(3), &exec, "sort");
        let _ = drain(&mut sort).unwrap();
        // p3 evaluated by µ (6 times), sort adds only p4 and p5 (12 times).
        assert_eq!(ctx.counters().count(0), 6);
        assert_eq!(ctx.counters().total(), 18);
    }

    #[test]
    fn limit_caps_output_and_stops_pulling() {
        let t = table_s();
        let ctx = ctx();
        let exec = ExecutionContext::new(Arc::clone(&ctx));
        let scan = SeqScan::new(&t, &exec, "seqscan");
        let mut limit = LimitOp::new(Box::new(scan), 2, &exec, "limit");
        let out = drain(&mut limit).unwrap();
        assert_eq!(out.len(), 2);
        // The scan only served 2 tuples.
        assert_eq!(exec.metrics().snapshot()[0].tuples_out(), 2);
    }

    #[test]
    fn limit_zero_and_oversized_limits() {
        let t = table_s();
        let ctx = ctx();
        let exec = ExecutionContext::new(Arc::clone(&ctx));
        let scan = SeqScan::new(&t, &exec, "s");
        let mut l0 = LimitOp::new(Box::new(scan), 0, &exec, "l0");
        assert!(drain(&mut l0).unwrap().is_empty());
        let scan = SeqScan::new(&t, &exec, "s2");
        let mut l100 = LimitOp::new(Box::new(scan), 100, &exec, "l100");
        assert_eq!(drain(&mut l100).unwrap().len(), 6);
    }

    #[test]
    fn sort_limit_matches_sort_then_limit() {
        for k in 0..=7 {
            let t = table_s();
            let ctx = ctx();
            let exec = ExecutionContext::new(Arc::clone(&ctx));
            let scan = SeqScan::new(&t, &exec, "seqscan");
            let mut fused =
                SortLimitOp::new(Box::new(scan), BitSet64::all(3), k, &exec, "sortlimit");
            let got = drain(&mut fused).unwrap();

            let exec2 = ExecutionContext::new(Arc::clone(&ctx));
            let scan = SeqScan::new(&t, &exec2, "seqscan");
            let sort = SortOp::new(Box::new(scan), BitSet64::all(3), &exec2, "sort");
            let mut limit = LimitOp::new(Box::new(sort), k, &exec2, "limit");
            let want = drain(&mut limit).unwrap();

            assert_eq!(got.len(), want.len(), "k = {k}");
            for (g, w) in got.iter().zip(want.iter()) {
                assert_eq!(g.tuple.id(), w.tuple.id(), "k = {k}");
            }
        }
    }

    #[test]
    fn sort_limit_zero_k_does_no_work() {
        let t = table_s();
        let ctx = ctx();
        let exec = ExecutionContext::new(Arc::clone(&ctx));
        let scan = SeqScan::new(&t, &exec, "seqscan");
        let mut fused = SortLimitOp::new(Box::new(scan), BitSet64::all(3), 0, &exec, "topk");
        assert!(drain(&mut fused).unwrap().is_empty());
        // Like the unfused Limit(Sort) for k = 0: the input is never pulled
        // and no predicate is evaluated.
        assert_eq!(exec.metrics().snapshot()[0].tuples_out(), 0);
        assert_eq!(ctx.counters().total(), 0);
    }

    #[test]
    fn limit_extends_but_materialized_sort_limit_refuses() {
        let t = table_s();
        let ctx = ctx();
        let exec = ExecutionContext::new(Arc::clone(&ctx));
        // λ_2 over µ over a scan: take 2, extend by 2, take 2 more — the
        // stream resumes exactly where it stopped.
        let scan = SeqScan::new(&t, &exec, "s");
        let mu = crate::rank::RankOp::new(Box::new(scan), 0, &exec, "mu");
        let mut limit = LimitOp::new(Box::new(mu), 2, &exec, "l");
        let first = drain(&mut limit).unwrap();
        assert_eq!(first.len(), 2);
        assert!(limit.can_extend_limit());
        assert!(limit.extend_limit(2));
        let more = drain(&mut limit).unwrap();
        assert_eq!(more.len(), 2);
        // Together they equal a single k=4 run.
        let exec2 = ExecutionContext::new(Arc::clone(&ctx));
        let scan = SeqScan::new(&t, &exec2, "s");
        let mu = crate::rank::RankOp::new(Box::new(scan), 0, &exec2, "mu");
        let mut l4 = LimitOp::new(Box::new(mu), 4, &exec2, "l4");
        let want = drain(&mut l4).unwrap();
        let got: Vec<_> = first.iter().chain(more.iter()).collect();
        for (g, w) in got.iter().zip(want.iter()) {
            assert_eq!(g.tuple.id(), w.tuple.id());
        }

        // A bounded-heap top-k that already materialised discarded its
        // losers; extension must refuse.
        let scan = SeqScan::new(&t, &exec, "s2");
        let mut fused = SortLimitOp::new(Box::new(scan), BitSet64::all(3), 2, &exec, "topk");
        assert!(fused.can_extend_limit());
        assert!(fused.extend_limit(1), "pre-materialisation extension is ok");
        assert_eq!(fused.k, 3);
        let _ = drain(&mut fused).unwrap();
        assert!(!fused.can_extend_limit());
        assert!(!fused.extend_limit(1));
    }

    #[test]
    fn sort_limit_buffers_at_most_k_tuples() {
        let t = table_s();
        let ctx = ctx();
        let exec = ExecutionContext::new(Arc::clone(&ctx));
        let scan = SeqScan::new(&t, &exec, "seqscan");
        let mut fused = SortLimitOp::new(Box::new(scan), BitSet64::all(3), 2, &exec, "topk");
        let out = drain(&mut fused).unwrap();
        assert_eq!(out.len(), 2);
        let m = exec.metrics().snapshot();
        let topk = m.iter().find(|x| x.name() == "topk").unwrap();
        assert_eq!(topk.tuples_in(), 6);
        assert!(topk.buffered_peak() <= 2, "peak {}", topk.buffered_peak());
    }
}
