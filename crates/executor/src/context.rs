//! The per-execution context threaded through every physical operator.
//!
//! Before this existed, every operator constructor took an ad-hoc pair of
//! `Arc<RankingContext>` + `metrics.register(...)` arguments wired by hand
//! in the plan-lowering code.  [`ExecutionContext`] bundles everything an
//! operator needs from its execution environment — the query's ranking
//! context, the shared metrics registry, and the tuple budget used for
//! early-stop / runaway-query protection — behind one cheaply clonable
//! handle, so adding an execution-wide facility (e.g. a partition count for
//! parallel scans) no longer means touching every constructor signature.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;
use ranksql_common::{
    default_thread_count, RankSqlError, Result, Score, DEFAULT_BATCH_SIZE, DEFAULT_MORSEL_SIZE,
    MAX_THREADS,
};
use ranksql_expr::RankingContext;
use ranksql_storage::{EpochSet, Table, TableEpoch};

use crate::metrics::{MetricsRegistry, OperatorMetrics};

/// A monotonically rising lower bound on the k-th best score a top-k
/// consumer will keep — the feedback channel of zone-map score pruning.
///
/// A `SortLimit` raises the cell to its bounded heap's current worst kept
/// score once the heap holds `k` tuples; the columnar scan feeding it skips
/// any block whose zone-map score bound is *strictly* below the cell (a
/// strictly worse tuple is discarded by the heap immediately, so skipping it
/// cannot change results — ties are never pruned, preserving the
/// deterministic tuple-id tie-break).  Thread-safe: parallel morsel
/// pipelines share one cell per plan-node pair.
#[derive(Debug)]
pub struct TopKThreshold {
    /// Bit pattern of the current threshold (`f64::NEG_INFINITY` = unset).
    bits: AtomicU64,
}

impl Default for TopKThreshold {
    fn default() -> Self {
        TopKThreshold::new()
    }
}

impl TopKThreshold {
    /// An unset threshold (nothing can be pruned against it).
    pub fn new() -> Self {
        TopKThreshold {
            bits: AtomicU64::new(f64::NEG_INFINITY.to_bits()),
        }
    }

    /// Raises the threshold to `score` if it is higher than the current
    /// value.  `NaN` is ignored outright: a NaN "worst kept score" carries
    /// no ordering information, and letting it into the cell would make
    /// every subsequent `prunes` comparison meaningless — a NaN-scoring row
    /// must never change which blocks are pruned.  (The [`Score`] total
    /// order below also sorts `NaN` lowest, so this guard is belt and
    /// braces rather than load-bearing — but the property is important
    /// enough to state, and regression-test, explicitly.)
    pub fn raise(&self, score: f64) {
        if score.is_nan() {
            return;
        }
        let mut cur = self.bits.load(Ordering::Relaxed);
        loop {
            if Score::new(score) <= Score::new(f64::from_bits(cur)) {
                return;
            }
            match self.bits.compare_exchange_weak(
                cur,
                score.to_bits(),
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return,
                Err(now) => cur = now,
            }
        }
    }

    /// The current threshold (`f64::NEG_INFINITY` when unset).
    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }

    /// Whether a block with maximal possible score `bound` can be skipped:
    /// only when the threshold is set and the bound is *strictly* below it.
    pub fn prunes(&self, bound: f64) -> bool {
        let t = self.get();
        t > f64::NEG_INFINITY && Score::new(bound) < Score::new(t)
    }
}

/// A shared budget of tuples an execution may materialise from its scans.
///
/// Exceeding the budget aborts the query with an execution error — a
/// guard-rail for top-k queries that accidentally degenerate into full
/// materialisation.  The default is unlimited.
#[derive(Debug)]
pub struct TupleBudget {
    limit: u64,
    used: AtomicU64,
}

impl TupleBudget {
    /// An unlimited budget.
    pub fn unlimited() -> Self {
        TupleBudget {
            limit: u64::MAX,
            used: AtomicU64::new(0),
        }
    }

    /// A budget of at most `limit` scan-produced tuples.
    pub fn limited(limit: u64) -> Self {
        TupleBudget {
            limit,
            used: AtomicU64::new(0),
        }
    }

    /// Charges `n` tuples, failing if the budget is exhausted.
    pub fn charge(&self, n: u64) -> Result<()> {
        let used = self.used.fetch_add(n, Ordering::Relaxed) + n;
        if used > self.limit {
            return Err(RankSqlError::Execution(format!(
                "tuple budget exceeded: execution touched {used} tuples (budget {})",
                self.limit
            )));
        }
        Ok(())
    }

    /// Tuples charged so far.
    pub fn used(&self) -> u64 {
        self.used.load(Ordering::Relaxed)
    }

    /// The budget limit (`u64::MAX` when unlimited).
    pub fn limit(&self) -> u64 {
        self.limit
    }
}

/// Pre-registered operator-metrics handles handed to the per-morsel operator
/// instances of a parallel `Exchange` subtree.
///
/// The exchange registers each spine operator's metrics exactly once (in
/// post-order, like serial lowering); every morsel instance then *reuses*
/// those handles instead of registering new ones, so per-operator counters
/// aggregate across all workers and the registry keeps one entry per plan
/// node regardless of morsel count.  Handles are consumed in registration
/// order through a per-instance cursor — morsel pipelines are built by the
/// same deterministic walk that registered the handles, so the i-th
/// `register` call of an instance is the i-th spine operator.
#[derive(Debug)]
struct PresetMetrics {
    handles: Arc<Vec<Arc<OperatorMetrics>>>,
    next: AtomicUsize,
}

/// Everything a physical operator needs from its execution environment.
///
/// Cloning is cheap (a handful of `Arc`s); each query execution creates one
/// context and threads it through `build_operator` into every operator
/// constructor.
#[derive(Debug, Clone)]
pub struct ExecutionContext {
    ranking: Arc<RankingContext>,
    metrics: Arc<MetricsRegistry>,
    budget: Arc<TupleBudget>,
    batch_size: usize,
    threads: usize,
    morsel_size: usize,
    preset: Option<Arc<PresetMetrics>>,
    /// Hand-off stack wiring a `SortLimit` to the zone-pruning columnar scan
    /// on its σ/π spine during plan lowering: the `SortLimit` arm of
    /// `build_operator` pushes a fresh [`TopKThreshold`] before building its
    /// input, the scan pops it.  Shared across clones so the exchange path
    /// sees the same stack; strictly nested because the verified spine
    /// pattern is a linear operator chain.
    prune_cells: Arc<Mutex<Vec<Arc<TopKThreshold>>>>,
    /// The MVCC snapshot of this execution: at most one pinned
    /// [`TableEpoch`] per table, taken lazily on first access and shared by
    /// every scan (and every morsel instance) of the plan, so all access
    /// paths of one execution read the same row-count watermark.
    epochs: Arc<EpochSet>,
    /// Zone-map prune events during this execution (block ranges skipped by
    /// filter or score pruning), aggregated across all scans and workers.
    /// Deduplicated per (scan, block): each scan spine carries a block
    /// bitmap shared by its morsel instances, so a block overlapping
    /// several morsels counts once — serially and in parallel, one event =
    /// one distinct block.
    blocks_pruned: Arc<AtomicU64>,
    /// Pages faulted in from disk by columnar scans over a paged backend
    /// (always 0 for RAM-resident tables).  Counted at block granularity
    /// when a scan's `fetch_block` misses the buffer pool.
    pages_faulted: Arc<AtomicU64>,
    /// Pages of paged-out blocks that zone-map pruning skipped — I/O that
    /// never happened ("a pruned block is a page never read").  Deduped per
    /// (scan, block) exactly like `blocks_pruned`.
    pages_pruned: Arc<AtomicU64>,
}

impl ExecutionContext {
    /// A context for one execution of a query with the given ranking
    /// context, a fresh metrics registry, an unlimited tuple budget and the
    /// default batch size.
    pub fn new(ranking: Arc<RankingContext>) -> Self {
        ExecutionContext {
            ranking,
            metrics: MetricsRegistry::new(),
            budget: Arc::new(TupleBudget::unlimited()),
            batch_size: DEFAULT_BATCH_SIZE,
            threads: default_thread_count(),
            morsel_size: DEFAULT_MORSEL_SIZE,
            preset: None,
            epochs: Arc::new(EpochSet::new()),
            prune_cells: Arc::new(Mutex::new(Vec::new())),
            blocks_pruned: Arc::new(AtomicU64::new(0)),
            pages_faulted: Arc::new(AtomicU64::new(0)),
            pages_pruned: Arc::new(AtomicU64::new(0)),
        }
    }

    /// Replaces the execution's epoch set — used when epochs were pinned
    /// before the context existed (e.g. `Cursor::open` pins while computing
    /// zone-map score caps, then builds the context with the same set so
    /// operators read the very snapshot the caps were derived from).
    pub fn with_epochs(mut self, epochs: Arc<EpochSet>) -> Self {
        self.epochs = epochs;
        self
    }

    /// The execution's epoch set.
    pub fn epochs(&self) -> &Arc<EpochSet> {
        &self.epochs
    }

    /// The pinned epoch for `table` (pinned on first access; see
    /// [`EpochSet::pin`]).  Every scan of the execution resolves its rows
    /// through this, so concurrent inserts never shift what it reads.
    pub fn pin_epoch(&self, table: &Table, with_columnar: bool) -> Arc<TableEpoch> {
        self.epochs.pin(table, with_columnar)
    }

    /// Like [`ExecutionContext::new`] but aborting execution after the scans
    /// have produced `limit` tuples.
    pub fn with_budget(ranking: Arc<RankingContext>, limit: u64) -> Self {
        ExecutionContext {
            budget: Arc::new(TupleBudget::limited(limit)),
            ..ExecutionContext::new(ranking)
        }
    }

    /// Overrides the batch size used by the batched execution path
    /// (clamped to at least 1).  `1` effectively degrades batched pulls to
    /// tuple-at-a-time execution.
    pub fn with_batch_size(mut self, batch_size: usize) -> Self {
        self.batch_size = batch_size.max(1);
        self
    }

    /// The number of tuples moved per batched pull.  Blocking operators also
    /// use this to size the chunks they drain their inputs with.
    pub fn batch_size(&self) -> usize {
        self.batch_size
    }

    /// Overrides the number of worker threads `Exchange` operators fan
    /// morsels across (clamped to `1..=`[`MAX_THREADS`]).  `1` runs parallel
    /// plans inline on the calling thread — the serial degradation path.
    ///
    /// The default is [`default_thread_count`] (the `RANKSQL_THREADS`
    /// environment variable, or 1).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.clamp(1, MAX_THREADS);
        self
    }

    /// The number of worker threads available to `Exchange` operators.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Overrides the number of base-table rows per morsel (clamped to at
    /// least 1).  Results are morsel-size independent; this only tunes the
    /// work-stealing granularity.
    pub fn with_morsel_size(mut self, morsel_size: usize) -> Self {
        self.morsel_size = morsel_size.max(1);
        self
    }

    /// Rows per morsel handed to each parallel worker.
    pub fn morsel_size(&self) -> usize {
        self.morsel_size
    }

    /// A context for one per-morsel operator-pipeline instance: `register`
    /// hands back the pre-registered `handles` in order instead of creating
    /// new registry entries, so all instances of one plan node share one
    /// metrics handle.  Each call starts a fresh cursor — use one instance
    /// context per morsel pipeline.
    pub(crate) fn with_preset_metrics(&self, handles: Arc<Vec<Arc<OperatorMetrics>>>) -> Self {
        let mut ctx = self.clone();
        ctx.preset = Some(Arc::new(PresetMetrics {
            handles,
            next: AtomicUsize::new(0),
        }));
        ctx
    }

    /// The query's ranking context.
    pub fn ranking(&self) -> &Arc<RankingContext> {
        &self.ranking
    }

    /// A clone of the ranking context handle (for operators that store it).
    pub fn ranking_arc(&self) -> Arc<RankingContext> {
        Arc::clone(&self.ranking)
    }

    /// The shared metrics registry.
    pub fn metrics(&self) -> &Arc<MetricsRegistry> {
        &self.metrics
    }

    /// Registers an operator's metrics under `label`.
    ///
    /// Operators register during construction, bottom-up (inputs before
    /// parents), so registration order is a post-order walk of the physical
    /// plan — the pairing invariant `explain_with_actuals` relies on.
    ///
    /// In a per-morsel instance context (see
    /// `ExecutionContext::with_preset_metrics`) the pre-registered shared
    /// handle is returned instead, so parallel workers aggregate into the
    /// same per-operator counters.
    pub fn register(&self, label: impl Into<String>) -> Arc<OperatorMetrics> {
        if let Some(preset) = &self.preset {
            let i = preset.next.fetch_add(1, Ordering::Relaxed);
            if let Some(handle) = preset.handles.get(i) {
                return Arc::clone(handle);
            }
        }
        self.metrics.register(label)
    }

    /// The tuple budget shared by this execution's scans.
    pub fn budget(&self) -> &Arc<TupleBudget> {
        &self.budget
    }

    /// Pushes a top-k threshold cell for the zone-pruning scan currently
    /// being lowered (called by the `SortLimit` arm of `build_operator`
    /// before it builds its input spine).
    pub fn push_prune_threshold(&self, cell: Arc<TopKThreshold>) {
        self.prune_cells.lock().push(cell);
    }

    /// Pops the pending top-k threshold cell, if one was pushed by an
    /// enclosing `SortLimit` (called by the columnar scan's constructor).
    pub fn pop_prune_threshold(&self) -> Option<Arc<TopKThreshold>> {
        self.prune_cells.lock().pop()
    }

    /// Records `n` columnar blocks skipped by zone maps.
    pub fn add_blocks_pruned(&self, n: u64) {
        self.blocks_pruned.fetch_add(n, Ordering::Relaxed);
    }

    /// Columnar blocks skipped by zone maps so far in this execution.
    pub fn blocks_pruned(&self) -> u64 {
        self.blocks_pruned.load(Ordering::Relaxed)
    }

    /// The shared pruned-blocks counter (stored by columnar scans so the
    /// hot loop skips the context indirection).
    pub(crate) fn blocks_pruned_counter(&self) -> &Arc<AtomicU64> {
        &self.blocks_pruned
    }

    /// Buffer-pool pages faulted in from disk so far in this execution.
    pub fn pages_faulted(&self) -> u64 {
        self.pages_faulted.load(Ordering::Relaxed)
    }

    /// Pages of paged-out blocks skipped by zone-map pruning so far in this
    /// execution — reads that never reached the pool or the disk.
    pub fn pages_pruned(&self) -> u64 {
        self.pages_pruned.load(Ordering::Relaxed)
    }

    /// The shared faulted-pages counter (stored by columnar scans).
    pub(crate) fn pages_faulted_counter(&self) -> &Arc<AtomicU64> {
        &self.pages_faulted
    }

    /// The shared pruned-pages counter (stored by columnar scans).
    pub(crate) fn pages_pruned_counter(&self) -> &Arc<AtomicU64> {
        &self.pages_pruned
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ranksql_expr::{RankPredicate, ScoringFunction};

    fn ranking() -> Arc<RankingContext> {
        RankingContext::new(
            vec![RankPredicate::attribute("p", "T.p")],
            ScoringFunction::Sum,
        )
    }

    #[test]
    fn budget_charges_and_trips() {
        let b = TupleBudget::limited(3);
        assert!(b.charge(2).is_ok());
        assert!(b.charge(1).is_ok());
        assert_eq!(b.used(), 3);
        let err = b.charge(1).unwrap_err();
        assert!(err.to_string().contains("tuple budget exceeded"), "{err}");
    }

    #[test]
    fn unlimited_budget_never_trips() {
        let b = TupleBudget::unlimited();
        assert!(b.charge(u64::MAX / 2).is_ok());
        assert_eq!(b.limit(), u64::MAX);
    }

    #[test]
    fn preset_metrics_reuse_registered_handles() {
        let exec = ExecutionContext::new(ranking());
        let a = exec.register("a");
        let b = exec.register("b");
        let handles = Arc::new(vec![Arc::clone(&a), Arc::clone(&b)]);
        let inst = exec.with_preset_metrics(Arc::clone(&handles));
        inst.register("a").add_out(1);
        inst.register("b").add_out(2);
        assert_eq!(a.tuples_out(), 1);
        assert_eq!(b.tuples_out(), 2);
        assert_eq!(exec.metrics().len(), 2, "instances must not re-register");
        // A second instance starts a fresh cursor over the same handles.
        let inst2 = exec.with_preset_metrics(handles);
        inst2.register("a").add_out(5);
        assert_eq!(a.tuples_out(), 6);
    }

    #[test]
    fn threads_and_morsel_size_clamp() {
        let exec = ExecutionContext::new(ranking())
            .with_threads(0)
            .with_morsel_size(0);
        assert_eq!(exec.threads(), 1);
        assert_eq!(exec.morsel_size(), 1);
        let exec = exec.with_threads(1 << 20);
        assert_eq!(exec.threads(), ranksql_common::MAX_THREADS);
    }

    #[test]
    fn context_registers_operators_in_order() {
        let exec = ExecutionContext::new(ranking());
        exec.register("a");
        exec.register("b");
        let names: Vec<String> = exec.metrics().snapshot().iter().map(|m| m.name()).collect();
        assert_eq!(names, vec!["a".to_owned(), "b".to_owned()]);
        assert_eq!(exec.ranking().num_predicates(), 1);
        let clone = exec.clone();
        clone.register("c");
        assert_eq!(exec.metrics().len(), 3, "clones share the registry");
    }
}
