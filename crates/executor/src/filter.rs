//! Order-preserving unary operators: selection (σ) and projection (π).

use std::sync::Arc;

use ranksql_common::{Result, Schema};
use ranksql_expr::{BoolExpr, BoundBoolExpr, RankedTuple};

use crate::context::ExecutionContext;
use crate::metrics::OperatorMetrics;
use crate::operator::{Batch, BoxedOperator, PhysicalOperator};

/// Selection σ_c: filters membership, keeps the input order untouched
/// (`σ_c(R_P) ≡ (σ_c R)_P`, Figure 3).
pub struct Filter {
    input: BoxedOperator,
    predicate: BoundBoolExpr,
    schema: Schema,
    metrics: Arc<OperatorMetrics>,
    /// Scratch buffer for batched input pulls; always fully consumed before
    /// a batched call returns, so tuple- and batch-driven pulls can mix.
    in_buf: Batch,
}

impl Filter {
    /// Creates a filter, binding `predicate` against the input schema.
    pub fn new(
        input: BoxedOperator,
        predicate: &BoolExpr,
        exec: &ExecutionContext,
        label: impl Into<String>,
    ) -> Result<Self> {
        let schema = input.schema().clone();
        let bound = predicate.bind(&schema)?;
        Ok(Filter {
            input,
            predicate: bound,
            schema,
            metrics: exec.register(label),
            in_buf: Batch::new(),
        })
    }
}

impl PhysicalOperator for Filter {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn next(&mut self) -> Result<Option<RankedTuple>> {
        while let Some(rt) = self.input.next()? {
            self.metrics.add_in(1);
            if self.predicate.eval(&rt.tuple)? {
                self.metrics.add_out(1);
                return Ok(Some(rt));
            }
        }
        Ok(None)
    }

    fn next_batch(&mut self, max: usize, out: &mut Batch) -> Result<usize> {
        // Pull input chunks of at most the still-missing count, so the
        // output can never overshoot `max` however selective the predicate
        // is; loop until the chunk is full or the input dries up.
        let mut produced = 0;
        let mut pulled = 0u64;
        while produced < max {
            self.in_buf.clear();
            let n = self.input.next_batch(max - produced, &mut self.in_buf)?;
            if n == 0 {
                break;
            }
            pulled += n as u64;
            for rt in self.in_buf.drain(..) {
                if self.predicate.eval(&rt.tuple)? {
                    out.push(rt);
                    produced += 1;
                }
            }
        }
        self.metrics.add_in(pulled);
        if produced > 0 {
            self.metrics.add_out(produced as u64);
            self.metrics.add_batch();
        }
        Ok(produced)
    }

    fn is_ranked(&self) -> bool {
        self.input.is_ranked()
    }

    fn can_extend_limit(&self) -> bool {
        self.input.can_extend_limit()
    }

    fn extend_limit(&mut self, extra: usize) -> bool {
        self.input.extend_limit(extra)
    }
}

/// Projection π: keeps membership and order, narrows the value vector.
///
/// Projection keeps the tuple identity, so set operators above a projection
/// still deduplicate correctly.
pub struct Project {
    input: BoxedOperator,
    indices: Vec<usize>,
    schema: Schema,
    metrics: Arc<OperatorMetrics>,
    /// Scratch buffer for batched input pulls (fully consumed per call).
    in_buf: Batch,
}

impl Project {
    /// Creates a projection onto `columns` (qualified names).
    pub fn new(
        input: BoxedOperator,
        columns: &[String],
        exec: &ExecutionContext,
        label: impl Into<String>,
    ) -> Result<Self> {
        let in_schema = input.schema().clone();
        let mut indices = Vec::with_capacity(columns.len());
        for c in columns {
            indices.push(in_schema.index_of_str(c)?);
        }
        let schema = in_schema.project(&indices);
        Ok(Project {
            input,
            indices,
            schema,
            metrics: exec.register(label),
            in_buf: Batch::new(),
        })
    }
}

impl PhysicalOperator for Project {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn next(&mut self) -> Result<Option<RankedTuple>> {
        match self.input.next()? {
            Some(rt) => {
                self.metrics.add_in(1);
                self.metrics.add_out(1);
                let projected = rt.tuple.project(&self.indices);
                Ok(Some(RankedTuple::new(projected, rt.state)))
            }
            None => Ok(None),
        }
    }

    fn next_batch(&mut self, max: usize, out: &mut Batch) -> Result<usize> {
        self.in_buf.clear();
        let n = self.input.next_batch(max, &mut self.in_buf)?;
        for rt in self.in_buf.drain(..) {
            let projected = rt.tuple.project(&self.indices);
            out.push(RankedTuple::new(projected, rt.state));
        }
        if n > 0 {
            self.metrics.add_in(n as u64);
            self.metrics.add_out(n as u64);
            self.metrics.add_batch();
        }
        Ok(n)
    }

    fn is_ranked(&self) -> bool {
        self.input.is_ranked()
    }

    fn can_extend_limit(&self) -> bool {
        self.input.can_extend_limit()
    }

    fn extend_limit(&mut self, extra: usize) -> bool {
        self.input.extend_limit(extra)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::operator::drain;
    use crate::scan::SeqScan;
    use ranksql_common::{DataType, Field, Value};
    use ranksql_expr::{CompareOp, RankingContext, ScalarExpr};
    use ranksql_storage::{Table, TableBuilder};

    fn table() -> Table {
        let schema = Schema::new(vec![
            Field::new("a", DataType::Int64),
            Field::new("b", DataType::Bool),
        ])
        .qualify_all("R");
        TableBuilder::new("R", schema)
            .rows((0..10i64).map(|i| vec![Value::from(i), Value::from(i % 2 == 0)]))
            .build(0)
            .unwrap()
    }

    fn exec() -> ExecutionContext {
        ExecutionContext::new(RankingContext::unranked())
    }

    fn scan(t: &Table, exec: &ExecutionContext) -> BoxedOperator {
        Box::new(SeqScan::new(t, exec, "scan"))
    }

    #[test]
    fn filter_keeps_matching_tuples_only() {
        let t = table();
        let exec = exec();
        let pred = BoolExpr::compare(ScalarExpr::col("R.a"), CompareOp::GtEq, ScalarExpr::lit(5));
        let mut f = Filter::new(scan(&t, &exec), &pred, &exec, "filter").unwrap();
        let out = drain(&mut f).unwrap();
        assert_eq!(out.len(), 5);
        assert!(out.iter().all(|t| t.tuple.value(0).as_i64().unwrap() >= 5));
        let m = exec.metrics().snapshot();
        assert_eq!(m[1].tuples_in(), 10);
        assert_eq!(m[1].tuples_out(), 5);
    }

    #[test]
    fn filter_on_boolean_column() {
        let t = table();
        let exec = exec();
        let pred = BoolExpr::column_is_true("R.b");
        let mut f = Filter::new(scan(&t, &exec), &pred, &exec, "filter").unwrap();
        assert_eq!(drain(&mut f).unwrap().len(), 5);
    }

    #[test]
    fn filter_bind_error_on_unknown_column() {
        let t = table();
        let exec = exec();
        let pred = BoolExpr::column_is_true("R.zzz");
        assert!(Filter::new(scan(&t, &exec), &pred, &exec, "filter").is_err());
    }

    #[test]
    fn project_narrows_schema_and_keeps_identity() {
        let t = table();
        let exec = exec();
        let mut p = Project::new(scan(&t, &exec), &["R.b".to_owned()], &exec, "proj").unwrap();
        assert_eq!(p.schema().len(), 1);
        let out = drain(&mut p).unwrap();
        assert_eq!(out.len(), 10);
        assert_eq!(out[0].tuple.arity(), 1);
        assert_eq!(out[3].tuple.id().parts()[0].1, 3);
    }

    #[test]
    fn project_unknown_column_errors() {
        let t = table();
        let exec = exec();
        assert!(Project::new(scan(&t, &exec), &["R.zzz".to_owned()], &exec, "proj").is_err());
    }
}
