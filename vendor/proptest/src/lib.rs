//! Offline stand-in for the `proptest` crate (no crates.io access in the
//! build container).
//!
//! Implements the subset of the proptest API this workspace's property
//! tests use: the [`proptest!`] macro with `#![proptest_config(...)]`,
//! [`Strategy`] with `prop_map`, range and tuple strategies,
//! [`collection::vec`], [`strategy::Just`], `any::<T>()`, [`prop_oneof!`],
//! [`prop_assert!`] and [`prop_assert_eq!`].
//!
//! Compared to the real crate there is **no shrinking** and no persisted
//! failure regression file: each test runs `cases` deterministic
//! pseudo-random cases (seeded from the test name), and a failing case
//! panics with the assertion message.  That keeps the property tests
//! meaningful — broad randomised coverage, reproducible across runs —
//! without any external dependency.

use std::ops::{Range, RangeInclusive};

pub mod test_runner {
    //! Test configuration, RNG and failure plumbing.

    /// Configuration accepted by `#![proptest_config(...)]`.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases to run per property.
        pub cases: u32,
        /// Accepted for API compatibility (no regression files are written).
        pub failure_persistence: Option<()>,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig {
                cases: 256,
                failure_persistence: None,
            }
        }
    }

    /// A failed property case.
    #[derive(Debug)]
    pub struct TestCaseError(pub String);

    impl TestCaseError {
        /// Creates a failure with a message.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError(msg.into())
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.0)
        }
    }

    /// Deterministic per-test RNG (SplitMix64 seeded from the test name).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds the generator from an arbitrary string (the test name).
        pub fn from_name(name: &str) -> Self {
            let mut h = 0xcbf2_9ce4_8422_2325u64;
            for b in name.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x1000_0000_01b3);
            }
            TestRng { state: h }
        }

        /// Produces the next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform `f64` in `[0, 1)`.
        pub fn next_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        /// Uniform `usize` in `[lo, hi)`.
        pub fn usize_in(&mut self, lo: usize, hi: usize) -> usize {
            assert!(lo < hi, "empty range");
            lo + (self.next_u64() as usize) % (hi - lo)
        }
    }
}

use test_runner::TestRng;

pub mod strategy {
    //! The [`Strategy`] trait and combinators.

    use super::test_runner::TestRng;

    /// A generator of random values (no shrinking in this stand-in).
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Draws one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Boxes this strategy (for heterogeneous unions).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    /// A boxed strategy.
    pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            (**self).sample(rng)
        }
    }

    /// Always produces a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// The result of [`Strategy::prop_map`].
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn sample(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.sample(rng))
        }
    }

    /// Uniform choice among boxed strategies (built by [`crate::prop_oneof!`]).
    pub struct Union<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// Creates a union; panics if `options` is empty.
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one option");
            Union { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            let i = rng.usize_in(0, self.options.len());
            self.options[i].sample(rng)
        }
    }

    macro_rules! impl_tuple_strategy {
        ($($S:ident/$idx:tt),+) => {
            impl<$($S: Strategy),+> Strategy for ($($S,)+) {
                type Value = ($($S::Value,)+);
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.sample(rng),)+)
                }
            }
        };
    }
    impl_tuple_strategy!(A / 0);
    impl_tuple_strategy!(A / 0, B / 1);
    impl_tuple_strategy!(A / 0, B / 1, C / 2);
    impl_tuple_strategy!(A / 0, B / 1, C / 2, D / 3);
    impl_tuple_strategy!(A / 0, B / 1, C / 2, D / 3, E / 4);
    impl_tuple_strategy!(A / 0, B / 1, C / 2, D / 3, E / 4, F / 5);
    impl_tuple_strategy!(A / 0, B / 1, C / 2, D / 3, E / 4, F / 5, G / 6);
    impl_tuple_strategy!(A / 0, B / 1, C / 2, D / 3, E / 4, F / 5, G / 6, H / 7);
}

use strategy::Strategy;

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}
impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + (rng.next_f64() as $t) * (self.end - self.start)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                lo + (rng.next_f64() as $t) * (hi - lo)
            }
        }
    )*};
}
impl_float_range_strategy!(f32, f64);

pub mod arbitrary {
    //! `any::<T>()` support.

    use super::strategy::Strategy;
    use super::test_runner::TestRng;

    /// Types with a canonical full-domain strategy.
    pub trait Arbitrary: Sized {
        /// Draws one arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> f64 {
            rng.next_f64()
        }
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    /// The strategy returned by [`any`].
    pub struct Any<T>(std::marker::PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(std::marker::PhantomData)
    }
}

pub mod collection {
    //! Collection strategies.

    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use std::ops::Range;

    /// A size specification: an exact length or a half-open range.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    /// The strategy returned by [`vec()`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.usize_in(self.size.lo, self.size.hi);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// Generates `Vec`s of `element` values with a length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

pub mod prelude {
    //! The usual `use proptest::prelude::*` surface.

    pub use crate::arbitrary::any;
    pub use crate::collection;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// The `prop::` alias module (for `prop::collection::vec`).
    pub mod prop {
        pub use crate::collection;
        pub use crate::strategy;
    }
}

/// Declares property tests: each `fn name(arg in strategy, ...)` runs
/// `cases` deterministic random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@cfg($cfg) $($rest)*);
    };
    (@cfg($cfg:expr) $( $(#[$attr:meta])* fn $name:ident( $($arg:pat_param in $strat:expr),+ $(,)? ) $body:block )*) => {
        $(
            $(#[$attr])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let mut proptest_rng =
                    $crate::test_runner::TestRng::from_name(concat!(module_path!(), "::", stringify!($name)));
                for proptest_case in 0..config.cases {
                    $(
                        let $arg = $crate::strategy::Strategy::sample(&($strat), &mut proptest_rng);
                    )+
                    let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    if let ::std::result::Result::Err(e) = outcome {
                        panic!("property `{}` failed at case {}: {}", stringify!($name), proptest_case, e);
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@cfg($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

/// Fails the current property case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)));
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// Fails the current property case unless the two values are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, "assertion failed: {:?} != {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, $($fmt)*);
    }};
}

/// Fails the current property case if the two values are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l != r, "assertion failed: {:?} == {:?}", l, r);
    }};
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $( ::std::boxed::Box::new($strategy) as ::std::boxed::Box<dyn $crate::strategy::Strategy<Value = _>> ),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[derive(Debug, Clone, PartialEq)]
    enum Tag {
        A,
        B,
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

        /// Ranges stay in bounds and tuples compose.
        #[test]
        fn ranges_and_tuples(x in 0..10i64, (f, b) in (0.0..1.0f64, any::<bool>())) {
            prop_assert!((0..10).contains(&x));
            prop_assert!((0.0..1.0).contains(&f));
            prop_assert_eq!(b as u8 <= 1, true);
        }

        #[test]
        fn vec_and_map(xs in collection::vec(0.0f64..=1.0, 0..8), n in collection::vec(1..3usize, 4)) {
            prop_assert!(xs.len() < 8);
            prop_assert_eq!(n.len(), 4);
        }

        #[test]
        fn oneof_and_just(t in prop_oneof![Just(Tag::A), Just(Tag::B)]) {
            prop_assert!(t == Tag::A || t == Tag::B);
        }

        #[test]
        fn prop_map_transforms(y in (0..5usize).prop_map(|v| v * 2)) {
            prop_assert!(y % 2 == 0 && y < 10);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = TestRng::from_name("x");
        let mut b = TestRng::from_name("x");
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
