//! Offline stand-in for the `parking_lot` crate.
//!
//! The build container has no crates.io access, so this vendored shim
//! provides the subset of the `parking_lot` API the workspace uses —
//! [`Mutex`] and [`RwLock`] with non-poisoning, guard-returning lock
//! methods — implemented on top of `std::sync`.  Poisoning is absorbed
//! (the inner value is recovered), matching `parking_lot` semantics where
//! a panicking lock holder does not poison the lock.

use std::fmt;
use std::sync::{self, PoisonError};

pub use sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A non-poisoning mutex with the `parking_lot::Mutex` API.
#[derive(Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the mutex, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Attempts to acquire the mutex without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Returns a mutable reference to the underlying data.
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_tuple("Mutex").field(&&*self.lock()).finish()
    }
}

/// A non-poisoning reader-writer lock with the `parking_lot::RwLock` API.
#[derive(Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock.
    pub const fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires an exclusive write lock.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }

    /// Attempts to acquire a shared read lock without blocking.
    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.0.try_read() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Attempts to acquire an exclusive write lock without blocking.
    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.0.try_write() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Returns a mutable reference to the underlying data.
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_tuple("RwLock").field(&&*self.read()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basics() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_basics() {
        let l = RwLock::new(vec![1]);
        l.write().push(2);
        assert_eq!(l.read().len(), 2);
        assert!(l.try_read().is_some());
        assert_eq!(l.into_inner(), vec![1, 2]);
    }
}
