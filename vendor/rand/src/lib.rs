//! Offline stand-in for the `rand` crate (the build container has no
//! crates.io access).
//!
//! Implements the subset of the `rand 0.8` API this workspace uses:
//! [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], [`Rng::gen`],
//! [`Rng::gen_range`] over integer and float ranges, and [`Rng::gen_bool`].
//! The generator is SplitMix64 — statistically solid for workload
//! generation and reservoir sampling, deterministic for a given seed, and
//! dependency-free.  It is **not** a cryptographic generator and makes no
//! attempt to produce the same streams as the real `rand` crate.

use std::ops::{Range, RangeInclusive};

/// Types that can be sampled uniformly from the generator's raw output
/// (the `Standard` distribution of the real crate).
pub trait Standard: Sized {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 random mantissa bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges that can be sampled uniformly (`SampleRange` of the real crate).
pub trait SampleRange {
    /// The element type produced.
    type Output;
    /// Draws one value from the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}
impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let u = <$t as Standard>::sample(rng);
                self.start + u * (self.end - self.start)
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "cannot sample empty range");
                let u = <$t as Standard>::sample(rng);
                lo + u * (hi - lo)
            }
        }
    )*};
}
impl_sample_range_float!(f32, f64);

/// The raw-output half of the generator interface.
pub trait RngCore {
    /// Produces the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// High-level sampling methods, blanket-implemented over [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value of type `T` from the standard distribution.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T: SampleRange>(&mut self, range: T) -> T::Output
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        <f64 as Standard>::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seedable construction (the only constructor this workspace uses).
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard generator: SplitMix64 (deterministic per seed).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..16 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn ranges_are_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let i = rng.gen_range(3..10i64);
            assert!((3..10).contains(&i));
            let u = rng.gen_range(0..=5usize);
            assert!(u <= 5);
            let f = rng.gen_range(0.25..0.75f64);
            assert!((0.25..0.75).contains(&f));
            let s = rng.gen::<f64>();
            assert!((0.0..1.0).contains(&s));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(1);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "got {hits}");
    }

    #[test]
    fn uniform_mean_is_centred() {
        let mut rng = StdRng::seed_from_u64(9);
        let mean: f64 = (0..10_000).map(|_| rng.gen::<f64>()).sum::<f64>() / 10_000.0;
        assert!((0.48..0.52).contains(&mean), "mean {mean}");
    }
}
