//! Offline stand-in for the `criterion` crate (no crates.io access in the
//! build container).
//!
//! Implements the subset of the criterion 0.5 API the workspace's benches
//! use: [`Criterion::benchmark_group`], [`BenchmarkGroup::bench_function`],
//! [`BenchmarkGroup::bench_with_input`], [`BenchmarkId`], [`black_box`] and
//! the [`criterion_group!`] / [`criterion_main!`] macros.  Instead of
//! criterion's statistical machinery it times a fixed wall-clock window per
//! benchmark and prints mean ns/iteration — enough to compare operators and
//! catch large regressions without any external dependency.

use std::fmt::Write as _;
use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`] under criterion's name.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// A benchmark identifier: `function_id/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id with a function name and a parameter rendering.
    pub fn new(function_id: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        let mut id = function_id.into();
        let _ = write!(id, "/{parameter}");
        BenchmarkId { id }
    }

    /// An id that is just a parameter rendering.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_owned() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Passed to the closure under measurement; drives the timed iterations.
pub struct Bencher {
    /// Accumulated (total_elapsed, iterations) after `iter` returns.
    result: Option<(Duration, u64)>,
    budget: Duration,
}

impl Bencher {
    /// Times `f` repeatedly within the measurement budget.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // One untimed warm-up iteration.
        black_box(f());
        let mut iters = 0u64;
        let start = Instant::now();
        let mut elapsed = Duration::ZERO;
        while elapsed < self.budget || iters == 0 {
            black_box(f());
            iters += 1;
            elapsed = start.elapsed();
            if iters >= 1_000_000 {
                break;
            }
        }
        self.result = Some((elapsed, iters));
    }
}

fn run_one(group: &str, id: &BenchmarkId, budget: Duration, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher {
        result: None,
        budget,
    };
    f(&mut b);
    match b.result {
        Some((elapsed, iters)) => {
            let per_iter = elapsed.as_nanos() as f64 / iters as f64;
            println!(
                "bench {group}/{}: {per_iter:.0} ns/iter ({iters} iterations)",
                id.id
            );
        }
        None => println!(
            "bench {group}/{}: no measurement (iter was never called)",
            id.id
        ),
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    budget: Duration,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; this harness keys effort on wall
    /// clock, not sample counts, so smaller sample sizes shrink the budget.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        if n <= 10 {
            self.budget = Duration::from_millis(20);
        }
        self
    }

    /// Accepted for API compatibility (no-op).
    pub fn measurement_time(&mut self, budget: Duration) -> &mut Self {
        self.budget = budget.min(Duration::from_millis(200));
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&self.name, &id.into(), self.budget, &mut f);
        self
    }

    /// Runs one benchmark parameterised by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_one(&self.name, &id.into(), self.budget, &mut |b| f(b, input));
        self
    }

    /// Finishes the group (no-op; provided for API compatibility).
    pub fn finish(&mut self) {}
}

/// The benchmark harness entry point.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            budget: Duration::from_millis(50),
            _criterion: self,
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one("bench", &id.into(), Duration::from_millis(50), &mut f);
        self
    }

    /// Accepted for API compatibility (command-line arguments are ignored).
    pub fn configure_from_args(self) -> Self {
        self
    }
}

/// Declares a group function running each target against one [`Criterion`].
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_reports_iterations() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.sample_size(10);
        let mut ran = 0u64;
        group.bench_function("count", |b| b.iter(|| ran += 1));
        group.finish();
        assert!(ran > 0);
    }

    #[test]
    fn benchmark_ids_render() {
        assert_eq!(BenchmarkId::new("f", 3).id, "f/3");
        assert_eq!(BenchmarkId::from_parameter("x").id, "x");
        assert_eq!(BenchmarkId::from("s").id, "s");
    }
}
