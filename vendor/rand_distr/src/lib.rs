//! Offline stand-in for the `rand_distr` crate (no crates.io access in the
//! build container).  Provides [`Normal`] via the Box–Muller transform and
//! the [`Distribution`] trait, which is all this workspace uses.

use rand::{Rng, RngCore};

/// A distribution that can be sampled with any [`rand::Rng`].
pub trait Distribution<T> {
    /// Draws one value.
    fn sample<R: RngCore>(&self, rng: &mut R) -> T;
}

/// Error returned for invalid normal parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NormalError {
    /// The standard deviation was negative or not finite.
    BadVariance,
    /// The mean was not finite.
    MeanTooSmall,
}

impl std::fmt::Display for NormalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NormalError::BadVariance => write!(f, "standard deviation must be finite and >= 0"),
            NormalError::MeanTooSmall => write!(f, "mean must be finite"),
        }
    }
}

impl std::error::Error for NormalError {}

/// The normal (Gaussian) distribution `N(mean, std_dev²)`.
#[derive(Debug, Clone, Copy)]
pub struct Normal {
    mean: f64,
    std_dev: f64,
}

impl Normal {
    /// Creates a normal distribution; `std_dev` must be finite and
    /// non-negative.
    pub fn new(mean: f64, std_dev: f64) -> Result<Normal, NormalError> {
        if !mean.is_finite() {
            return Err(NormalError::MeanTooSmall);
        }
        if !std_dev.is_finite() || std_dev < 0.0 {
            return Err(NormalError::BadVariance);
        }
        Ok(Normal { mean, std_dev })
    }
}

impl Distribution<f64> for Normal {
    fn sample<R: RngCore>(&self, rng: &mut R) -> f64 {
        // Box–Muller: two uniforms → one standard normal deviate.
        let mut u1: f64 = rng.gen();
        while u1 <= f64::MIN_POSITIVE {
            u1 = rng.gen();
        }
        let u2: f64 = rng.gen();
        let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        self.mean + self.std_dev * z
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn rejects_bad_parameters() {
        assert!(Normal::new(0.0, -1.0).is_err());
        assert!(Normal::new(f64::NAN, 1.0).is_err());
        assert!(Normal::new(0.0, 0.0).is_ok());
    }

    #[test]
    fn sample_moments_are_plausible() {
        let n = Normal::new(0.5, 0.4).unwrap();
        let mut rng = StdRng::seed_from_u64(11);
        let samples: Vec<f64> = (0..20_000).map(|_| n.sample(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / samples.len() as f64;
        assert!((0.47..0.53).contains(&mean), "mean {mean}");
        assert!((0.14..0.18).contains(&var), "variance {var}");
    }
}
