//! Failure-injection tests: malformed queries, dangling references and bad
//! inputs must surface as `Err(RankSqlError::…)` — never as panics and never
//! as silently wrong answers.  The kill-and-recover harness at the bottom
//! goes further: it aborts a whole child process mid-insert-burst and
//! asserts the paged backend reopens at the last durable epoch.

use ranksql::{
    parse_topk_query, BoolExpr, DataType, Database, Field, PlanMode, QueryBuilder, RankPredicate,
    RankSqlError, Schema, Value,
};

const ALL_MODES: [PlanMode; 5] = [
    PlanMode::Canonical,
    PlanMode::Traditional,
    PlanMode::RankAware,
    PlanMode::RankAwareExhaustive,
    PlanMode::RankAwareRuleBased,
];

fn small_db() -> Database {
    let db = Database::new();
    db.create_table(
        "T",
        Schema::new(vec![
            Field::new("id", DataType::Int64),
            Field::new("jc", DataType::Int64),
            Field::new("p", DataType::Float64),
        ]),
    )
    .unwrap();
    db.create_table(
        "U",
        Schema::new(vec![
            Field::new("id", DataType::Int64),
            Field::new("jc", DataType::Int64),
            Field::new("q", DataType::Float64),
        ]),
    )
    .unwrap();
    for i in 0..30i64 {
        db.insert(
            "T",
            vec![Value::from(i), Value::from(i % 5), Value::from(0.5)],
        )
        .unwrap();
        db.insert(
            "U",
            vec![Value::from(i), Value::from(i % 5), Value::from(0.25)],
        )
        .unwrap();
    }
    db
}

#[test]
fn query_over_a_missing_table_is_an_error_in_every_mode() {
    let db = small_db();
    let query = QueryBuilder::new()
        .table("DoesNotExist")
        .rank_predicate(RankPredicate::attribute("p", "DoesNotExist.p"))
        .limit(1)
        .build()
        .unwrap();
    for mode in ALL_MODES {
        let err = db.execute_with_mode(&query, mode);
        assert!(
            err.is_err(),
            "mode {mode:?} should fail for a missing table"
        );
    }
}

#[test]
fn ranking_predicate_over_a_missing_column_is_an_error() {
    let db = small_db();
    let query = QueryBuilder::new()
        .table("T")
        .rank_predicate(RankPredicate::attribute("ghost", "T.no_such_column"))
        .limit(1)
        .build()
        .unwrap();
    for mode in ALL_MODES {
        let err = db.execute_with_mode(&query, mode);
        assert!(
            err.is_err(),
            "mode {mode:?} should fail for a dangling ranking predicate"
        );
    }
}

#[test]
fn boolean_predicate_over_a_missing_column_is_an_error() {
    let db = small_db();
    let query = QueryBuilder::new()
        .tables(["T", "U"])
        .filter(BoolExpr::col_eq_col("T.jc", "U.missing"))
        .rank_predicate(RankPredicate::attribute("p", "T.p"))
        .limit(1)
        .build()
        .unwrap();
    for mode in ALL_MODES {
        let err = db.execute_with_mode(&query, mode);
        assert!(
            err.is_err(),
            "mode {mode:?} should fail for a dangling Boolean predicate"
        );
    }
}

#[test]
fn insert_arity_mismatch_is_rejected() {
    let db = small_db();
    let err = db.insert("T", vec![Value::from(1)]);
    assert!(matches!(err, Err(RankSqlError::Catalog(_))), "got {err:?}");
    // The failed insert must not have modified the table.
    assert_eq!(db.catalog().table("T").unwrap().row_count(), 30);
    // A batch fails on the first bad row and reports an error.
    let err = db.insert_batch(
        "T",
        vec![
            vec![Value::from(99), Value::from(0), Value::from(0.1)],
            vec![Value::from(1)],
        ],
    );
    assert!(err.is_err());
}

#[test]
fn inserting_into_a_missing_table_is_rejected() {
    let db = small_db();
    assert!(db.insert("Nope", vec![Value::from(1)]).is_err());
    assert!(db.catalog().table("Nope").is_err());
}

#[test]
fn creating_a_duplicate_table_is_rejected() {
    let db = small_db();
    let err = db.create_table("T", Schema::new(vec![Field::new("x", DataType::Int64)]));
    assert!(err.is_err(), "duplicate table creation should fail");
    // The original table is untouched.
    assert_eq!(db.catalog().table("T").unwrap().schema().len(), 3);
}

#[test]
fn builder_rejects_incomplete_queries() {
    // No table.
    assert!(QueryBuilder::new().limit(1).build().is_err());
    // No LIMIT.
    assert!(QueryBuilder::new().table("T").build().is_err());
    // Weighted-sum arity mismatch.
    assert!(QueryBuilder::new()
        .table("T")
        .rank_predicate(RankPredicate::attribute("p", "T.p"))
        .scoring(ranksql::ScoringFunction::weighted_sum(vec![1.0, 2.0]))
        .limit(1)
        .build()
        .is_err());
}

#[test]
fn parser_rejects_malformed_sql() {
    for bad in [
        "",
        "SELECT",
        "SELECT * FROM",
        "SELECT * FROM T",                        // no LIMIT: not a top-k query
        "SELECT * FROM T ORDER BY LIMIT 5",       // empty ranking expression
        "SELECT * FROM T ORDER BY T.p LIMIT",     // missing k
        "SELECT * FROM T ORDER BY T.p LIMIT -3",  // negative k
        "SELECT * FROM T ORDER BY T.p LIMIT abc", // non-numeric k
        "FROM T ORDER BY p LIMIT 1",              // missing SELECT
        "SELECT * FROM T LIMIT 5 ORDER BY T.p",   // LIMIT before ORDER BY
        "SELECT * FROM T ORDER BY T.p LIMIT 2 WHERE T.a", // WHERE after ORDER BY
        "SELECT * WHERE T.a FROM T ORDER BY T.p LIMIT 1", // WHERE before FROM
    ] {
        assert!(parse_topk_query(bad).is_err(), "`{bad}` should not parse");
    }
}

#[test]
fn parsed_query_against_wrong_schema_fails_cleanly() {
    let db = small_db();
    // Parses fine but references a column the catalog does not have.
    let query = parse_topk_query("SELECT * FROM T ORDER BY T.ghost LIMIT 2").unwrap();
    for mode in ALL_MODES {
        assert!(db.execute_with_mode(&query, mode).is_err(), "mode {mode:?}");
    }
}

#[test]
fn errors_are_reported_not_panicked_for_mixed_type_scores() {
    // A ranking predicate over a string column: evaluation clamps non-numeric
    // scores to 0.0 rather than failing, so the query still succeeds and the
    // string-scored rows sort last.  This documents (and pins) the lenient
    // behaviour.
    let db = Database::new();
    db.create_table(
        "S",
        Schema::new(vec![
            Field::new("id", DataType::Int64),
            Field::new("p", DataType::Utf8),
        ]),
    )
    .unwrap();
    db.insert("S", vec![Value::from(1), Value::from("not a number")])
        .unwrap();
    db.insert("S", vec![Value::from(2), Value::from("0.9")])
        .unwrap();
    let query = QueryBuilder::new()
        .table("S")
        .rank_predicate(RankPredicate::attribute("p", "S.p"))
        .limit(2)
        .build()
        .unwrap();
    let r = db.execute_with_mode(&query, PlanMode::Canonical).unwrap();
    assert_eq!(r.rows.len(), 2);
    assert!(r.scores().iter().all(|s| (0.0..=1.0).contains(s)));
}

#[test]
fn optimizer_rejects_more_relations_than_the_dp_supports() {
    let db = Database::new();
    let mut builder = QueryBuilder::new();
    for i in 0..13 {
        let name = format!("T{i}");
        db.create_table(&name, Schema::new(vec![Field::new("x", DataType::Int64)]))
            .unwrap();
        db.insert(&name, vec![Value::from(1)]).unwrap();
        builder = builder.table(name);
    }
    let query = builder.limit(1).build().unwrap();
    let err = db.execute_with_mode(&query, PlanMode::RankAwareExhaustive);
    assert!(
        err.is_err(),
        "13-way join should exceed the DP's relation limit"
    );
}

#[test]
fn failed_execution_leaves_the_database_usable() {
    let db = small_db();
    let bad = QueryBuilder::new()
        .table("T")
        .rank_predicate(RankPredicate::attribute("ghost", "T.no_such_column"))
        .limit(1)
        .build()
        .unwrap();
    assert!(db.execute(&bad).is_err());

    // A correct query right after the failure still works.
    let good = QueryBuilder::new()
        .table("T")
        .rank_predicate(RankPredicate::attribute("p", "T.p"))
        .limit(3)
        .build()
        .unwrap();
    let r = db.execute(&good).unwrap();
    assert_eq!(r.rows.len(), 3);
}

#[test]
fn erroring_parallel_worker_surfaces_a_clean_query_error_and_no_deadlock() {
    // A tuple budget that trips mid-morsel makes workers fail while others
    // are still running: the failure must surface as one clean
    // `RankSqlError` — never a deadlock, never partial results.
    let db = small_db();
    let session = db.session().with_threads(4);
    let query = QueryBuilder::new()
        .tables(["T", "U"])
        .filter(BoolExpr::col_eq_col("T.jc", "U.jc"))
        .rank_predicate(RankPredicate::attribute("p", "T.p"))
        .rank_predicate(RankPredicate::attribute("q", "U.q"))
        .limit(3)
        .build()
        .unwrap();
    let physical = session
        .with_mode(PlanMode::Canonical)
        .plan(&query)
        .unwrap()
        .physical;
    assert!(physical.contains_exchange(), "{}", physical.explain(None));

    // Both tables have 30 rows.  A budget of 45 survives the build-side
    // materialisation (30 tuples, drained once during exchange preparation)
    // and trips *inside the probe-side morsel workers* — the scenario this
    // test is about: concurrent workers failing mid-morsel.
    let exec = ranksql::executor::ExecutionContext::with_budget(query.ranking.clone(), 45)
        .with_threads(4)
        .with_morsel_size(4);
    let err = ranksql::executor::execute_physical_plan(&physical, db.catalog(), &exec).unwrap_err();
    assert!(matches!(err, RankSqlError::Execution(_)), "{err:?}");
    assert!(err.to_string().contains("tuple budget exceeded"), "{err}");

    // The database (and the same plan) stays fully usable afterwards.
    let r = db.execute_physical(&query, &physical).unwrap();
    assert_eq!(r.rows.len(), 3);
}

#[test]
fn panicking_writer_leaves_the_table_readable_at_its_last_epoch() {
    // A writer thread that dies mid-append must not leave torn state
    // behind: the table stays readable at the epoch of the last completed
    // insert, a cursor opened before the writer still streams its pinned
    // snapshot, the incrementally maintained statistics equal a cold
    // rebuild over the surviving rows, and the next insert succeeds.
    use ranksql::{Params, StorageBackend};

    let db = Database::new().with_storage_backend(StorageBackend::Columnar);
    db.create_table(
        "W",
        Schema::new(vec![
            Field::new("id", DataType::Int64),
            Field::new("p", DataType::Float64),
        ]),
    )
    .unwrap();
    let base = 900i64;
    for i in 0..base {
        db.insert(
            "W",
            vec![
                Value::from(i),
                Value::from(((i * 37) % 1000) as f64 / 1000.0),
            ],
        )
        .unwrap();
    }
    // Prime the incrementally maintained caches, so the writer's appends
    // run through the extend paths (stats delta + seal, columnar reseal).
    let t = db.catalog().table("W").unwrap();
    let _ = t.stats_catalog();
    let _ = t.columnar();

    let query = QueryBuilder::new()
        .table("W")
        .rank_predicate(RankPredicate::attribute("p", "W.p"))
        .limit(10)
        .build()
        .unwrap();
    let session = db.session();
    let eager = session.execute(&query).unwrap();
    // A cursor opened before the writer starts: pinned at 900 rows.
    let mut cursor = session
        .prepare_query(query.clone())
        .unwrap()
        .bind(Params::none())
        .unwrap()
        .cursor()
        .unwrap();

    // The writer appends 200 rows — sealing a columnar block and a stats
    // block as the table crosses 1024 rows — then panics in its append
    // loop (an `unwrap` on a row the table rejects).
    let written = 200i64;
    let joined = std::thread::scope(|s| {
        s.spawn(|| {
            for i in 0..written {
                db.insert(
                    "W",
                    vec![
                        Value::from(base + i),
                        Value::from(((i * 61) % 1000) as f64 / 1000.0),
                    ],
                )
                .unwrap();
            }
            db.insert("W", vec![Value::from(-1)]).unwrap();
        })
        .join()
    });
    assert!(joined.is_err(), "the writer must have panicked");

    // The last epoch holds exactly the completed appends — no torn delta.
    let t = db.catalog().table("W").unwrap();
    assert_eq!(t.row_count(), (base + written) as usize);

    // The pre-panic cursor still streams its pinned 900-row snapshot.
    let streamed = cursor.drain().unwrap();
    let ids = |rows: &[ranksql::expr::RankedTuple]| -> Vec<_> {
        rows.iter().map(|r| r.tuple.id().clone()).collect()
    };
    assert_eq!(ids(&streamed), ids(&eager.rows));

    // The statistics catalog the writer was extending equals a cold
    // rebuild over the rows that actually survived.
    let rebuilt = {
        let cat = ranksql::storage::Catalog::new();
        let w = cat.create_table("W", t.schema().clone()).unwrap();
        for tup in t.scan() {
            w.insert(tup.values().to_vec()).unwrap();
        }
        w.stats_catalog()
    };
    assert_eq!(t.cached_stats().unwrap(), rebuilt);

    // New cursors see the full surviving table, and the next insert
    // succeeds and is immediately visible — in every plan mode.
    let count_query = QueryBuilder::new()
        .table("W")
        .rank_predicate(RankPredicate::attribute("p", "W.p"))
        .limit(5000)
        .build()
        .unwrap();
    assert_eq!(
        session.execute(&count_query).unwrap().rows.len(),
        (base + written) as usize
    );
    db.insert("W", vec![Value::from(9999), Value::from(0.5)])
        .unwrap();
    for mode in ALL_MODES {
        let r = db.execute_with_mode(&count_query, mode).unwrap();
        assert_eq!(
            r.rows.len(),
            (base + written) as usize + 1,
            "mode {mode:?} misses rows after the writer panic"
        );
    }
}

/// Satellite regression: a cursor pinned *before* an insert burst must
/// stream exactly its pinned snapshot — rows appended after the pin are
/// invisible, and any read the executor would issue past the pinned
/// watermark surfaces as a stale-read error instead of leaking fresh data.
#[test]
fn cursor_pinned_before_a_burst_streams_its_snapshot_and_late_reads_are_stale() {
    use ranksql::{Params, StorageBackend};

    let db = Database::new().with_storage_backend(StorageBackend::Columnar);
    db.create_table(
        "B",
        Schema::new(vec![
            Field::new("id", DataType::Int64),
            Field::new("p", DataType::Float64),
        ]),
    )
    .unwrap();
    let base = 1200i64;
    db.insert_batch(
        "B",
        (0..base).map(|i| {
            vec![
                Value::from(i),
                Value::from(((i * 37) % 1000) as f64 / 1000.0),
            ]
        }),
    )
    .unwrap();

    let query = QueryBuilder::new()
        .table("B")
        .rank_predicate(RankPredicate::attribute("p", "B.p"))
        .limit(10)
        .build()
        .unwrap();
    let session = db.session();
    let eager = session.execute(&query).unwrap();

    // Pin a cursor (rank-aware: the plan reads through the table's rank
    // index, the path the watermark guard protects), then burst 2000 rows
    // past it — enough to seal new columnar blocks and grow every index.
    let mut cursor = session
        .prepare_query(query.clone())
        .unwrap()
        .bind(Params::none())
        .unwrap()
        .cursor()
        .unwrap();
    db.insert_batch(
        "B",
        (base..base + 2000).map(|i| vec![Value::from(i), Value::from(1.0)]),
    )
    .unwrap();

    // The burst rows all score 1.0 — better than everything in the
    // snapshot.  A cursor leaking past its watermark would surface them;
    // the pinned cursor must return the pre-burst top-10 instead.
    let streamed = cursor.drain().unwrap();
    let ids = |rows: &[ranksql::expr::RankedTuple]| -> Vec<_> {
        rows.iter().map(|r| r.tuple.id().clone()).collect()
    };
    assert_eq!(
        ids(&streamed),
        ids(&eager.rows),
        "snapshot leaked the burst"
    );

    // The guard itself: reading past a pinned watermark is an explicit
    // stale-read error, not silent fresh data.
    let table = db.catalog().table("B").unwrap();
    let watermark = base as usize;
    assert!(table.tuple_within(0, watermark).is_ok());
    assert!(table.tuple_within(base as u64 - 1, watermark).is_ok());
    let err = table
        .tuple_within(base as u64, watermark)
        .expect_err("reads at or past the watermark must fail");
    assert!(err.to_string().contains("stale"), "{err}");
    let err = table
        .tuple_within(base as u64 + 500, watermark)
        .unwrap_err();
    assert!(err.to_string().contains("stale"), "{err}");
}

/// Environment variable that flips this test binary into "victim" mode: the
/// kill-and-recover harness re-invokes itself with this set, and the child
/// half aborts the whole process mid-burst.
const KILL_DIR_ENV: &str = "RANKSQL_KILL_AND_RECOVER_DIR";

/// Deterministic row generator shared by the victim and the verifier.
fn kill_row(i: i64) -> Vec<Value> {
    vec![
        Value::from(i),
        Value::from(((i * 37 + 11) % 1000) as f64 / 1000.0),
    ]
}

/// Kill-and-recover: a child process inserts a 3000-row burst into a paged
/// database and `abort()`s without any orderly shutdown.  Reopening the
/// directory must land on the last durable epoch: at least everything up to
/// the last sealed-block fsync boundary (row 2048), never a torn or
/// reordered prefix, and the recovered table must answer queries
/// byte-identically to in-memory backends loaded with the same rows.
#[test]
fn killed_writer_process_recovers_to_the_last_durable_epoch() {
    use ranksql::StorageBackend;

    // ---- child half: populate and die. -----------------------------------
    if let Ok(dir) = std::env::var(KILL_DIR_ENV) {
        let db = Database::open_paged(&dir).unwrap();
        db.create_table(
            "K",
            Schema::new(vec![
                Field::new("id", DataType::Int64),
                Field::new("p", DataType::Float64),
            ]),
        )
        .unwrap();
        for i in 0..3000i64 {
            db.insert("K", kill_row(i)).unwrap();
        }
        // No drop, no flush, no unwinding — the process dies right here,
        // with 952 rows past the last seal boundary sitting in the WAL.
        std::process::abort();
    }

    // ---- parent half: spawn the victim, then verify recovery. ------------
    let dir = std::env::temp_dir().join(format!("ranksql-kill-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let status = std::process::Command::new(std::env::current_exe().unwrap())
        .arg("killed_writer_process_recovers_to_the_last_durable_epoch")
        .arg("--exact")
        .arg("--nocapture")
        .env(KILL_DIR_ENV, &dir)
        .status()
        .unwrap();
    assert!(!status.success(), "the victim child must have aborted");

    let db = Database::open_paged(&dir).unwrap();
    let table = db.catalog().table("K").unwrap();
    let recovered = table.row_count();
    // Everything up to the last WAL fsync (the 2048-row seal boundary) is
    // guaranteed; rows beyond it survive exactly as far as their appends
    // reached the OS, but never torn and never beyond what was inserted.
    assert!(
        (2048..=3000).contains(&recovered),
        "recovered {recovered} rows, durable floor is 2048"
    );
    // Prefix equality: recovery must yield *the* inserted rows, in order.
    for (i, tuple) in table.scan().iter().enumerate() {
        assert_eq!(
            tuple.values(),
            kill_row(i as i64).as_slice(),
            "row {i} diverged after recovery"
        );
    }

    // The recovered table answers queries byte-identically to in-memory
    // row and columnar databases loaded with the same recovered prefix.
    let query = QueryBuilder::new()
        .table("K")
        .rank_predicate(RankPredicate::attribute("p", "K.p"))
        .limit(7)
        .build()
        .unwrap();
    let fingerprint = |db: &Database| {
        let r = db
            .session()
            .with_mode(PlanMode::Traditional)
            .with_threads(1)
            .execute(&query)
            .unwrap();
        r.rows
            .iter()
            .map(|t| t.tuple.clone())
            .zip(r.scores())
            .collect::<Vec<_>>()
    };
    let reference = {
        let mem = Database::new();
        mem.create_table("K", table.schema().clone()).unwrap();
        mem.insert_batch("K", (0..recovered as i64).map(kill_row))
            .unwrap();
        fingerprint(&mem)
    };
    let columnar = {
        let mem = Database::new().with_storage_backend(StorageBackend::Columnar);
        mem.create_table("K", table.schema().clone()).unwrap();
        mem.insert_batch("K", (0..recovered as i64).map(kill_row))
            .unwrap();
        fingerprint(&mem)
    };
    assert_eq!(fingerprint(&db), reference, "paged vs row diverged");
    assert_eq!(columnar, reference, "columnar vs row diverged");

    // And the recovered database accepts further writes that persist.
    db.insert("K", kill_row(recovered as i64)).unwrap();
    drop(db);
    let db = Database::open_paged(&dir).unwrap();
    assert_eq!(
        db.catalog().table("K").unwrap().row_count(),
        recovered + 1,
        "post-recovery insert lost on the second reopen"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn panicking_worker_becomes_an_error_and_the_pool_is_reusable() {
    // The worker pool converts a panicking task into a clean execution
    // error, cancels the rest of the run, and — being stateless — keeps
    // working for the next query.
    let pool = ranksql::common::WorkerPool::new(4);
    let err = pool
        .run(32, |i| {
            if i == 5 {
                panic!("injected mid-morsel panic");
            }
            Ok(i)
        })
        .unwrap_err();
    assert!(matches!(err, RankSqlError::Execution(_)), "{err:?}");
    assert!(err.to_string().contains("worker thread panicked"), "{err}");
    assert!(
        err.to_string().contains("injected mid-morsel panic"),
        "{err}"
    );

    let out = pool.run(4, |i| Ok(i * 10)).unwrap();
    assert_eq!(out, vec![0, 10, 20, 30]);

    // And a real parallel query through the same machinery still succeeds.
    let db = small_db();
    let query = QueryBuilder::new()
        .table("T")
        .rank_predicate(RankPredicate::attribute("p", "T.p"))
        .limit(2)
        .build()
        .unwrap();
    let r = db
        .session()
        .with_mode(PlanMode::Canonical)
        .with_threads(4)
        .execute(&query)
        .unwrap();
    assert_eq!(r.rows.len(), 2);
}
