//! Streaming `Cursor` execution ≡ eager `QueryResult` execution.
//!
//! The Session/prepared-statement/Cursor API must be a pure *consumption*
//! choice: pulling a result incrementally — in arbitrary chunk sizes,
//! under any plan mode, any thread count and any batch size — must yield
//! exactly the rows (same tuples, same order, same scores) of the eager
//! `execute` path, including across mid-stream `fetch_more` extensions on
//! plans that support them.  A second group of tests pins the *laziness*
//! contract itself: `take(k)` on an incremental rank-aware plan consumes
//! strictly fewer scan tuples than a full drain, and far fewer than the
//! table cardinality (the paper's Property 1 pay-off, surfaced through the
//! public API).

use proptest::prelude::*;

use ranksql::algebra::PhysicalPlan;
use ranksql::expr::{RankPredicate, RankedTuple};
use ranksql::{
    BoolExpr, DataType, Database, Field, JoinAlgorithm, LogicalPlan, Params, PlanMode,
    QueryBuilder, RankQuery, Schema, Value,
};

const ALL_MODES: [PlanMode; 5] = [
    PlanMode::Canonical,
    PlanMode::Traditional,
    PlanMode::RankAware,
    PlanMode::RankAwareExhaustive,
    PlanMode::RankAwareRuleBased,
];

const THREAD_COUNTS: [usize; 2] = [1, 4];

/// A randomly generated two-table join workload plus consumption knobs.
#[derive(Debug, Clone)]
struct Workload {
    /// Rows of table R: (join column, p1 score, boolean flag).
    r_rows: Vec<(i64, f64, bool)>,
    /// Rows of table S: (join column, p2 score).
    s_rows: Vec<(i64, f64)>,
    /// Requested result size.
    k: usize,
    /// Batch size for the session.
    batch_size: usize,
    /// Chunk sizes the cursor is pulled with (cycled).
    chunks: Vec<usize>,
}

fn workload() -> impl Strategy<Value = Workload> {
    (
        proptest::collection::vec((0..6i64, 0.0..1.0f64, any::<bool>()), 1..25),
        proptest::collection::vec((0..6i64, 0.0..1.0f64), 1..25),
        1..10usize,
        1..256usize,
        proptest::collection::vec(1..7usize, 1..5),
    )
        .prop_map(|(r_rows, s_rows, k, batch_size, chunks)| Workload {
            r_rows,
            s_rows,
            k,
            batch_size,
            chunks,
        })
}

fn build_database(w: &Workload) -> (Database, RankQuery) {
    let db = Database::new();
    db.create_table(
        "R",
        Schema::new(vec![
            Field::new("jc", DataType::Int64),
            Field::new("p1", DataType::Float64),
            Field::new("flag", DataType::Bool),
        ]),
    )
    .unwrap();
    db.create_table(
        "S",
        Schema::new(vec![
            Field::new("jc", DataType::Int64),
            Field::new("p2", DataType::Float64),
        ]),
    )
    .unwrap();
    db.insert_batch(
        "R",
        w.r_rows
            .iter()
            .map(|&(jc, p1, flag)| vec![Value::from(jc), Value::from(p1), Value::from(flag)]),
    )
    .unwrap();
    db.insert_batch(
        "S",
        w.s_rows
            .iter()
            .map(|&(jc, p2)| vec![Value::from(jc), Value::from(p2)]),
    )
    .unwrap();
    let query = QueryBuilder::new()
        .tables(["R", "S"])
        .filter(BoolExpr::col_eq_col("R.jc", "S.jc"))
        .rank_predicate(RankPredicate::attribute("p1", "R.p1"))
        .rank_predicate(RankPredicate::attribute("p2", "S.p2"))
        .limit(w.k)
        .build()
        .unwrap();
    (db, query)
}

/// `(tuple id, score)` fingerprint of an ordered result.
fn fingerprint(query: &RankQuery, tuples: &[RankedTuple]) -> Vec<(ranksql::Tuple, f64)> {
    tuples
        .iter()
        .map(|t| (t.tuple.clone(), query.ranking.upper_bound(&t.state).value()))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 8, .. ProptestConfig::default() })]

    /// Cursor streaming (in random chunk sizes) ≡ eager execution, for all
    /// five plan modes × threads {1, 4} × random batch sizes.
    #[test]
    fn cursor_stream_equals_eager_execution(w in workload()) {
        let (db, query) = build_database(&w);
        for mode in ALL_MODES {
            for threads in THREAD_COUNTS {
                let session = db
                    .session()
                    .with_mode(mode)
                    .with_threads(threads)
                    .with_batch_size(w.batch_size);
                let eager = session.execute(&query).unwrap();
                let reference = fingerprint(&query, &eager.rows);

                let mut cursor = session
                    .prepare_query(query.clone())
                    .unwrap()
                    .bind(Params::none())
                    .unwrap()
                    .cursor()
                    .unwrap();
                let mut streamed = Vec::new();
                let mut i = 0;
                while !cursor.is_exhausted() {
                    let chunk = w.chunks[i % w.chunks.len()];
                    i += 1;
                    streamed.extend(cursor.take(chunk).unwrap());
                }
                prop_assert_eq!(
                    &fingerprint(&query, &streamed),
                    &reference,
                    "mode {:?}, threads {}, batch {}: streamed != eager",
                    mode,
                    threads,
                    w.batch_size
                );
            }
        }
    }

    /// Mid-stream `fetch_more` extensions: whenever a plan supports
    /// extension, (original stream + extensions) must equal the canonical
    /// top-(k + extra) answer byte for byte.  Plans that refuse must do so
    /// with a clean error and leave the already-returned rows valid.
    #[test]
    fn fetch_more_extends_to_the_canonical_answer(w in workload(), extras in proptest::collection::vec(1..4usize, 1..3)) {
        let (db, query) = build_database(&w);
        for mode in ALL_MODES {
            for threads in THREAD_COUNTS {
                let session = db
                    .session()
                    .with_mode(mode)
                    .with_threads(threads)
                    .with_batch_size(w.batch_size);
                let mut cursor = session
                    .prepare_query(query.clone())
                    .unwrap()
                    .bind(Params::none())
                    .unwrap()
                    .cursor()
                    .unwrap();
                let mut rows = cursor.drain().unwrap();
                let mut extended = 0usize;
                for &extra in &extras {
                    match cursor.fetch_more(extra) {
                        Ok(more) => {
                            extended += extra;
                            rows.extend(more);
                        }
                        Err(e) => {
                            prop_assert!(
                                e.to_string().contains("cannot extend"),
                                "unexpected fetch_more error: {e}"
                            );
                        }
                    }
                }
                // Reference: one canonical execution asking for k + extended
                // up front (all modes share the deterministic total order).
                let mut q_ref = query.clone();
                q_ref.k = w.k + extended;
                let reference = db
                    .session()
                    .with_mode(PlanMode::Canonical)
                    .with_threads(1)
                    .execute(&q_ref)
                    .unwrap();
                prop_assert_eq!(
                    &fingerprint(&query, &rows),
                    &fingerprint(&q_ref, &reference.rows),
                    "mode {:?}, threads {}: stream + fetch_more({}) != canonical top-{}",
                    mode,
                    threads,
                    extended,
                    q_ref.k
                );
            }
        }
    }
}

/// The paper's HRJN example, through the public cursor: `take(k)` must not
/// drain the inputs — scan consumption stays below the table cardinality
/// and strictly below what a full drain consumes (the acceptance criterion).
#[test]
fn take_consumes_fewer_scan_tuples_than_a_drain() {
    let rows = 1_000i64;
    let db = Database::new();
    for name in ["H", "R"] {
        db.create_table(
            name,
            Schema::new(vec![
                Field::new("id", DataType::Int64),
                Field::new("city", DataType::Int64),
                Field::new("score", DataType::Float64),
            ]),
        )
        .unwrap();
        let salt = if name == "H" { 0 } else { 13 };
        db.insert_batch(
            name,
            (0..rows).map(|i| {
                vec![
                    Value::from(i),
                    Value::from(i % 25),
                    Value::from(((i * 37 + salt) % 1000) as f64 / 1000.0),
                ]
            }),
        )
        .unwrap();
    }
    let query = QueryBuilder::new()
        .tables(["H", "R"])
        .filter(BoolExpr::col_eq_col("H.city", "R.city"))
        .rank_predicate(RankPredicate::attribute("hq", "H.score"))
        .rank_predicate(RankPredicate::attribute("rr", "R.score"))
        .limit(200)
        .build()
        .unwrap();
    // The paper's pipelined ranking plan, explicitly: HRJN over two
    // rank-scans, capped by λ_k.
    let h = db.catalog().table("H").unwrap();
    let r = db.catalog().table("R").unwrap();
    let plan = LogicalPlan::rank_scan(&h, 0)
        .join(
            LogicalPlan::rank_scan(&r, 1),
            Some(BoolExpr::col_eq_col("H.city", "R.city")),
            JoinAlgorithm::HashRankJoin,
        )
        .limit(query.k);
    let physical = PhysicalPlan::from_logical(&plan).unwrap();

    let scan_tuples = |cursor: &ranksql::Cursor| -> u64 {
        cursor
            .metrics()
            .snapshot()
            .iter()
            .filter(|m| m.name().contains("Scan"))
            .map(|m| m.tuples_out())
            .sum()
    };

    // take(5): proportional to what the top-5 needed.
    let mut cursor = db.cursor_for_physical(&query, physical.clone()).unwrap();
    let top5 = cursor.take(5).unwrap();
    assert_eq!(top5.len(), 5);
    let taken = scan_tuples(&cursor);
    assert!(
        taken < 2 * rows as u64,
        "take(5) must not drain the scans: consumed {taken} of {} input tuples",
        2 * rows
    );

    // Full drain of the same plan consumes strictly more.
    let mut full = db.cursor_for_physical(&query, physical).unwrap();
    let all = full.drain().unwrap();
    assert_eq!(all.len(), query.k);
    let drained = scan_tuples(&full);
    assert!(
        taken < drained,
        "take(5) ({taken} scan tuples) must consume strictly fewer than a full drain ({drained})"
    );
    // And the streamed prefix is the drained prefix.
    for (t, d) in top5.iter().zip(all.iter()) {
        assert_eq!(t.tuple.id(), d.tuple.id());
    }
}

/// Re-executing a prepared query with new bindings records a plan-cache hit
/// (visible in `explain_analyze`) and produces byte-identical results to a
/// cold plan of the same binding.
#[test]
fn plan_cache_hits_are_byte_identical_and_visible() {
    let (db, _) = build_database(&Workload {
        r_rows: (0..40)
            .map(|i| (i % 6, ((i * 37 % 100) as f64) / 100.0, i % 3 != 0))
            .collect(),
        s_rows: (0..40)
            .map(|i| (i % 6, ((i * 61 % 100) as f64) / 100.0))
            .collect(),
        k: 5,
        batch_size: 64,
        chunks: vec![1],
    });
    let template = QueryBuilder::new()
        .tables(["R", "S"])
        .filter(BoolExpr::col_eq_col("R.jc", "S.jc"))
        .filter(BoolExpr::compare(
            ranksql::ScalarExpr::col("R.p1"),
            ranksql::CompareOp::Gt,
            ranksql::ScalarExpr::param(0),
        ))
        .rank_predicate(RankPredicate::attribute("p1", "R.p1"))
        .rank_predicate(RankPredicate::attribute("p2", "S.p2"))
        .limit(5)
        .build()
        .unwrap();
    let session = db.session();
    let prepared = session.prepare_query(template.clone()).unwrap();

    let cold = prepared
        .bind(Params::new().set(0, 0.2f64))
        .unwrap()
        .execute()
        .unwrap();
    assert!(!cold.plan_cache.unwrap().hit);

    // Same binding again: a hit, byte-identical rows.
    let hot = prepared
        .bind(Params::new().set(0, 0.2f64))
        .unwrap()
        .execute()
        .unwrap();
    assert!(hot.plan_cache.unwrap().hit);
    let ids = |r: &ranksql::QueryResult| -> Vec<_> {
        r.rows.iter().map(|t| t.tuple.id().clone()).collect()
    };
    assert_eq!(ids(&cold), ids(&hot));
    assert_eq!(cold.scores(), hot.scores());
    let analyzed = hot.explain_analyze(Some(&template.ranking));
    assert!(analyzed.starts_with("plan cache: hit"), "{analyzed}");

    // A different binding still hits (the key is value-independent) and a
    // from-scratch database (cold cache) agrees with it byte for byte.
    let rebound = prepared
        .bind(Params::new().set(0, 0.5f64))
        .unwrap()
        .execute()
        .unwrap();
    assert!(rebound.plan_cache.unwrap().hit);
    let (db2, _) = build_database(&Workload {
        r_rows: (0..40)
            .map(|i| (i % 6, ((i * 37 % 100) as f64) / 100.0, i % 3 != 0))
            .collect(),
        s_rows: (0..40)
            .map(|i| (i % 6, ((i * 61 % 100) as f64) / 100.0))
            .collect(),
        k: 5,
        batch_size: 64,
        chunks: vec![1],
    });
    let cold2 = db2
        .session()
        .prepare_query(template)
        .unwrap()
        .bind(Params::new().set(0, 0.5f64))
        .unwrap()
        .execute()
        .unwrap();
    assert!(!cold2.plan_cache.unwrap().hit);
    assert_eq!(ids(&rebound), ids(&cold2));
    assert_eq!(rebound.scores(), cold2.scores());

    let stats = db.plan_cache_stats();
    assert_eq!(stats.entries, 1);
    assert_eq!(stats.misses, 1);
    assert!(stats.hits >= 2);
}
