//! Property-based invariants of the RankSQL system, complementing
//! `plan_equivalence.rs`:
//!
//! 1. every optimizer mode (canonical, traditional, DP, DP + heuristics,
//!    rule-based) returns exactly the same top-k scores for random data;
//! 2. results are emitted in non-increasing final-score order and contain at
//!    most `k` rows;
//! 3. the order in which µ operators are scheduled never changes the result
//!    (Proposition 4's commutativity, verified physically);
//! 4. monotonic scoring functions honour the upper-bound contract of the
//!    Ranking Principle (Property 1): the maximal-possible score of a partial
//!    evaluation is never smaller than any completed score consistent with it;
//! 5. the SQL front end round-trips the structural parts of a query.

use proptest::prelude::*;

use ranksql::expr::{RankPredicate, RankingContext, ScoringFunction};
use ranksql::storage::Catalog;
use ranksql::{
    parse_topk_query, BoolExpr, DataType, Database, Field, PlanMode, QueryBuilder, RankQuery,
    Schema, Value,
};

// ---------------------------------------------------------------------------
// Generators
// ---------------------------------------------------------------------------

/// A randomly generated two-table join workload.
#[derive(Debug, Clone)]
struct JoinWorkload {
    /// Rows of table R: (join column, p1 score, boolean flag).
    r_rows: Vec<(i64, f64, bool)>,
    /// Rows of table S: (join column, p2 score, p3 score).
    s_rows: Vec<(i64, f64, f64)>,
    /// Requested result size.
    k: usize,
    /// Per-predicate simulated evaluation costs.
    costs: [u64; 3],
}

fn join_workload() -> impl Strategy<Value = JoinWorkload> {
    let r_row = (0..8i64, 0.0..1.0f64, any::<bool>());
    let s_row = (0..8i64, 0.0..1.0f64, 0.0..1.0f64);
    (
        proptest::collection::vec(r_row, 1..25),
        proptest::collection::vec(s_row, 1..25),
        1..12usize,
        (0..4u64, 0..4u64, 0..4u64),
    )
        .prop_map(|(r_rows, s_rows, k, (c0, c1, c2))| JoinWorkload {
            r_rows,
            s_rows,
            k,
            costs: [c0, c1, c2],
        })
}

fn build_database(w: &JoinWorkload) -> (Database, RankQuery) {
    let db = Database::new();
    db.create_table(
        "R",
        Schema::new(vec![
            Field::new("jc", DataType::Int64),
            Field::new("p1", DataType::Float64),
            Field::new("flag", DataType::Bool),
        ]),
    )
    .unwrap();
    db.create_table(
        "S",
        Schema::new(vec![
            Field::new("jc", DataType::Int64),
            Field::new("p2", DataType::Float64),
            Field::new("p3", DataType::Float64),
        ]),
    )
    .unwrap();
    for &(jc, p1, flag) in &w.r_rows {
        db.insert(
            "R",
            vec![Value::from(jc), Value::from(p1), Value::from(flag)],
        )
        .unwrap();
    }
    for &(jc, p2, p3) in &w.s_rows {
        db.insert("S", vec![Value::from(jc), Value::from(p2), Value::from(p3)])
            .unwrap();
    }
    let query = QueryBuilder::new()
        .tables(["R", "S"])
        .filter(BoolExpr::col_eq_col("R.jc", "S.jc"))
        .rank_predicate(RankPredicate::attribute_with_cost("p1", "R.p1", w.costs[0]))
        .rank_predicate(RankPredicate::attribute_with_cost("p2", "S.p2", w.costs[1]))
        .rank_predicate(RankPredicate::attribute_with_cost("p3", "S.p3", w.costs[2]))
        .limit(w.k)
        .build()
        .unwrap();
    (db, query)
}

/// Rounds scores so float noise from different evaluation orders does not
/// produce spurious failures.
fn rounded(scores: &[f64]) -> Vec<i64> {
    scores.iter().map(|s| (s * 1e9).round() as i64).collect()
}

// ---------------------------------------------------------------------------
// 1 + 2: optimizer modes agree, results are ordered and bounded by k
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, .. ProptestConfig::default() })]

    #[test]
    fn every_plan_mode_returns_the_same_topk(w in join_workload()) {
        let (db, query) = build_database(&w);
        let reference = db.execute_with_mode(&query, PlanMode::Canonical).unwrap();
        let reference_scores = rounded(&reference.scores());

        for mode in [
            PlanMode::Traditional,
            PlanMode::RankAware,
            PlanMode::RankAwareExhaustive,
            PlanMode::RankAwareRuleBased,
        ] {
            let result = db.execute_with_mode(&query, mode).unwrap();
            prop_assert_eq!(
                rounded(&result.scores()),
                reference_scores.clone(),
                "mode {:?} disagrees with the canonical plan",
                mode
            );
        }
    }

    #[test]
    fn results_are_sorted_and_bounded_by_k(w in join_workload()) {
        let (db, query) = build_database(&w);
        let result = db.execute(&query).unwrap();
        prop_assert!(result.rows.len() <= w.k);
        let scores = result.scores();
        for pair in scores.windows(2) {
            prop_assert!(
                pair[0] >= pair[1] - 1e-9,
                "scores not non-increasing: {:?}",
                scores
            );
        }
        // Every returned score is achievable: at most the number of
        // predicates (each in [0, 1]) and at least 0.
        for s in &scores {
            prop_assert!((0.0..=3.0 + 1e-9).contains(s));
        }
    }
}

// ---------------------------------------------------------------------------
// 3: µ scheduling order does not change the answer
// ---------------------------------------------------------------------------

#[derive(Debug, Clone)]
struct SingleTable {
    rows: Vec<(f64, f64, f64)>,
    k: usize,
}

fn single_table() -> impl Strategy<Value = SingleTable> {
    (
        proptest::collection::vec((0.0..1.0f64, 0.0..1.0f64, 0.0..1.0f64), 1..30),
        1..10usize,
    )
        .prop_map(|(rows, k)| SingleTable { rows, k })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, .. ProptestConfig::default() })]

    #[test]
    fn mu_scheduling_order_is_irrelevant_for_the_answer(t in single_table()) {
        use ranksql::algebra::LogicalPlan;

        let catalog = Catalog::new();
        let table = catalog
            .create_table(
                "T",
                Schema::new(vec![
                    Field::new("p1", DataType::Float64),
                    Field::new("p2", DataType::Float64),
                    Field::new("p3", DataType::Float64),
                ]),
            )
            .unwrap();
        for &(a, b, c) in &t.rows {
            table.insert(vec![Value::from(a), Value::from(b), Value::from(c)]).unwrap();
        }
        let ranking = RankingContext::new(
            vec![
                RankPredicate::attribute("p1", "T.p1"),
                RankPredicate::attribute("p2", "T.p2"),
                RankPredicate::attribute("p3", "T.p3"),
            ],
            ScoringFunction::Sum,
        );
        let query = RankQuery::new(vec!["T".into()], vec![], ranking, t.k);

        let permutations: [[usize; 3]; 6] =
            [[0, 1, 2], [0, 2, 1], [1, 0, 2], [1, 2, 0], [2, 0, 1], [2, 1, 0]];
        let mut all_scores: Vec<Vec<i64>> = Vec::new();
        for perm in permutations {
            let mut plan = LogicalPlan::scan(&table);
            for p in perm {
                plan = plan.rank(p);
            }
            let plan = plan.limit(t.k);
            let result =
                ranksql::executor::execute_query_plan(&query, &plan, &catalog).unwrap();
            let scores: Vec<f64> = result
                .tuples
                .iter()
                .map(|t| query.ranking.upper_bound(&t.state).value())
                .collect();
            all_scores.push(rounded(&scores));
        }
        for other in &all_scores[1..] {
            prop_assert_eq!(&all_scores[0], other);
        }
    }
}

// ---------------------------------------------------------------------------
// 4: scoring-function upper bounds honour the Ranking Principle
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, .. ProptestConfig::default() })]

    #[test]
    fn upper_bound_dominates_every_completion(
        evaluated in proptest::collection::vec((any::<bool>(), 0.0..1.0f64), 1..6),
        weights in proptest::collection::vec(0.1..2.0f64, 6),
    ) {
        let n = evaluated.len();
        let scorings = vec![
            ScoringFunction::Sum,
            ScoringFunction::Min,
            ScoringFunction::Product,
            ScoringFunction::Average,
            ScoringFunction::weighted_sum(weights[..n].to_vec()),
        ];
        for scoring in scorings {
            // The partial state: Some(score) for evaluated predicates.
            let partial: Vec<Option<f64>> = evaluated
                .iter()
                .map(|(known, s)| if *known { Some(*s) } else { None })
                .collect();
            let upper = scoring.upper_bound(&partial, 1.0).value();

            // Any completion of the unknown predicates scores no higher.
            let completions = [0.0, 0.25, 0.5, 1.0];
            for fill in completions {
                let complete: Vec<f64> = evaluated
                    .iter()
                    .map(|(known, s)| if *known { *s } else { fill })
                    .collect();
                let score = scoring.combine(&complete).value();
                prop_assert!(
                    score <= upper + 1e-9,
                    "{:?}: completion {} exceeds upper bound {}",
                    scoring, score, upper
                );
            }
        }
    }

    #[test]
    fn scoring_functions_are_monotonic(
        lower in proptest::collection::vec(0.0..1.0f64, 1..6),
        bumps in proptest::collection::vec(0.0..1.0f64, 6),
    ) {
        let n = lower.len();
        let higher: Vec<f64> =
            lower.iter().zip(&bumps).map(|(l, b)| (l + b).min(1.0)).collect();
        let scorings = vec![
            ScoringFunction::Sum,
            ScoringFunction::Min,
            ScoringFunction::Product,
            ScoringFunction::Average,
            ScoringFunction::weighted_sum(vec![1.0; n]),
        ];
        for scoring in scorings {
            prop_assert!(
                scoring.check_monotonic(&lower, &higher),
                "{:?} not monotonic for {:?} -> {:?}",
                scoring, lower, higher
            );
            prop_assert!(scoring.combine(&lower) <= scoring.combine(&higher));
        }
    }
}

// ---------------------------------------------------------------------------
// 5: the SQL front end round-trips structure
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, .. ProptestConfig::default() })]

    #[test]
    fn parser_roundtrips_tables_and_k(
        k in 1..10_000usize,
        n_tables in 1..4usize,
    ) {
        let table_names: Vec<String> = (0..n_tables).map(|i| format!("T{i}")).collect();
        let preds: Vec<String> =
            (0..n_tables).map(|i| format!("T{i}.score")).collect();
        let sql = format!(
            "SELECT * FROM {} ORDER BY {} LIMIT {}",
            table_names.join(", "),
            preds.join(" + "),
            k
        );
        let query = parse_topk_query(&sql).unwrap();
        prop_assert_eq!(query.k, k);
        prop_assert_eq!(query.tables.clone(), table_names);
        prop_assert_eq!(query.num_rank_predicates(), n_tables);
        prop_assert!(query.bool_predicates.is_empty());
    }
}
