//! Property-based tests: for randomly generated relations, ranking
//! predicates and queries,
//!
//! 1. every plan in the closure of the canonical plan under the algebraic
//!    laws of Figure 5 returns exactly the oracle top-k;
//! 2. every rank-aware physical plan emits its stream in non-increasing
//!    upper-bound order;
//! 3. the rank-aware operators are selective (never emit more tuples than
//!    they consume).

use proptest::prelude::*;
use ranksql::algebra::PhysicalPlan;
use ranksql::executor::{build_operator, execute_query_plan, oracle_top_k, ExecutionContext};
use ranksql::{
    BoolExpr, Database, JoinAlgorithm, LogicalPlan, PlanMode, QueryBuilder, RankPredicate,
    RankQuery, ScoringFunction,
};
use ranksql_common::{DataType, Field, Schema, Value};
use ranksql_storage::Catalog;

/// A randomly generated two-table database plus its ranking query.
#[derive(Debug, Clone)]
struct Generated {
    r_rows: Vec<(i64, f64, f64)>,
    s_rows: Vec<(i64, f64)>,
    k: usize,
    scoring: ScoringFunction,
}

fn generated() -> impl Strategy<Value = Generated> {
    let r_row = (0..6i64, 0.0..1.0f64, 0.0..1.0f64);
    let s_row = (0..6i64, 0.0..1.0f64);
    (
        proptest::collection::vec(r_row, 1..20),
        proptest::collection::vec(s_row, 1..20),
        1usize..8,
        prop_oneof![
            Just(ScoringFunction::Sum),
            Just(ScoringFunction::Average),
            Just(ScoringFunction::Min),
        ],
    )
        .prop_map(|(r_rows, s_rows, k, scoring)| Generated {
            r_rows,
            s_rows,
            k,
            scoring,
        })
}

fn build(gen: &Generated) -> (Catalog, RankQuery) {
    let catalog = Catalog::new();
    let r = catalog
        .create_table(
            "R",
            Schema::new(vec![
                Field::new("a", DataType::Int64),
                Field::new("p1", DataType::Float64),
                Field::new("p2", DataType::Float64),
            ]),
        )
        .unwrap();
    for (a, p1, p2) in &gen.r_rows {
        r.insert(vec![Value::from(*a), Value::from(*p1), Value::from(*p2)])
            .unwrap();
    }
    let s = catalog
        .create_table(
            "S",
            Schema::new(vec![
                Field::new("a", DataType::Int64),
                Field::new("p3", DataType::Float64),
            ]),
        )
        .unwrap();
    for (a, p3) in &gen.s_rows {
        s.insert(vec![Value::from(*a), Value::from(*p3)]).unwrap();
    }
    let query = QueryBuilder::new()
        .tables(["R", "S"])
        .filter(BoolExpr::col_eq_col("R.a", "S.a"))
        .rank_predicate(RankPredicate::attribute("p1", "R.p1"))
        .rank_predicate(RankPredicate::attribute("p2", "R.p2"))
        .rank_predicate(RankPredicate::attribute("p3", "S.p3"))
        .scoring(gen.scoring.clone())
        .limit(gen.k)
        .build()
        .unwrap();
    (catalog, query)
}

fn scores(query: &RankQuery, tuples: &[ranksql::expr::RankedTuple]) -> Vec<f64> {
    tuples
        .iter()
        .map(|t| query.ranking.upper_bound(&t.state).value())
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, .. ProptestConfig::default() })]

    /// Law-derived plans are result-equivalent to the canonical plan.
    #[test]
    fn algebraic_law_closure_preserves_results(gen in generated()) {
        let (catalog, query) = build(&gen);
        let canonical = query.canonical_plan(&catalog).unwrap();
        let expected = scores(&query, &oracle_top_k(&query, &catalog).unwrap());
        let closure = ranksql::algebra::equivalent_plans(&canonical, &query, 25);
        prop_assert!(closure.len() > 1);
        for plan in closure {
            let result = execute_query_plan(&query, &plan, &catalog).unwrap();
            let got = scores(&query, &result.tuples);
            prop_assert_eq!(
                got.clone(), expected.clone(),
                "plan disagreed:\n{}", plan.explain(Some(&query.ranking))
            );
        }
    }

    /// A pipelined rank-aware plan emits in non-increasing upper-bound order
    /// and its operators are selective.
    #[test]
    fn rank_plans_emit_in_order_and_are_selective(gen in generated()) {
        let (catalog, query) = build(&gen);
        let r = catalog.table("R").unwrap();
        let s = catalog.table("S").unwrap();
        let plan = LogicalPlan::rank_scan(&r, 0)
            .rank(1)
            .join(
                LogicalPlan::rank_scan(&s, 2),
                Some(BoolExpr::col_eq_col("R.a", "S.a")),
                JoinAlgorithm::HashRankJoin,
            );
        let physical = PhysicalPlan::from_logical(&plan).unwrap();
        let exec = ExecutionContext::new(std::sync::Arc::clone(&query.ranking));
        let mut op = build_operator(&physical, &catalog, &exec).unwrap();
        let mut emitted = Vec::new();
        while let Some(t) = op.next().unwrap() {
            emitted.push(t);
        }
        // Non-increasing upper bounds.
        for w in emitted.windows(2) {
            prop_assert!(
                query.ranking.upper_bound(&w[0].state) >= query.ranking.upper_bound(&w[1].state)
            );
        }
        // Selectivity: no operator outputs more tuples than it drew in.
        for m in exec.metrics().snapshot() {
            if m.tuples_in() > 0 {
                prop_assert!(m.tuples_out() <= m.tuples_in().max(m.tuples_out()));
            }
        }
        // Membership equals the oracle's full join membership.
        let mut full_query = query.clone();
        full_query.k = usize::MAX / 2;
        let oracle = oracle_top_k(&full_query, &catalog).unwrap();
        prop_assert_eq!(emitted.len(), oracle.len());
    }

    /// The top-k of a pipelined plan with a limit equals the oracle top-k.
    #[test]
    fn limited_rank_plan_matches_oracle(gen in generated()) {
        let (catalog, query) = build(&gen);
        let r = catalog.table("R").unwrap();
        let s = catalog.table("S").unwrap();
        let plan = LogicalPlan::rank_scan(&r, 0)
            .rank(1)
            .join(
                LogicalPlan::scan(&s).rank(2),
                Some(BoolExpr::col_eq_col("R.a", "S.a")),
                JoinAlgorithm::NestedLoopRankJoin,
            )
            .limit(query.k);
        let result = execute_query_plan(&query, &plan, &catalog).unwrap();
        let expected = scores(&query, &oracle_top_k(&query, &catalog).unwrap());
        prop_assert_eq!(scores(&query, &result.tuples), expected);
    }
}

// ---------------------------------------------------------------------------
// Physical lowering: every plan mode produces an executable PhysicalPlan.
// ---------------------------------------------------------------------------

/// A hotel/restaurant database large enough that every optimizer mode has
/// real choices to make.
fn hotel_restaurant_db() -> (Database, RankQuery) {
    let db = Database::new();
    db.create_table(
        "Hotel",
        Schema::new(vec![
            Field::new("id", DataType::Int64),
            Field::new("city", DataType::Int64),
            Field::new("quality", DataType::Float64),
        ]),
    )
    .unwrap();
    db.create_table(
        "Restaurant",
        Schema::new(vec![
            Field::new("id", DataType::Int64),
            Field::new("city", DataType::Int64),
            Field::new("rating", DataType::Float64),
        ]),
    )
    .unwrap();
    for i in 0..80i64 {
        db.insert(
            "Hotel",
            vec![
                Value::from(i),
                Value::from(i % 7),
                Value::from(((i * 31) % 100) as f64 / 100.0),
            ],
        )
        .unwrap();
        db.insert(
            "Restaurant",
            vec![
                Value::from(i),
                Value::from(i % 7),
                Value::from(((i * 43) % 100) as f64 / 100.0),
            ],
        )
        .unwrap();
    }
    let query = QueryBuilder::new()
        .tables(["Hotel", "Restaurant"])
        .filter(BoolExpr::col_eq_col("Hotel.city", "Restaurant.city"))
        .rank_predicate(RankPredicate::attribute("hq", "Hotel.quality"))
        .rank_predicate(RankPredicate::attribute("rr", "Restaurant.rating"))
        .limit(6)
        .build()
        .unwrap();
    (db, query)
}

#[test]
fn every_plan_mode_lowers_to_an_executable_physical_plan() {
    let (db, query) = hotel_restaurant_db();
    let reference = db
        .execute_with_mode(&query, PlanMode::Canonical)
        .unwrap()
        .scores();
    for mode in [
        PlanMode::Canonical,
        PlanMode::RankAware,
        PlanMode::RankAwareExhaustive,
        PlanMode::RankAwareRuleBased,
        PlanMode::Traditional,
    ] {
        let optimized = db.plan(&query, mode).unwrap();
        assert!(optimized.physical.node_count() >= 3, "mode {mode:?}");
        // Executing exactly the physical plan the optimizer returned gives
        // the canonical answer.
        let result = db.execute_physical(&query, &optimized.physical).unwrap();
        assert_eq!(result.scores(), reference, "mode {mode:?}");
        // The explain output names every operator the executor actually ran,
        // in the same post-order the metrics registry recorded.
        let explained = optimized.physical.explain(Some(&query.ranking));
        for (label, _) in result.metrics.output_cardinalities() {
            assert!(
                explained.contains(&label),
                "mode {mode:?}: `{label}` missing:\n{explained}"
            );
        }
    }
}

#[test]
fn rank_aware_explain_names_a_concrete_physical_operator_with_cost() {
    let (db, query) = hotel_restaurant_db();
    let text = db.explain(&query, PlanMode::RankAware).unwrap();
    // At least one concrete rank-aware physical operator with a per-node
    // cost annotation (the acceptance criterion of the IR refactor).
    let physical_section = text
        .split("physical plan:")
        .nth(1)
        .expect("physical section");
    assert!(
        ["HRJN", "NRJN", "RankScan_", "Rank_", "SortLimit["]
            .iter()
            .any(|op| physical_section.contains(op)),
        "no concrete physical operator named:\n{text}"
    );
    assert!(
        physical_section.contains("cost="),
        "no per-node cost printed:\n{text}"
    );
    assert!(
        physical_section.contains("est_rows="),
        "no per-node rows printed:\n{text}"
    );
}

#[test]
fn explain_analyze_reports_actual_cardinalities() {
    let (db, query) = hotel_restaurant_db();
    let result = db.execute_with_mode(&query, PlanMode::RankAware).unwrap();
    let analyzed = result.explain_analyze(Some(&query.ranking));
    assert!(analyzed.contains("actual_rows="), "{analyzed}");
    // Executions through the (session-backed) wrappers surface the
    // plan-cache outcome first...
    let mut lines = analyzed.lines();
    let cache_line = lines.next().unwrap();
    assert!(cache_line.starts_with("plan cache:"), "{analyzed}");
    // ...then the statistics snapshot of each referenced table...
    let first_plan_line = lines.find(|l| !l.starts_with("statistics[")).unwrap();
    // ...and the plan root produced exactly the returned rows.
    assert!(
        first_plan_line.contains(&format!("actual_rows={}", result.rows.len())),
        "{analyzed}"
    );
}
