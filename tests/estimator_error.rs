//! Figure-13-style estimator-error harness.
//!
//! Measures *real vs. estimated* cardinality over a query suite whose true
//! cardinalities are computed exactly in-test, and compares three
//! estimator configurations:
//!
//! 1. `HistogramEstimator` with [`StatsSource::Catalog`] — the sketch-backed
//!    statistics catalog this PR introduces (NDV exact up to the sketch's
//!    array capacity),
//! 2. `HistogramEstimator` with [`StatsSource::Sampled`] — the classical
//!    sampled-statistics baseline whose naive NDV scale-up is badly biased
//!    for low-cardinality join columns, and
//! 3. `SamplingEstimator` — sampling-*execution* estimation (run the plan
//!    over reservoir samples and scale up).
//!
//! The headline assertion mirrors the paper's Figure-13 claim shape: the
//! sketch-driven catalog's mean relative error is strictly below the
//! sampled-statistics baseline, and no worse than sampling execution.
//!
//! The second half of the file holds property tests pinning the *algebra*
//! that makes incremental maintenance sound: merging per-block sketch
//! partials is indistinguishable from a from-scratch build, and a table
//! catalog maintained incrementally across inserts equals a cold rebuild.

use std::collections::HashMap;

use proptest::prelude::*;
use ranksql::algebra::{JoinAlgorithm, LogicalPlan};
use ranksql::expr::RankPredicate;
use ranksql::optimizer::{HistogramEstimator, SamplingEstimator, StatsSource};
use ranksql::storage::{Catalog, DistinctSketch, StatsCatalog, Table};
use ranksql::{
    BoolExpr, CompareOp, DataType, Field, RankQuery, RankingContext, ScalarExpr, Schema,
    ScoringFunction, Value,
};

const ROWS: usize = 2000;
/// `jc = i % DISTINCT` — 40 distinct join values, 50 rows each, exactly.
const DISTINCT: usize = 40;
const SAMPLE_RATIO: f64 = 0.2;
const SEED: u64 = 7;
const BUCKETS: usize = 16;

/// Two-table catalog with a low-cardinality join column: the regime where
/// naive sampled NDV scale-up is most wrong (a 20 % sample still sees all
/// 40 values, which scale-up turns into 200).
fn setup(rows: usize) -> (Catalog, RankQuery) {
    let cat = Catalog::new();
    let a = cat
        .create_table(
            "A",
            Schema::new(vec![
                Field::new("jc", DataType::Int64),
                Field::new("p1", DataType::Float64),
            ]),
        )
        .unwrap();
    let b = cat
        .create_table(
            "B",
            Schema::new(vec![
                Field::new("jc", DataType::Int64),
                Field::new("p2", DataType::Float64),
            ]),
        )
        .unwrap();
    for i in 0..rows {
        a.insert(vec![
            Value::from((i % DISTINCT) as i64),
            Value::from(((i * 37) % 1000) as f64 / 1000.0),
        ])
        .unwrap();
        b.insert(vec![
            Value::from((i % DISTINCT) as i64),
            Value::from(((i * 61) % 1000) as f64 / 1000.0),
        ])
        .unwrap();
    }
    let ranking = RankingContext::new(
        vec![
            RankPredicate::attribute("p1", "A.p1"),
            RankPredicate::attribute("p2", "B.p2"),
        ],
        ScoringFunction::Sum,
    );
    let query = RankQuery::new(
        vec!["A".into(), "B".into()],
        vec![BoolExpr::col_eq_col("A.jc", "B.jc")],
        ranking,
        10,
    );
    (cat, query)
}

/// The membership query suite with exactly computable true cardinalities.
/// Rank-aware operators are deliberately absent: their output depends on
/// the score threshold `x`, which is itself an estimate — this harness
/// isolates the *statistics* error the catalog is meant to fix.
fn suite(cat: &Catalog) -> Vec<(&'static str, LogicalPlan, f64)> {
    let a = cat.table("A").unwrap();
    let b = cat.table("B").unwrap();
    // Exact value counts, computed from the data (not from n/DISTINCT), so
    // the truths stay correct if the generator above ever changes.
    let count_eq = |t: &Table, v: i64| {
        t.scan()
            .iter()
            .filter(|tup| tup.value(0) == &Value::from(v))
            .count() as f64
    };
    let mut counts_a: HashMap<i64, f64> = HashMap::new();
    let mut counts_b: HashMap<i64, f64> = HashMap::new();
    for tup in a.scan() {
        if let Some(v) = tup.value(0).as_i64() {
            *counts_a.entry(v).or_default() += 1.0;
        }
    }
    for tup in b.scan() {
        if let Some(v) = tup.value(0).as_i64() {
            *counts_b.entry(v).or_default() += 1.0;
        }
    }
    let true_join: f64 = counts_a
        .iter()
        .map(|(v, ca)| ca * counts_b.get(v).copied().unwrap_or(0.0))
        .sum();

    let jc_eq = |col: &str, v: i64| {
        BoolExpr::compare(ScalarExpr::col(col), CompareOp::Eq, ScalarExpr::lit(v))
    };
    let join = || {
        LogicalPlan::scan(&a).join(
            LogicalPlan::scan(&b),
            Some(BoolExpr::col_eq_col("A.jc", "B.jc")),
            JoinAlgorithm::Hash,
        )
    };
    vec![
        ("scan A", LogicalPlan::scan(&a), a.row_count() as f64),
        (
            "sigma A.jc = 7",
            LogicalPlan::scan(&a).select(jc_eq("A.jc", 7)),
            count_eq(&a, 7),
        ),
        (
            "sigma B.jc = 11",
            LogicalPlan::scan(&b).select(jc_eq("B.jc", 11)),
            count_eq(&b, 11),
        ),
        ("A join B on jc", join(), true_join),
        (
            "sigma jc = 3 over A join B",
            join().select(jc_eq("A.jc", 3)),
            counts_a.get(&3).copied().unwrap_or(0.0) * counts_b.get(&3).copied().unwrap_or(0.0),
        ),
    ]
}

/// Mean relative error of `estimate` over the suite, `|est - true| / true`.
fn mean_relative_error(
    suite: &[(&'static str, LogicalPlan, f64)],
    mut estimate: impl FnMut(&LogicalPlan) -> f64,
) -> f64 {
    let total: f64 = suite
        .iter()
        .map(|(name, plan, truth)| {
            assert!(*truth > 0.0, "{name}: degenerate truth");
            let est = estimate(plan);
            (est - truth).abs() / truth
        })
        .sum();
    total / suite.len() as f64
}

#[test]
fn sketch_catalog_beats_sampled_statistics_and_sampling_execution() {
    let (cat, query) = setup(ROWS);
    let suite = suite(&cat);

    let catalog_est = HistogramEstimator::build_with_stats_source(
        &query,
        &cat,
        SAMPLE_RATIO,
        SEED,
        BUCKETS,
        StatsSource::Catalog,
    )
    .unwrap();
    let sampled_est = HistogramEstimator::build_with_stats_source(
        &query,
        &cat,
        SAMPLE_RATIO,
        SEED,
        BUCKETS,
        StatsSource::Sampled,
    )
    .unwrap();
    let sampling_exec = SamplingEstimator::build(&query, &cat, SAMPLE_RATIO, SEED).unwrap();

    let e_catalog = mean_relative_error(&suite, |p| catalog_est.estimate_cardinality(p).unwrap());
    let e_sampled = mean_relative_error(&suite, |p| sampled_est.estimate_cardinality(p).unwrap());
    let e_exec = mean_relative_error(&suite, |p| sampling_exec.estimate_cardinality(p).unwrap());

    // The catalog NDV (40 distinct, well inside the sketch's exact array
    // stage) makes the 1/d selectivities exact, so its suite error is
    // essentially zero; the naive scaled-sample NDV (~200) inflates d by
    // 5x and lands around 0.8 relative error on every d-driven estimate.
    assert!(
        e_catalog < e_sampled,
        "sketch catalog (err {e_catalog:.4}) should beat sampled statistics (err {e_sampled:.4})"
    );
    assert!(
        e_catalog <= e_exec + 1e-9,
        "sketch catalog (err {e_catalog:.4}) should be no worse than \
         sampling execution (err {e_exec:.4})"
    );
    assert!(
        e_catalog < 0.05,
        "exact-stage sketches should make suite error near zero, got {e_catalog:.4}"
    );
    assert!(
        e_sampled > 0.5,
        "the sampled-NDV baseline should be visibly wrong here, got {e_sampled:.4}"
    );
}

#[test]
fn hll_stage_ndv_error_stays_below_naive_sample_scale_up() {
    // Mid-cardinality regime: 4 000 distinct keys over 20 000 rows pushes
    // the sketch past its exact array stage into HLL (approximate), while
    // naive sample scale-up is at its worst — a 5 % sample sees most of the
    // 4 000 values more than once, yet scale-up multiplies the ~900 it
    // sees by 20, wildly overshooting the true count.
    let cat = Catalog::new();
    let t = cat
        .create_table("U", Schema::new(vec![Field::new("k", DataType::Int64)]))
        .unwrap();
    let rows = 20_000usize;
    let n = 4_000usize;
    for i in 0..rows {
        t.insert(vec![Value::from((i % n) as i64)]).unwrap();
    }
    let stats = t.stats_catalog();
    let sketch_ndv = stats.column("U.k").unwrap().ndv() as f64;
    let sketch_err = (sketch_ndv - n as f64).abs() / n as f64;
    assert!(
        sketch_err < 0.05,
        "HLL-stage NDV {sketch_ndv} off by {sketch_err:.3} for true {n}"
    );

    let sampled = ranksql::optimizer::sampled_statistics(&t, 0.05, SEED).unwrap();
    let sampled_ndv = sampled.column("U.k").unwrap().distinct_count as f64;
    let sampled_err = (sampled_ndv - n as f64).abs() / n as f64;
    assert!(
        sketch_err <= sampled_err + 1e-9,
        "sketch NDV err {sketch_err:.3} should not exceed sampled-scale-up err {sampled_err:.3}"
    );
}

/// Cold rebuild of a table's statistics from a full scan — the reference
/// the incrementally maintained catalog must match.  Uses the same table
/// name as the warm table so the qualified column names line up.
fn cold_rebuild(schema: &Schema, rows: &[Vec<Value>]) -> StatsCatalog {
    let cat = Catalog::new();
    let t = cat.create_table("W", schema.clone()).unwrap();
    for r in rows {
        t.insert(r.clone()).unwrap();
    }
    t.stats_catalog()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, .. ProptestConfig::default() })]

    /// Merging per-block partial sketches is exactly equivalent to one
    /// from-scratch build over the concatenated stream — the invariant
    /// that lets `Table::insert` fold 1024-row block partials into the
    /// catalog instead of rescanning the column.
    #[test]
    fn incremental_sketch_merge_equals_from_scratch(
        hashes in proptest::collection::vec(any::<u64>(), 0..3000usize),
    ) {
        let mut whole = DistinctSketch::new();
        for h in &hashes {
            whole.insert_hash(*h);
        }
        let mut merged = DistinctSketch::new();
        for block in hashes.chunks(1024) {
            let mut partial = DistinctSketch::new();
            for h in block {
                partial.insert_hash(*h);
            }
            merged.merge(&partial);
        }
        prop_assert_eq!(merged, whole);
    }

    /// The incrementally maintained catalog equals a cold rebuild *at
    /// every 1024-row seal boundary the insert stream crosses* — the
    /// moments PR 7's write path folds the delta partial into the sealed
    /// catalog — not just at the end.
    #[test]
    fn stats_match_cold_rebuild_at_every_seal_boundary(
        n in 1usize..2300,
        prime in 0usize..2300,
        salt in 0i64..1000,
    ) {
        let schema = Schema::new(vec![
            Field::new("k", DataType::Int64),
            Field::new("x", DataType::Float64),
        ]);
        let rows: Vec<Vec<Value>> = (0..n as i64)
            .map(|i| {
                vec![
                    Value::from((i * 37 + salt) % 191),
                    Value::from(((i * 61 + salt) % 997) as f64 / 997.0),
                ]
            })
            .collect();
        let prime = prime.min(n);
        let cat = Catalog::new();
        let t = cat.create_table("W", schema.clone()).unwrap();
        for r in &rows[..prime] {
            t.insert(r.clone()).unwrap();
        }
        let _ = t.stats_catalog();
        for (i, r) in rows[prime..].iter().enumerate() {
            t.insert(r.clone()).unwrap();
            let len = prime + i + 1;
            if len % 1024 == 0 {
                prop_assert_eq!(
                    t.cached_stats().unwrap(),
                    cold_rebuild(&schema, &rows[..len]),
                    "diverged at the {len}-row seal boundary"
                );
            }
        }
        prop_assert_eq!(t.cached_stats().unwrap(), cold_rebuild(&schema, &rows));
    }

    /// A catalog maintained incrementally across interleaved builds and
    /// inserts equals a cold rebuild over the same rows, wherever the
    /// build point falls relative to the data.
    #[test]
    fn incremental_table_catalog_equals_cold_rebuild(
        keys in proptest::collection::vec(0i64..64, 1..300usize),
        split in 0usize..300,
    ) {
        let schema = Schema::new(vec![
            Field::new("k", DataType::Int64),
            Field::new("x", DataType::Float64),
        ]);
        let rows: Vec<Vec<Value>> = keys
            .iter()
            .enumerate()
            .map(|(i, k)| vec![Value::from(*k), Value::from(i as f64 / 300.0)])
            .collect();
        let split = split.min(rows.len());

        let cat = Catalog::new();
        let t = cat.create_table("W", schema.clone()).unwrap();
        for r in &rows[..split] {
            t.insert(r.clone()).unwrap();
        }
        // Force the build mid-stream; the inserts after it must keep the
        // catalog fresh incrementally.
        let _ = t.stats_catalog();
        for r in &rows[split..] {
            t.insert(r.clone()).unwrap();
        }
        let warm = t.cached_stats().expect("catalog was built above");
        prop_assert_eq!(warm, cold_rebuild(&schema, &rows));
    }
}

#[test]
fn seal_boundary_edge_cases_match_cold_rebuild() {
    // Deterministic off-by-one sweep around the first two seal boundaries:
    // 1023 (one row short of a seal), 1024 (the seal fires, delta empties),
    // 1025 (a fresh one-row delta), and the same trio around 2048.  NDV,
    // min and max must equal a from-scratch build at every one of them.
    let schema = Schema::new(vec![
        Field::new("k", DataType::Int64),
        Field::new("x", DataType::Float64),
    ]);
    for n in [1023usize, 1024, 1025, 2047, 2048, 2049] {
        let rows: Vec<Vec<Value>> = (0..n as i64)
            .map(|i| vec![Value::from(i % 131), Value::from((i as f64).sin())])
            .collect();
        let cat = Catalog::new();
        let t = cat.create_table("W", schema.clone()).unwrap();
        // Prime the catalog on the empty table so every single insert runs
        // through the incremental delta/seal path.
        assert_eq!(t.stats_catalog().row_count, 0);
        for r in &rows {
            t.insert(r.clone()).unwrap();
        }
        let warm = t.cached_stats().unwrap();
        assert_eq!(warm.row_count, n);
        assert_eq!(warm, cold_rebuild(&schema, &rows), "row count {n}");

        // And the headline summaries directly against the data.
        let k = warm.column("W.k").unwrap();
        assert_eq!(k.ndv(), n.min(131), "NDV at row count {n}");
        assert_eq!(k.min, Some(0.0));
        assert_eq!(k.max, Some((n.min(131) - 1) as f64), "max at row count {n}");
        let x = warm.column("W.x").unwrap();
        let sins = || (0..n).map(|i| (i as f64).sin());
        assert_eq!(x.min, Some(sins().fold(f64::INFINITY, f64::min)));
        assert_eq!(x.max, Some(sins().fold(f64::NEG_INFINITY, f64::max)));
    }
}

#[test]
fn incremental_catalog_survives_block_boundaries() {
    // Deterministic companion to the property above: the build point and
    // the follow-up inserts straddle the 1024-row block boundary, so the
    // partial-block merge path is definitely exercised.
    let schema = Schema::new(vec![Field::new("k", DataType::Int64)]);
    let rows: Vec<Vec<Value>> = (0..2100).map(|i| vec![Value::from(i % 97)]).collect();

    let cat = Catalog::new();
    let t = cat.create_table("W", schema.clone()).unwrap();
    for r in &rows[..1500] {
        t.insert(r.clone()).unwrap();
    }
    let mid = t.stats_catalog();
    assert_eq!(mid.row_count, 1500);
    for r in &rows[1500..] {
        t.insert(r.clone()).unwrap();
    }
    let warm = t.cached_stats().unwrap();
    assert_eq!(warm.row_count, 2100);
    assert_eq!(warm.column("W.k").unwrap().ndv(), 97);
    assert_eq!(warm, cold_rebuild(&schema, &rows));
}
