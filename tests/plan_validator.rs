//! The plan-invariant validator's contract, from both sides.
//!
//! **Negative paths**: a corpus of hand-mutated physical plans — each one a
//! realistic way an optimizer rewrite could go wrong (a projection of a
//! column that does not exist, an exchange glued over a rank-aware join, an
//! `extend_limit` that rewrote only one of the `SortLimit`/ordered-merge
//! caps, a zone-pruning scan that lost its `SortLimit` spine…) — where the
//! validator must fire the *expected* rule id at the expected severity.
//! Together the corpus exercises every one of the twelve rules.
//!
//! **Positive path**: a proptest that every plan the real optimizer emits —
//! all five [`PlanMode`]s × three storage backends × serial and parallel
//! lowering — validates with zero `Error`-severity diagnostics, logical and
//! physical alike.  This is the guarantee that lets `ranksql-core` hard-fail
//! planning on validator errors in debug builds.

use proptest::prelude::*;

use ranksql::algebra::{ColumnarScan, ExchangeMerge, PhysicalOp, PhysicalPlan};
use ranksql::common::{BitSet64, Cost};
use ranksql::expr::RankPredicate;
use ranksql::verify::{report, ValidateOptions};
use ranksql::{
    validate_logical, validate_physical, BoolExpr, CompareOp, DataType, Database, Diagnostic,
    Field, PlanMode, QueryBuilder, RankQuery, Rule, ScalarExpr, Schema, Severity, StorageBackend,
    Value,
};

// ---------------------------------------------------------------------------
// Corpus scaffolding
// ---------------------------------------------------------------------------

/// Validates with no ranking context and default options — the common case
/// for the structural mutants.
fn diags(plan: &PhysicalPlan) -> Vec<Diagnostic> {
    validate_physical(plan, None, &ValidateOptions::default())
}

/// Asserts that `diags` contains at least one diagnostic for `rule` at
/// `severity`, with the full report in the failure message.
fn assert_fires(diags: &[Diagnostic], rule: Rule, severity: Severity) {
    assert!(
        diags
            .iter()
            .any(|d| d.rule == rule && d.severity == severity),
        "expected [{severity}] {} to fire, got:\n{}",
        rule.id(),
        report(diags)
    );
}

fn t_schema() -> Schema {
    Schema::new(vec![
        Field::qualified("T", "id", DataType::Int64),
        Field::qualified("T", "p", DataType::Float64),
    ])
}

fn scan_t() -> PhysicalPlan {
    PhysicalPlan::unestimated(PhysicalOp::SeqScan {
        table: "T".to_owned(),
        schema: t_schema(),
        columnar: None,
    })
}

fn scan(table: &str, fields: &[(&str, DataType)]) -> PhysicalPlan {
    PhysicalPlan::unestimated(PhysicalOp::SeqScan {
        table: table.to_owned(),
        schema: Schema::new(
            fields
                .iter()
                .map(|(n, t)| Field::qualified(table, *n, *t))
                .collect(),
        ),
        columnar: None,
    })
}

/// A two-predicate ranking context (p1 over `R.p1`, p2 over `S.p2`) for the
/// range-check mutants; no database needed.
fn two_pred_query() -> RankQuery {
    QueryBuilder::new()
        .tables(["R", "S"])
        .filter(BoolExpr::col_eq_col("R.jc", "S.jc"))
        .rank_predicate(RankPredicate::attribute("p1", "R.p1"))
        .rank_predicate(RankPredicate::attribute("p2", "S.p2"))
        .limit(3)
        .build()
        .unwrap()
}

// ---------------------------------------------------------------------------
// Negative-path corpus: one mutant per way a rewrite can go wrong
// ---------------------------------------------------------------------------

/// π of a column the input does not provide: the node's output schema is
/// underivable.
#[test]
fn projection_of_missing_column_fires_schema_coherence() {
    let mutant = PhysicalPlan::unestimated(PhysicalOp::Project {
        input: Box::new(scan_t()),
        columns: vec!["T.no_such_column".to_owned()],
    });
    assert_fires(&diags(&mutant), Rule::SchemaCoherence, Severity::Error);
}

/// σ over a column the input schema does not provide.
#[test]
fn filter_on_unknown_column_fires_schema_predicate_columns() {
    let mutant = PhysicalPlan::unestimated(PhysicalOp::Filter {
        input: Box::new(scan_t()),
        predicate: BoolExpr::compare(
            ScalarExpr::col("T.missing"),
            CompareOp::Gt,
            ScalarExpr::lit(0.0),
        ),
    });
    assert_fires(
        &diags(&mutant),
        Rule::SchemaPredicateColumns,
        Severity::Error,
    );
}

/// A join condition naming a column from neither side.
#[test]
fn join_condition_on_foreign_column_fires_schema_predicate_columns() {
    let mutant = PhysicalPlan::unestimated(PhysicalOp::HashJoin {
        left: Box::new(scan("R", &[("jc", DataType::Int64)])),
        right: Box::new(scan("S", &[("jc", DataType::Int64)])),
        condition: Some(BoolExpr::col_eq_col("R.jc", "Q.elsewhere")),
    });
    assert_fires(
        &diags(&mutant),
        Rule::SchemaPredicateColumns,
        Severity::Error,
    );
}

/// An exchange glued *over* a rank-aware join: HRJN's incremental top-k
/// state is single-threaded; `parallelize` must pin it above the exchange.
#[test]
fn exchange_over_rank_join_fires_exchange_rank_below() {
    let hrjn = PhysicalPlan::unestimated(PhysicalOp::HashRankJoin {
        left: Box::new(scan(
            "R",
            &[("jc", DataType::Int64), ("p1", DataType::Float64)],
        )),
        right: Box::new(scan(
            "S",
            &[("jc", DataType::Int64), ("p2", DataType::Float64)],
        )),
        condition: Some(BoolExpr::col_eq_col("R.jc", "S.jc")),
    });
    let mutant = PhysicalPlan::unestimated(PhysicalOp::Exchange {
        input: Box::new(hrjn),
        merge: ExchangeMerge::Concat,
    });
    assert_fires(&diags(&mutant), Rule::ExchangeRankBelow, Severity::Error);
}

/// An exchange whose spine carries no `Repartition` marker: no scan drives
/// the morsel partitioning, so workers would have nothing to pull.
#[test]
fn exchange_without_repartition_fires_exchange_spine() {
    let mutant = PhysicalPlan::unestimated(PhysicalOp::Exchange {
        input: Box::new(scan_t()),
        merge: ExchangeMerge::Concat,
    });
    assert_fires(&diags(&mutant), Rule::ExchangeSpine, Severity::Error);
}

/// `Repartition` must wrap the driving `SeqScan` directly; wrapping a σ
/// would hand filtered row offsets to the morsel partitioner.
#[test]
fn repartition_over_filter_fires_exchange_spine() {
    let filtered = PhysicalPlan::unestimated(PhysicalOp::Filter {
        input: Box::new(scan_t()),
        predicate: BoolExpr::compare(
            ScalarExpr::col("T.id"),
            CompareOp::Gt,
            ScalarExpr::lit(0i64),
        ),
    });
    let mutant = PhysicalPlan::unestimated(PhysicalOp::Exchange {
        input: Box::new(PhysicalPlan::unestimated(PhysicalOp::Repartition {
            input: Box::new(filtered),
        })),
        merge: ExchangeMerge::Concat,
    });
    assert_fires(&diags(&mutant), Rule::ExchangeSpine, Severity::Error);
}

/// A `Repartition` outside any exchange degrades to a pass-through: legal,
/// but a smell worth a warning.
#[test]
fn repartition_outside_exchange_warns_exchange_spine() {
    let mutant = PhysicalPlan::unestimated(PhysicalOp::Repartition {
        input: Box::new(scan_t()),
    });
    assert_fires(&diags(&mutant), Rule::ExchangeSpine, Severity::Warning);
}

fn ordered_exchange(k: usize, limit: Option<usize>) -> PhysicalPlan {
    let spine = PhysicalPlan::unestimated(PhysicalOp::SortLimit {
        input: Box::new(PhysicalPlan::unestimated(PhysicalOp::Repartition {
            input: Box::new(scan_t()),
        })),
        predicates: BitSet64::singleton(0),
        k,
    });
    PhysicalPlan::unestimated(PhysicalOp::Exchange {
        input: Box::new(spine),
        merge: ExchangeMerge::Ordered { limit },
    })
}

/// `extend_limit` rewrote the ordered merge's cap but not the per-partition
/// top-k (or vice versa): the two `k`s disagree.
#[test]
fn ordered_merge_limit_mismatch_fires_exchange_merge_limit() {
    assert_fires(
        &diags(&ordered_exchange(3, Some(5))),
        Rule::ExchangeMergeLimit,
        Severity::Error,
    );
}

/// Per-partition `SortLimit` under an ordered merge with *no* re-limit: the
/// merged stream would carry up to `threads × k` tuples.
#[test]
fn ordered_merge_without_relimit_fires_exchange_merge_limit() {
    assert_fires(
        &diags(&ordered_exchange(3, None)),
        Rule::ExchangeMergeLimit,
        Severity::Error,
    );
}

/// The matched pair — per-partition `SortLimit{k}` under `Ordered{Some(k)}`
/// — is exactly the shape `parallelize` emits, and must stay clean.
#[test]
fn matched_ordered_merge_is_clean() {
    let d = diags(&ordered_exchange(7, Some(7)));
    assert!(d.is_empty(), "unexpected diagnostics:\n{}", report(&d));
}

/// A filter referencing `$3` when slots `$0..$2` are never used: bindings
/// are positional, the gap can never be filled.
#[test]
fn dangling_param_slot_warns_params_slots() {
    let mutant = PhysicalPlan::unestimated(PhysicalOp::Filter {
        input: Box::new(scan_t()),
        predicate: BoolExpr::compare(
            ScalarExpr::col("T.p"),
            CompareOp::GtEq,
            ScalarExpr::param(3),
        ),
    });
    assert_fires(&diags(&mutant), Rule::ParamSlots, Severity::Warning);
}

/// The same plan about to *execute* (cursor-open options): an unbound slot
/// is a hard error, not a cached-shape curiosity.
#[test]
fn unbound_param_at_execution_fires_params_slots_error() {
    let mutant = PhysicalPlan::unestimated(PhysicalOp::Filter {
        input: Box::new(scan_t()),
        predicate: BoolExpr::compare(
            ScalarExpr::col("T.p"),
            CompareOp::GtEq,
            ScalarExpr::param(0),
        ),
    });
    let d = validate_physical(&mutant, None, &ValidateOptions::executable());
    assert_fires(&d, Rule::ParamSlots, Severity::Error);
    // Bound, the same shape is clean.
    let bound = mutant.with_params(&[Value::from(0.5)]).unwrap();
    let d = validate_physical(&bound, None, &ValidateOptions::executable());
    assert!(d.is_empty(), "bound plan should be clean:\n{}", report(&d));
}

/// A cumulative cost annotation below its child's: some rewrite rebuilt the
/// node and forgot to re-aggregate.
#[test]
fn shrinking_cumulative_cost_fires_cost_monotonic() {
    let child = PhysicalPlan {
        op: scan_t().op,
        estimated_cost: Cost(50.0),
        estimated_rows: 10.0,
    };
    let mutant = PhysicalPlan {
        op: PhysicalOp::Limit {
            input: Box::new(child),
            k: 5,
        },
        estimated_cost: Cost(1.0),
        estimated_rows: 5.0,
    };
    assert_fires(&diags(&mutant), Rule::CostMonotonic, Severity::Error);
}

/// NaN costs and negative cardinalities poison every comparison downstream.
#[test]
fn nan_cost_and_negative_rows_fire_cost_finite() {
    let mutant = PhysicalPlan {
        op: scan_t().op,
        estimated_cost: Cost(f64::NAN),
        estimated_rows: -1.0,
    };
    let d = diags(&mutant);
    let finite: Vec<_> = d.iter().filter(|d| d.rule == Rule::CostFinite).collect();
    assert_eq!(finite.len(), 2, "cost and rows each fire:\n{}", report(&d));
    assert_fires(&d, Rule::CostFinite, Severity::Error);
}

/// A pushed filter that is not column-vs-constant: the column-at-a-time
/// kernels cannot evaluate a column-vs-column comparison.
#[test]
fn column_vs_column_pushed_filter_fires_columnar_pushed_filter() {
    let mutant = PhysicalPlan::unestimated(PhysicalOp::SeqScan {
        table: "T".to_owned(),
        schema: t_schema(),
        columnar: Some(ColumnarScan {
            pushed_filter: Some(BoolExpr::col_eq_col("T.id", "T.p")),
            zone_prune: false,
        }),
    });
    assert_fires(&diags(&mutant), Rule::ColumnarPushedFilter, Severity::Error);
}

/// A pushed filter over a column outside the scanned schema: the kernel
/// would index a column vector that does not exist.
#[test]
fn out_of_schema_pushed_filter_fires_columnar_pushed_filter() {
    let mutant = PhysicalPlan::unestimated(PhysicalOp::SeqScan {
        table: "T".to_owned(),
        schema: t_schema(),
        columnar: Some(ColumnarScan {
            pushed_filter: Some(BoolExpr::compare(
                ScalarExpr::col("T.phantom"),
                CompareOp::Eq,
                ScalarExpr::lit(1i64),
            )),
            zone_prune: false,
        }),
    });
    assert_fires(&diags(&mutant), Rule::ColumnarPushedFilter, Severity::Error);
}

/// A zone-pruning scan under a plain `Limit` (no `SortLimit` spine): there
/// is no top-k threshold to prune against, so pruning would drop rows.
#[test]
fn zone_prune_without_sortlimit_fires_columnar_zone_prune() {
    let pruning_scan = PhysicalPlan::unestimated(PhysicalOp::SeqScan {
        table: "T".to_owned(),
        schema: t_schema(),
        columnar: Some(ColumnarScan {
            pushed_filter: None,
            zone_prune: true,
        }),
    });
    let mutant = PhysicalPlan::unestimated(PhysicalOp::Limit {
        input: Box::new(pruning_scan.clone()),
        k: 5,
    });
    assert_fires(&diags(&mutant), Rule::ColumnarZonePrune, Severity::Error);

    // The legal spine — SortLimit → σ → scan — stays clean.
    let legal = PhysicalPlan::unestimated(PhysicalOp::SortLimit {
        input: Box::new(PhysicalPlan::unestimated(PhysicalOp::Filter {
            input: Box::new(pruning_scan),
            predicate: BoolExpr::compare(
                ScalarExpr::col("T.id"),
                CompareOp::Gt,
                ScalarExpr::lit(0i64),
            ),
        })),
        predicates: BitSet64::singleton(0),
        k: 5,
    });
    let d = diags(&legal);
    assert!(d.is_empty(), "legal spine flagged:\n{}", report(&d));
}

/// A µ evaluating predicate #7 of a two-predicate context.
#[test]
fn out_of_range_rank_predicate_fires_rank_predicate_range() {
    let query = two_pred_query();
    let mutant = PhysicalPlan::unestimated(PhysicalOp::RankMaterialize {
        input: Box::new(scan(
            "R",
            &[("jc", DataType::Int64), ("p1", DataType::Float64)],
        )),
        predicate: 7,
    });
    let d = validate_physical(&mutant, Some(&query.ranking), &ValidateOptions::default());
    assert_fires(&d, Rule::RankPredicateRange, Severity::Error);
}

/// MPro with an empty schedule probes nothing; with a duplicated entry it
/// would bill the same predicate twice.
#[test]
fn degenerate_mpro_schedules_fire_rank_predicate_range() {
    let query = two_pred_query();
    let base = scan("R", &[("jc", DataType::Int64), ("p1", DataType::Float64)]);
    for schedule in [vec![], vec![0, 0]] {
        let mutant = PhysicalPlan::unestimated(PhysicalOp::MproProbe {
            input: Box::new(base.clone()),
            schedule,
        });
        let d = validate_physical(&mutant, Some(&query.ranking), &ValidateOptions::default());
        assert_fires(&d, Rule::RankPredicateRange, Severity::Error);
    }
}

/// k = 0 is legal but almost certainly a mistake — a warning, not an error.
#[test]
fn zero_limits_warn_limit_zero() {
    let limit = PhysicalPlan::unestimated(PhysicalOp::Limit {
        input: Box::new(scan_t()),
        k: 0,
    });
    assert_fires(&diags(&limit), Rule::LimitZero, Severity::Warning);
    let sort_limit = PhysicalPlan::unestimated(PhysicalOp::SortLimit {
        input: Box::new(scan_t()),
        predicates: BitSet64::singleton(0),
        k: 0,
    });
    let d = diags(&sort_limit);
    assert_fires(&d, Rule::LimitZero, Severity::Warning);
    assert!(
        !d.iter().any(|x| x.severity == Severity::Error),
        "k = 0 must not be an error:\n{}",
        report(&d)
    );
}

/// The acceptance bar: the corpus above exercises every rule — in
/// particular, strictly more than eight distinct rule ids.
#[test]
fn corpus_covers_all_twelve_rules() {
    let query = two_pred_query();
    let rank_scan = |fields: &[(&str, DataType)]| scan("R", fields);
    let mutants: Vec<(PhysicalPlan, Option<&RankQuery>)> = vec![
        (
            PhysicalPlan::unestimated(PhysicalOp::Project {
                input: Box::new(scan_t()),
                columns: vec!["T.no_such_column".to_owned()],
            }),
            None,
        ),
        (
            PhysicalPlan::unestimated(PhysicalOp::Filter {
                input: Box::new(scan_t()),
                predicate: BoolExpr::compare(
                    ScalarExpr::col("T.missing"),
                    CompareOp::Gt,
                    ScalarExpr::lit(0.0),
                ),
            }),
            None,
        ),
        (
            PhysicalPlan::unestimated(PhysicalOp::Exchange {
                input: Box::new(PhysicalPlan::unestimated(PhysicalOp::HashRankJoin {
                    left: Box::new(rank_scan(&[("jc", DataType::Int64)])),
                    right: Box::new(scan("S", &[("jc", DataType::Int64)])),
                    condition: Some(BoolExpr::col_eq_col("R.jc", "S.jc")),
                })),
                merge: ExchangeMerge::Concat,
            }),
            None,
        ),
        (ordered_exchange(3, Some(5)), None),
        (
            PhysicalPlan::unestimated(PhysicalOp::Filter {
                input: Box::new(scan_t()),
                predicate: BoolExpr::compare(
                    ScalarExpr::col("T.p"),
                    CompareOp::GtEq,
                    ScalarExpr::param(3),
                ),
            }),
            None,
        ),
        (
            PhysicalPlan {
                op: PhysicalOp::Limit {
                    input: Box::new(PhysicalPlan {
                        op: scan_t().op,
                        estimated_cost: Cost(50.0),
                        estimated_rows: 10.0,
                    }),
                    k: 5,
                },
                estimated_cost: Cost(1.0),
                estimated_rows: 5.0,
            },
            None,
        ),
        (
            PhysicalPlan {
                op: scan_t().op,
                estimated_cost: Cost(f64::NAN),
                estimated_rows: -1.0,
            },
            None,
        ),
        (
            PhysicalPlan::unestimated(PhysicalOp::SeqScan {
                table: "T".to_owned(),
                schema: t_schema(),
                columnar: Some(ColumnarScan {
                    pushed_filter: Some(BoolExpr::col_eq_col("T.id", "T.p")),
                    zone_prune: false,
                }),
            }),
            None,
        ),
        (
            PhysicalPlan::unestimated(PhysicalOp::Limit {
                input: Box::new(PhysicalPlan::unestimated(PhysicalOp::SeqScan {
                    table: "T".to_owned(),
                    schema: t_schema(),
                    columnar: Some(ColumnarScan {
                        pushed_filter: None,
                        zone_prune: true,
                    }),
                })),
                k: 5,
            }),
            None,
        ),
        (
            PhysicalPlan::unestimated(PhysicalOp::RankMaterialize {
                input: Box::new(rank_scan(&[
                    ("jc", DataType::Int64),
                    ("p1", DataType::Float64),
                ])),
                predicate: 7,
            }),
            Some(&query),
        ),
        (
            PhysicalPlan::unestimated(PhysicalOp::Limit {
                input: Box::new(scan_t()),
                k: 0,
            }),
            None,
        ),
    ];
    let mut fired: Vec<&'static str> = Vec::new();
    for (mutant, q) in &mutants {
        let d = validate_physical(mutant, q.map(|q| &*q.ranking), &ValidateOptions::default());
        fired.extend(d.iter().map(|d| d.rule.id()));
    }
    fired.sort_unstable();
    fired.dedup();
    assert!(
        fired.len() >= 8,
        "corpus must trigger at least 8 distinct rules, got {:?}",
        fired
    );
    for id in [
        "schema.coherence",
        "schema.predicate-columns",
        "exchange.rank-below",
        "exchange.spine",
        "exchange.merge-limit",
        "params.slots",
        "cost.monotonic",
        "cost.finite",
        "columnar.pushed-filter",
        "columnar.zone-prune",
        "rank.predicate-range",
        "limit.zero",
    ] {
        assert!(fired.contains(&id), "rule {id} never fired: {fired:?}");
    }
}

// ---------------------------------------------------------------------------
// Positive path: everything the real optimizer emits validates clean
// ---------------------------------------------------------------------------

/// A process-unique scratch directory for paged databases, removed on drop.
struct TempDir(std::path::PathBuf);

impl TempDir {
    fn new(tag: &str) -> TempDir {
        static NEXT: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        let n = NEXT.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let dir = std::env::temp_dir().join(format!("ranksql-pv-{tag}-{}-{n}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        TempDir(dir)
    }

    fn path(&self) -> &std::path::Path {
        &self.0
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

const ALL_MODES: [PlanMode; 5] = [
    PlanMode::Canonical,
    PlanMode::Traditional,
    PlanMode::RankAware,
    PlanMode::RankAwareExhaustive,
    PlanMode::RankAwareRuleBased,
];

/// A randomly generated two-table join workload.
#[derive(Debug, Clone)]
struct Workload {
    r_rows: Vec<(i64, f64, bool)>,
    s_rows: Vec<(i64, f64)>,
    k: usize,
}

fn workload() -> impl Strategy<Value = Workload> {
    (
        proptest::collection::vec((0..6i64, 0.0..1.0f64, any::<bool>()), 1..30),
        proptest::collection::vec((0..6i64, 0.0..1.0f64), 1..30),
        1..10usize,
    )
        .prop_map(|(r_rows, s_rows, k)| Workload { r_rows, s_rows, k })
}

fn populate(db: &Database, w: &Workload) -> RankQuery {
    db.create_table(
        "R",
        Schema::new(vec![
            Field::new("jc", DataType::Int64),
            Field::new("p1", DataType::Float64),
            Field::new("flag", DataType::Bool),
        ]),
    )
    .unwrap();
    db.create_table(
        "S",
        Schema::new(vec![
            Field::new("jc", DataType::Int64),
            Field::new("p2", DataType::Float64),
        ]),
    )
    .unwrap();
    for &(jc, p1, flag) in &w.r_rows {
        db.insert(
            "R",
            vec![Value::from(jc), Value::from(p1), Value::from(flag)],
        )
        .unwrap();
    }
    for &(jc, p2) in &w.s_rows {
        db.insert("S", vec![Value::from(jc), Value::from(p2)])
            .unwrap();
    }
    QueryBuilder::new()
        .tables(["R", "S"])
        .filter(BoolExpr::col_eq_col("R.jc", "S.jc"))
        .filter(BoolExpr::compare(
            ScalarExpr::col("R.p1"),
            CompareOp::GtEq,
            ScalarExpr::lit(0.1),
        ))
        .rank_predicate(RankPredicate::attribute("p1", "R.p1"))
        .rank_predicate(RankPredicate::attribute("p2", "S.p2"))
        .limit(w.k)
        .build()
        .unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 6, .. ProptestConfig::default() })]

    /// Every optimizer-emitted plan — 5 modes × 3 backends × serial and
    /// parallel lowering — validates with zero `Error` diagnostics, logical
    /// and physical alike.
    #[test]
    fn optimizer_emitted_plans_validate_clean(w in workload()) {
        let row_db = Database::new().with_storage_backend(StorageBackend::Row);
        let query = populate(&row_db, &w);
        let col_db = Database::new().with_storage_backend(StorageBackend::Columnar);
        populate(&col_db, &w);
        let dir = TempDir::new("prop");
        let paged_db = Database::open_paged(dir.path()).unwrap();
        populate(&paged_db, &w);

        for (db, backend) in [(&row_db, "row"), (&col_db, "columnar"), (&paged_db, "paged")] {
            for mode in ALL_MODES {
                for threads in [1usize, 4] {
                    let optimized = db
                        .session()
                        .with_mode(mode)
                        .with_threads(threads)
                        .plan(&query)
                        .unwrap();
                    let logical = validate_logical(
                        &optimized.plan,
                        Some(&query.ranking),
                        &ValidateOptions::default(),
                    );
                    prop_assert!(
                        !logical.iter().any(|d| d.severity == Severity::Error),
                        "backend {backend}, mode {mode:?}, threads {threads}: logical plan \
                         failed validation:\n{}",
                        report(&logical)
                    );
                    let physical = validate_physical(
                        &optimized.physical,
                        Some(&query.ranking),
                        &ValidateOptions::default(),
                    );
                    prop_assert!(
                        !physical.iter().any(|d| d.severity == Severity::Error),
                        "backend {backend}, mode {mode:?}, threads {threads}: physical plan \
                         failed validation:\n{}",
                        report(&physical)
                    );
                }
            }
        }
    }
}

/// The public surfaces agree: `Database::verify_plan`,
/// `Session::verify_plan` and the `explain` footer all report a clean bill
/// for a healthy query.
#[test]
fn verify_plan_apis_and_explain_footer_report_clean() {
    let db = Database::new();
    db.create_table(
        "T",
        Schema::new(vec![
            Field::new("id", DataType::Int64),
            Field::new("p", DataType::Float64),
        ]),
    )
    .unwrap();
    for i in 0..64i64 {
        db.insert("T", vec![Value::from(i), Value::from(i as f64 / 64.0)])
            .unwrap();
    }
    let query = QueryBuilder::new()
        .table("T")
        .rank_predicate(RankPredicate::attribute("p", "T.p"))
        .limit(5)
        .build()
        .unwrap();
    for mode in ALL_MODES {
        let d = db.verify_plan(&query, mode).unwrap();
        assert!(
            !d.iter().any(|x| x.severity == Severity::Error),
            "mode {mode:?}:\n{}",
            report(&d)
        );
        let explain = db.session().with_mode(mode).explain(&query).unwrap();
        assert!(
            explain.contains("plan validation: clean"),
            "mode {mode:?}: footer missing from:\n{explain}"
        );
    }
    let d = db.session().verify_plan(&query).unwrap();
    assert!(d.is_empty(), "session verify_plan:\n{}", report(&d));
}
