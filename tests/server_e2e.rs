//! End-to-end tests for the `ranksql-server` front end: multi-client
//! histories with interleaved writes across a column seal boundary, and
//! the protocol's error paths.
//!
//! The snapshot-isolation test drives a *deterministic interleaving*: at
//! each point in history a new reader opens a wire cursor alongside a
//! twin in-process cursor, both pull a prefix (pinning their MVCC
//! epochs), a writer then inserts a burst — eventually pushing the table
//! across the 1024-row seal — and every reader must finish streaming the
//! answer its pinned epoch promised, byte-identically to its twin.

use ranksql::common::wire::{opcode, ErrorCode, ResultFingerprint, WireRow};
use ranksql::server::{Server, ServerConfig, ShutdownHandle};
use ranksql::workload::client::{stats_value, ClientError, WireClient};
use ranksql::{Cursor, DataType, Database, Field, Params, PlanMode, Schema, Value};

fn fresh_db(initial_rows: i64) -> Database {
    let db = Database::new();
    db.create_table(
        "T",
        Schema::new(vec![
            Field::new("id", DataType::Int64),
            Field::new("jc", DataType::Int64),
            Field::new("score", DataType::Float64),
        ]),
    )
    .unwrap();
    db.insert_batch("T", (0..initial_rows).map(row_for))
        .unwrap();
    db
}

fn row_for(i: i64) -> Vec<Value> {
    let score = (((i * 2_654_435_761) % 10_000).abs() as f64) / 10_000.0;
    vec![Value::from(i), Value::from(i % 8), Value::from(score)]
}

/// Runs `body` with a served database: binds an ephemeral port, serves on
/// a scoped thread, and shuts down cleanly afterwards.
fn with_server<F>(db: &Database, config: ServerConfig, body: F)
where
    F: FnOnce(std::net::SocketAddr, &ShutdownHandle),
{
    let server = Server::bind(config).unwrap();
    let addr = server.local_addr().unwrap();
    let handle = server.shutdown_handle();
    std::thread::scope(|scope| {
        let serving = scope.spawn(|| server.serve(db));
        // A panicking assertion must still stop the server: the scope
        // joins `serving` before propagating, which would hang forever if
        // the shutdown flag were never set.
        let outcome =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| body(addr, &handle)));
        handle.shutdown();
        serving.join().unwrap().unwrap();
        if let Err(panic) = outcome {
            std::panic::resume_unwind(panic);
        }
    });
}

fn fingerprint_wire(rows: &[WireRow]) -> String {
    let mut fp = ResultFingerprint::new();
    for r in rows {
        fp.fold_wire_row(r);
    }
    fp.to_string()
}

fn fingerprint_engine(cursor: &Cursor, rows: &[ranksql::expr::RankedTuple]) -> String {
    let mut fp = ResultFingerprint::new();
    for r in rows {
        fp.fold_row(cursor.score(r), r.tuple.id().parts(), r.tuple.values());
    }
    fp.to_string()
}

/// One reader in the history: a wire cursor and its in-process twin,
/// opened at the same point in time, compared chunk by chunk.
struct Reader {
    client: WireClient,
    cursor_id: u64,
    twin: Cursor,
    label: &'static str,
}

impl Reader {
    fn open(db: &Database, addr: std::net::SocketAddr, label: &'static str, prefix: u32) -> Reader {
        const SQL: &str = "SELECT * FROM T ORDER BY s(T.score) LIMIT 15";
        let session = db.session().with_mode(PlanMode::RankAware);
        let twin = session
            .prepare(SQL)
            .unwrap()
            .bind(Params::new())
            .unwrap()
            .cursor()
            .unwrap();
        let mut client = WireClient::connect(addr).unwrap();
        client.hello(label, PlanMode::RankAware, 0, 0, 0).unwrap();
        let stmt = client.prepare(SQL).unwrap();
        let bound = client.bind(stmt.statement_id, None, &[]).unwrap();
        let opened = client.open(bound.binding_id).unwrap();
        let mut reader = Reader {
            client,
            cursor_id: opened.cursor_id,
            twin,
            label,
        };
        // Pull a prefix through both cursors: this pins their epochs at
        // the current watermark, before any later burst.
        reader.pull_and_compare(prefix);
        reader
    }

    fn pull_and_compare(&mut self, k: u32) {
        let wire = self.client.fetch(self.cursor_id, k).unwrap();
        let engine = self.twin.take(k as usize).unwrap();
        assert_eq!(
            fingerprint_wire(&wire.rows),
            fingerprint_engine(&self.twin, &engine),
            "reader {} diverged from its twin on a {k}-row chunk",
            self.label
        );
    }

    fn extend_and_compare(&mut self, k: u32) {
        let wire = self.client.fetch_more(self.cursor_id, k).unwrap();
        let engine = self.twin.fetch_more(k as usize).unwrap();
        assert_eq!(
            fingerprint_wire(&wire.rows),
            fingerprint_engine(&self.twin, &engine),
            "reader {} diverged from its twin on a fetch_more({k})",
            self.label
        );
    }

    fn finish(mut self) {
        // Drain whatever the 15-row limit still owes, then close.
        self.pull_and_compare(15);
        self.client.close(self.cursor_id).unwrap();
    }
}

#[test]
fn interleaved_history_streams_pinned_epoch_answers() {
    let db = fresh_db(900);
    with_server(&db, ServerConfig::default(), |addr, _| {
        let mut writer = WireClient::connect(addr).unwrap();
        writer
            .hello("writer", PlanMode::RankAware, 0, 0, 0)
            .unwrap();

        // History: open reader → burst → open reader → burst (crossing the
        // 1024-row seal: 900 → 1100 → 1300) → open reader → burst.
        let mut r1 = Reader::open(&db, addr, "reader-1", 4);
        let burst1: Vec<Vec<Value>> = (900..1100i64).map(row_for).collect();
        assert_eq!(writer.insert("T", &burst1).unwrap(), 200);

        let mut r2 = Reader::open(&db, addr, "reader-2", 5);
        let burst2: Vec<Vec<Value>> = (1100..1300i64).map(row_for).collect();
        assert_eq!(writer.insert("T", &burst2).unwrap(), 200);

        let r3 = Reader::open(&db, addr, "reader-3", 6);
        let burst3: Vec<Vec<Value>> = (1300..1400i64).map(row_for).collect();
        assert_eq!(writer.insert("T", &burst3).unwrap(), 100);

        // Every reader keeps streaming its own pinned-epoch answer,
        // interleaved with each other and with the bursts.
        r1.pull_and_compare(3);
        r2.pull_and_compare(2);
        r1.extend_and_compare(4); // past the original LIMIT, no re-run
        r2.pull_and_compare(8);
        r1.finish();
        r2.finish();
        r3.finish();

        // The pinned epochs differ across readers — each open cursor is
        // its own snapshot (observable through each connection's STATS).
        let mut writer_check = WireClient::connect(addr).unwrap();
        writer_check
            .hello("writer", PlanMode::RankAware, 0, 0, 0)
            .unwrap();
        let stats = writer_check.stats().unwrap();
        assert_eq!(
            stats_value(&stats, "tenant.rows_inserted"),
            Some("500"),
            "writer tenant must account all bursts:\n{stats}"
        );
    });
}

#[test]
fn error_paths_answer_with_stable_codes_and_keep_the_connection() {
    let db = fresh_db(50);
    with_server(&db, ServerConfig::default(), |addr, _| {
        // Before HELLO, everything but HELLO is refused.
        let mut client = WireClient::connect(addr).unwrap();
        match client.prepare("SELECT * FROM T ORDER BY s(T.score) LIMIT 3") {
            Err(ClientError::Server { code, .. }) => {
                assert_eq!(code, ErrorCode::AdmissionDenied)
            }
            other => panic!("expected AdmissionDenied, got {other:?}"),
        }

        client.hello("probe", PlanMode::RankAware, 0, 0, 0).unwrap();

        // Malformed payload: a PREPARE frame whose string length lies.
        client
            .send_raw(opcode::PREPARE, &[0xFF, 0xFF, 0xFF, 0xFF, b'x'])
            .unwrap();
        let (op, payload) = client.read_reply().unwrap();
        assert_eq!(op, opcode::ERROR);
        assert_eq!(
            u16::from_be_bytes([payload[0], payload[1]]),
            ErrorCode::MalformedFrame.as_u16()
        );

        // Unknown opcode: refused, connection still intact.
        client.send_raw(0x66, &[]).unwrap();
        let (op, payload) = client.read_reply().unwrap();
        assert_eq!(op, opcode::ERROR);
        assert_eq!(
            u16::from_be_bytes([payload[0], payload[1]]),
            ErrorCode::UnknownOpcode.as_u16()
        );

        // Unknown ids: statement, then cursor.
        match client.bind(941, None, &[]) {
            Err(ClientError::Server { code, .. }) => {
                assert_eq!(code, ErrorCode::UnknownStatement)
            }
            other => panic!("expected UnknownStatement, got {other:?}"),
        }
        match client.fetch(941, 1) {
            Err(ClientError::Server { code, .. }) => assert_eq!(code, ErrorCode::UnknownCursor),
            other => panic!("expected UnknownCursor, got {other:?}"),
        }

        // The connection survived all of the above and counted them.
        let stats = client.stats().unwrap();
        let errors: u64 = stats_value(&stats, "tenant.protocol_errors")
            .and_then(|v| v.parse().ok())
            .unwrap();
        assert!(errors >= 4, "expected >=4 protocol errors:\n{stats}");

        // An engine error (unknown table — caught when the bind plans
        // against the catalog) maps to its category code and also keeps
        // the connection.
        let ghost = client
            .prepare("SELECT * FROM Nope ORDER BY s(Nope.x) LIMIT 1")
            .unwrap();
        match client.bind(ghost.statement_id, None, &[]) {
            Err(ClientError::Server { code, category, .. }) => {
                assert_eq!(code, ErrorCode::Catalog);
                assert_eq!(category, "catalog");
            }
            other => panic!("expected Catalog error, got {other:?}"),
        }
        assert!(client.stats().is_ok());

        // Oversized frame: answered with OversizedFrame, then the server
        // hangs up (the stream is no longer framed past a forged header).
        let mut big = WireClient::connect(addr).unwrap();
        big.hello("probe", PlanMode::RankAware, 0, 0, 0).unwrap();
        let forged = (ranksql::common::wire::MAX_FRAME_LEN + 1).to_be_bytes();
        big.send_unframed(&forged).unwrap();
        let (op, payload) = big.read_reply().unwrap();
        assert_eq!(op, opcode::ERROR);
        assert_eq!(
            u16::from_be_bytes([payload[0], payload[1]]),
            ErrorCode::OversizedFrame.as_u16()
        );
        assert!(
            big.read_reply().is_err(),
            "server must close after an oversized frame"
        );
    });
}

#[test]
fn tuple_budget_rejections_surface_and_count() {
    let db = fresh_db(400);
    let config = ServerConfig::default().with_max_tuple_budget(10);
    with_server(&db, config, |addr, _| {
        let mut client = WireClient::connect(addr).unwrap();
        // Requesting "no budget" (0) cannot escape the server cap.
        let hello = client
            .hello("greedy", PlanMode::RankAware, 0, 0, 0)
            .unwrap();
        assert_eq!(hello.tuple_budget, 10);

        let stmt = client
            .prepare("SELECT * FROM T ORDER BY s(T.score) LIMIT 200")
            .unwrap();
        let bound = client.bind(stmt.statement_id, None, &[]).unwrap();
        let opened = client.open(bound.binding_id).unwrap();
        match client.fetch(opened.cursor_id, 200) {
            Err(ClientError::Server { code, message, .. }) => {
                assert_eq!(code, ErrorCode::BudgetExceeded, "{message}");
            }
            other => panic!("expected BudgetExceeded, got {other:?}"),
        }

        let stats = client.stats().unwrap();
        assert_eq!(
            stats_value(&stats, "tenant.budget_rejections"),
            Some("1"),
            "budget rejection must be counted:\n{stats}"
        );
        assert_eq!(stats_value(&stats, "session.tuple_budget"), Some("10"));
    });
}

#[test]
fn admission_clamps_are_echoed_and_cursor_limit_enforced() {
    let db = fresh_db(100);
    let config = ServerConfig::default()
        .with_max_threads(2)
        .with_max_batch_size(256)
        .with_max_open_cursors(2);
    with_server(&db, config, |addr, _| {
        let mut client = WireClient::connect(addr).unwrap();
        let hello = client
            .hello("clamped", PlanMode::RankAware, 999, 1_000_000, 0)
            .unwrap();
        assert_eq!(hello.threads, 2, "threads clamp to the server cap");
        assert_eq!(hello.batch_size, 256, "batch clamps to the server cap");

        let stmt = client
            .prepare("SELECT * FROM T ORDER BY s(T.score) LIMIT 5")
            .unwrap();
        let bound = client.bind(stmt.statement_id, None, &[]).unwrap();
        let c1 = client.open(bound.binding_id).unwrap();
        let _c2 = client.open(bound.binding_id).unwrap();
        match client.open(bound.binding_id) {
            Err(ClientError::Server { code, .. }) => assert_eq!(code, ErrorCode::CursorLimit),
            other => panic!("expected CursorLimit, got {other:?}"),
        }
        // Closing one frees a slot.
        client.close(c1.cursor_id).unwrap();
        client.open(bound.binding_id).unwrap();
    });
}
