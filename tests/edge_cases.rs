//! Edge-case integration tests across the whole stack: empty inputs, extreme
//! `k` values, ties, boundary scores, empty filters, and unusual scoring
//! functions.  Every case is checked against all plan modes so that the
//! rank-aware paths, the traditional baseline and the canonical plan agree on
//! the corner cases too.

use ranksql::{
    BoolExpr, DataType, Database, Field, PlanMode, QueryBuilder, RankPredicate, RankQuery, Schema,
    ScoringFunction, Value,
};

const ALL_MODES: [PlanMode; 5] = [
    PlanMode::Canonical,
    PlanMode::Traditional,
    PlanMode::RankAware,
    PlanMode::RankAwareExhaustive,
    PlanMode::RankAwareRuleBased,
];

fn rounded(scores: &[f64]) -> Vec<i64> {
    scores.iter().map(|s| (s * 1e9).round() as i64).collect()
}

/// A small two-table database with controllable scores.
fn two_table_db(rows: usize) -> Database {
    let db = Database::new();
    db.create_table(
        "L",
        Schema::new(vec![
            Field::new("id", DataType::Int64),
            Field::new("jc", DataType::Int64),
            Field::new("p", DataType::Float64),
        ]),
    )
    .unwrap();
    db.create_table(
        "R",
        Schema::new(vec![
            Field::new("id", DataType::Int64),
            Field::new("jc", DataType::Int64),
            Field::new("q", DataType::Float64),
        ]),
    )
    .unwrap();
    for i in 0..rows as i64 {
        db.insert(
            "L",
            vec![
                Value::from(i),
                Value::from(i % 7),
                Value::from(((i * 13) % 100) as f64 / 100.0),
            ],
        )
        .unwrap();
        db.insert(
            "R",
            vec![
                Value::from(i),
                Value::from(i % 7),
                Value::from(((i * 31) % 100) as f64 / 100.0),
            ],
        )
        .unwrap();
    }
    db
}

fn join_query(k: usize) -> RankQuery {
    QueryBuilder::new()
        .tables(["L", "R"])
        .filter(BoolExpr::col_eq_col("L.jc", "R.jc"))
        .rank_predicate(RankPredicate::attribute("lp", "L.p"))
        .rank_predicate(RankPredicate::attribute("rq", "R.q"))
        .limit(k)
        .build()
        .unwrap()
}

#[test]
fn k_zero_returns_no_rows_in_every_mode() {
    let db = two_table_db(50);
    let query = join_query(0);
    for mode in ALL_MODES {
        let r = db.execute_with_mode(&query, mode).unwrap();
        assert!(
            r.rows.is_empty(),
            "mode {mode:?} returned {} rows for k = 0",
            r.rows.len()
        );
    }
}

#[test]
fn k_larger_than_result_set_returns_everything() {
    // 20 rows per side joined on a 7-valued key: |L ⋈ R| = Σ |L_i|·|R_i| < 400,
    // so k = 10 000 must return exactly the full join, in every mode.
    let db = two_table_db(20);
    let query = join_query(10_000);
    let reference = db.execute_with_mode(&query, PlanMode::Canonical).unwrap();
    assert!(!reference.rows.is_empty());
    assert!(reference.rows.len() < 10_000);
    for mode in ALL_MODES {
        let r = db.execute_with_mode(&query, mode).unwrap();
        assert_eq!(r.rows.len(), reference.rows.len(), "mode {mode:?}");
        assert_eq!(
            rounded(&r.scores()),
            rounded(&reference.scores()),
            "mode {mode:?}"
        );
    }
}

#[test]
fn empty_tables_yield_empty_results() {
    let db = two_table_db(0);
    let query = join_query(5);
    for mode in ALL_MODES {
        let r = db.execute_with_mode(&query, mode).unwrap();
        assert!(r.rows.is_empty(), "mode {mode:?}");
    }
}

#[test]
fn one_empty_join_side_yields_empty_results() {
    let db = two_table_db(0);
    // Re-populate only L.
    for i in 0..30i64 {
        db.insert(
            "L",
            vec![Value::from(i), Value::from(i % 7), Value::from(0.5)],
        )
        .unwrap();
    }
    let query = join_query(5);
    for mode in ALL_MODES {
        let r = db.execute_with_mode(&query, mode).unwrap();
        assert!(r.rows.is_empty(), "mode {mode:?}");
    }
}

#[test]
fn single_row_tables_work() {
    let db = two_table_db(1);
    let query = join_query(3);
    for mode in ALL_MODES {
        let r = db.execute_with_mode(&query, mode).unwrap();
        assert_eq!(r.rows.len(), 1, "mode {mode:?}");
    }
}

#[test]
fn filter_that_removes_everything() {
    let db = two_table_db(40);
    let query = QueryBuilder::new()
        .tables(["L", "R"])
        .filter(BoolExpr::col_eq_col("L.jc", "R.jc"))
        .filter(BoolExpr::compare(
            ranksql::ScalarExpr::col("L.id"),
            ranksql::CompareOp::Lt,
            ranksql::ScalarExpr::Literal(Value::from(-1)),
        ))
        .rank_predicate(RankPredicate::attribute("lp", "L.p"))
        .rank_predicate(RankPredicate::attribute("rq", "R.q"))
        .limit(5)
        .build()
        .unwrap();
    for mode in ALL_MODES {
        let r = db.execute_with_mode(&query, mode).unwrap();
        assert!(r.rows.is_empty(), "mode {mode:?}");
    }
}

#[test]
fn all_scores_tied_returns_k_rows_with_equal_scores() {
    let db = Database::new();
    db.create_table(
        "T",
        Schema::new(vec![
            Field::new("id", DataType::Int64),
            Field::new("p", DataType::Float64),
        ]),
    )
    .unwrap();
    for i in 0..25i64 {
        db.insert("T", vec![Value::from(i), Value::from(0.75)])
            .unwrap();
    }
    let query = QueryBuilder::new()
        .table("T")
        .rank_predicate(RankPredicate::attribute("p", "T.p"))
        .limit(10)
        .build()
        .unwrap();
    for mode in ALL_MODES {
        let r = db.execute_with_mode(&query, mode).unwrap();
        assert_eq!(r.rows.len(), 10, "mode {mode:?}");
        assert!(
            r.scores().iter().all(|s| (s - 0.75).abs() < 1e-12),
            "mode {mode:?}"
        );
    }
}

#[test]
fn boundary_scores_zero_and_one() {
    let db = Database::new();
    db.create_table(
        "T",
        Schema::new(vec![
            Field::new("id", DataType::Int64),
            Field::new("p", DataType::Float64),
        ]),
    )
    .unwrap();
    // Half the rows have the worst possible score, half the best.
    for i in 0..20i64 {
        db.insert(
            "T",
            vec![
                Value::from(i),
                Value::from(if i % 2 == 0 { 0.0 } else { 1.0 }),
            ],
        )
        .unwrap();
    }
    let query = QueryBuilder::new()
        .table("T")
        .rank_predicate(RankPredicate::attribute("p", "T.p"))
        .limit(10)
        .build()
        .unwrap();
    for mode in ALL_MODES {
        let r = db.execute_with_mode(&query, mode).unwrap();
        assert_eq!(r.rows.len(), 10, "mode {mode:?}");
        assert!(
            r.scores().iter().all(|s| (s - 1.0).abs() < 1e-12),
            "mode {mode:?}"
        );
    }
}

#[test]
fn query_without_ranking_predicates_is_a_plain_limit() {
    // A LIMIT query with no ORDER BY ranking: every mode must return exactly
    // k joined rows (any k rows are acceptable — membership only).
    let db = two_table_db(30);
    let query = QueryBuilder::new()
        .tables(["L", "R"])
        .filter(BoolExpr::col_eq_col("L.jc", "R.jc"))
        .limit(6)
        .build()
        .unwrap();
    for mode in ALL_MODES {
        let r = db.execute_with_mode(&query, mode).unwrap();
        assert_eq!(r.rows.len(), 6, "mode {mode:?}");
    }
}

#[test]
fn projection_with_ranking_keeps_scores_and_narrows_schema() {
    let db = two_table_db(40);
    let query = QueryBuilder::new()
        .tables(["L", "R"])
        .filter(BoolExpr::col_eq_col("L.jc", "R.jc"))
        .rank_predicate(RankPredicate::attribute("lp", "L.p"))
        .rank_predicate(RankPredicate::attribute("rq", "R.q"))
        .project(["L.id", "R.id"])
        .limit(4)
        .build()
        .unwrap();
    let reference = db.execute_with_mode(&query, PlanMode::Canonical).unwrap();
    for mode in ALL_MODES {
        let r = db.execute_with_mode(&query, mode).unwrap();
        assert_eq!(r.schema.len(), 2, "mode {mode:?}");
        assert_eq!(
            rounded(&r.scores()),
            rounded(&reference.scores()),
            "mode {mode:?}"
        );
    }
}

#[test]
fn weighted_sum_scoring_agrees_across_modes() {
    let db = two_table_db(60);
    let query = QueryBuilder::new()
        .tables(["L", "R"])
        .filter(BoolExpr::col_eq_col("L.jc", "R.jc"))
        .rank_predicate(RankPredicate::attribute("lp", "L.p"))
        .rank_predicate(RankPredicate::attribute("rq", "R.q"))
        .scoring(ScoringFunction::weighted_sum(vec![3.0, 0.5]))
        .limit(5)
        .build()
        .unwrap();
    let reference = db.execute_with_mode(&query, PlanMode::Canonical).unwrap();
    assert_eq!(reference.rows.len(), 5);
    for mode in ALL_MODES {
        let r = db.execute_with_mode(&query, mode).unwrap();
        assert_eq!(
            rounded(&r.scores()),
            rounded(&reference.scores()),
            "mode {mode:?}"
        );
    }
}

#[test]
fn product_and_min_scoring_agree_across_modes() {
    let db = two_table_db(60);
    for scoring in [
        ScoringFunction::Product,
        ScoringFunction::Min,
        ScoringFunction::Average,
    ] {
        let query = QueryBuilder::new()
            .tables(["L", "R"])
            .filter(BoolExpr::col_eq_col("L.jc", "R.jc"))
            .rank_predicate(RankPredicate::attribute("lp", "L.p"))
            .rank_predicate(RankPredicate::attribute("rq", "R.q"))
            .scoring(scoring.clone())
            .limit(7)
            .build()
            .unwrap();
        let reference = db.execute_with_mode(&query, PlanMode::Canonical).unwrap();
        for mode in ALL_MODES {
            let r = db.execute_with_mode(&query, mode).unwrap();
            assert_eq!(
                rounded(&r.scores()),
                rounded(&reference.scores()),
                "scoring {scoring} mode {mode:?}"
            );
        }
    }
}

#[test]
fn duplicate_rank_predicate_on_the_same_column_is_allowed() {
    // Two ranking predicates over the same column simply double its weight.
    let db = two_table_db(40);
    let query = QueryBuilder::new()
        .tables(["L", "R"])
        .filter(BoolExpr::col_eq_col("L.jc", "R.jc"))
        .rank_predicate(RankPredicate::attribute("p_a", "L.p"))
        .rank_predicate(RankPredicate::attribute("p_b", "L.p"))
        .rank_predicate(RankPredicate::attribute("rq", "R.q"))
        .limit(5)
        .build()
        .unwrap();
    let reference = db.execute_with_mode(&query, PlanMode::Canonical).unwrap();
    for mode in ALL_MODES {
        let r = db.execute_with_mode(&query, mode).unwrap();
        assert_eq!(
            rounded(&r.scores()),
            rounded(&reference.scores()),
            "mode {mode:?}"
        );
    }
}

#[test]
fn k_equals_result_set_size_exactly() {
    let db = Database::new();
    db.create_table(
        "T",
        Schema::new(vec![
            Field::new("id", DataType::Int64),
            Field::new("p", DataType::Float64),
        ]),
    )
    .unwrap();
    for i in 0..8i64 {
        db.insert("T", vec![Value::from(i), Value::from(i as f64 / 10.0)])
            .unwrap();
    }
    let query = QueryBuilder::new()
        .table("T")
        .rank_predicate(RankPredicate::attribute("p", "T.p"))
        .limit(8)
        .build()
        .unwrap();
    for mode in ALL_MODES {
        let r = db.execute_with_mode(&query, mode).unwrap();
        assert_eq!(r.rows.len(), 8, "mode {mode:?}");
        // Descending order 0.7, 0.6, ..., 0.0.
        let scores = r.scores();
        for w in scores.windows(2) {
            assert!(w[0] >= w[1] - 1e-12, "mode {mode:?}: {scores:?} not sorted");
        }
    }
}

#[test]
fn null_scores_rank_last_and_never_panic() {
    let db = Database::new();
    db.create_table(
        "T",
        Schema::new(vec![
            Field::new("id", DataType::Int64),
            Field::new("p", DataType::Float64),
        ]),
    )
    .unwrap();
    db.insert("T", vec![Value::from(1), Value::from(0.9)])
        .unwrap();
    db.insert("T", vec![Value::from(2), Value::Null]).unwrap();
    db.insert("T", vec![Value::from(3), Value::from(0.4)])
        .unwrap();
    let query = QueryBuilder::new()
        .table("T")
        .rank_predicate(RankPredicate::attribute("p", "T.p"))
        .limit(3)
        .build()
        .unwrap();
    for mode in ALL_MODES {
        let r = db.execute_with_mode(&query, mode).unwrap();
        assert_eq!(r.rows.len(), 3, "mode {mode:?}");
        // NULL evaluates to the worst score (0.0), so tuple 2 is last.
        assert_eq!(r.rows[2].tuple.value(0), &Value::from(2), "mode {mode:?}");
        assert_eq!(r.scores()[2], 0.0, "mode {mode:?}");
    }
}

#[test]
fn out_of_range_scores_are_clamped_to_the_unit_interval() {
    let db = Database::new();
    db.create_table(
        "T",
        Schema::new(vec![
            Field::new("id", DataType::Int64),
            Field::new("p", DataType::Float64),
        ]),
    )
    .unwrap();
    db.insert("T", vec![Value::from(1), Value::from(7.5)])
        .unwrap(); // clamps to 1.0
    db.insert("T", vec![Value::from(2), Value::from(-3.0)])
        .unwrap(); // clamps to 0.0
    db.insert("T", vec![Value::from(3), Value::from(0.5)])
        .unwrap();
    let query = QueryBuilder::new()
        .table("T")
        .rank_predicate(RankPredicate::attribute("p", "T.p"))
        .limit(3)
        .build()
        .unwrap();
    for mode in ALL_MODES {
        let r = db.execute_with_mode(&query, mode).unwrap();
        let scores = r.scores();
        assert_eq!(rounded(&scores), rounded(&[1.0, 0.5, 0.0]), "mode {mode:?}");
        assert_eq!(r.rows[0].tuple.value(0), &Value::from(1), "mode {mode:?}");
        assert_eq!(r.rows[2].tuple.value(0), &Value::from(2), "mode {mode:?}");
    }
}

#[test]
fn three_way_join_with_mixed_predicate_coverage() {
    // One table carries no ranking predicate at all; the optimizer still has
    // to join it and the answer must match the canonical plan.
    let db = two_table_db(25);
    db.create_table(
        "M",
        Schema::new(vec![
            Field::new("jc", DataType::Int64),
            Field::new("tag", DataType::Int64),
        ]),
    )
    .unwrap();
    for i in 0..25i64 {
        db.insert("M", vec![Value::from(i % 7), Value::from(i)])
            .unwrap();
    }
    let query = QueryBuilder::new()
        .tables(["L", "R", "M"])
        .filter(BoolExpr::col_eq_col("L.jc", "R.jc"))
        .filter(BoolExpr::col_eq_col("R.jc", "M.jc"))
        .rank_predicate(RankPredicate::attribute("lp", "L.p"))
        .rank_predicate(RankPredicate::attribute("rq", "R.q"))
        .limit(5)
        .build()
        .unwrap();
    let reference = db.execute_with_mode(&query, PlanMode::Canonical).unwrap();
    assert_eq!(reference.rows.len(), 5);
    for mode in ALL_MODES {
        let r = db.execute_with_mode(&query, mode).unwrap();
        assert_eq!(
            rounded(&r.scores()),
            rounded(&reference.scores()),
            "mode {mode:?}"
        );
    }
}
