//! Batch-mode vs tuple-mode execution equivalence.
//!
//! The batched pull interface (`PhysicalOperator::next_batch`) must be a
//! pure chunking of the tuple stream `next()` produces: same membership,
//! same order, same scores — for every plan mode and any batch size.  These
//! properties drive randomly generated two-table workloads through all five
//! `PlanMode`s, executing each chosen physical plan once tuple-at-a-time and
//! once batched, and require identical ordered results.

use proptest::prelude::*;

use ranksql::executor::{build_operator, drain, drain_batched, ExecutionContext};
use ranksql::expr::RankPredicate;
use ranksql::{
    BoolExpr, DataType, Database, Field, PlanMode, QueryBuilder, RankQuery, Schema, Value,
};

const ALL_MODES: [PlanMode; 5] = [
    PlanMode::Canonical,
    PlanMode::Traditional,
    PlanMode::RankAware,
    PlanMode::RankAwareExhaustive,
    PlanMode::RankAwareRuleBased,
];

/// A randomly generated two-table join workload.
#[derive(Debug, Clone)]
struct Workload {
    /// Rows of table R: (join column, p1 score, boolean flag).
    r_rows: Vec<(i64, f64, bool)>,
    /// Rows of table S: (join column, p2 score).
    s_rows: Vec<(i64, f64)>,
    /// Requested result size.
    k: usize,
    /// Batch size for the batched execution.
    batch_size: usize,
}

fn workload() -> impl Strategy<Value = Workload> {
    (
        proptest::collection::vec((0..6i64, 0.0..1.0f64, any::<bool>()), 1..30),
        proptest::collection::vec((0..6i64, 0.0..1.0f64), 1..30),
        1..10usize,
        1..512usize,
    )
        .prop_map(|(r_rows, s_rows, k, batch_size)| Workload {
            r_rows,
            s_rows,
            k,
            batch_size,
        })
}

fn build_database(w: &Workload) -> (Database, RankQuery) {
    let db = Database::new();
    db.create_table(
        "R",
        Schema::new(vec![
            Field::new("jc", DataType::Int64),
            Field::new("p1", DataType::Float64),
            Field::new("flag", DataType::Bool),
        ]),
    )
    .unwrap();
    db.create_table(
        "S",
        Schema::new(vec![
            Field::new("jc", DataType::Int64),
            Field::new("p2", DataType::Float64),
        ]),
    )
    .unwrap();
    for &(jc, p1, flag) in &w.r_rows {
        db.insert(
            "R",
            vec![Value::from(jc), Value::from(p1), Value::from(flag)],
        )
        .unwrap();
    }
    for &(jc, p2) in &w.s_rows {
        db.insert("S", vec![Value::from(jc), Value::from(p2)])
            .unwrap();
    }
    let query = QueryBuilder::new()
        .tables(["R", "S"])
        .filter(BoolExpr::col_eq_col("R.jc", "S.jc"))
        .rank_predicate(RankPredicate::attribute("p1", "R.p1"))
        .rank_predicate(RankPredicate::attribute("p2", "S.p2"))
        .limit(w.k)
        .build()
        .unwrap();
    (db, query)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, .. ProptestConfig::default() })]

    /// For every plan mode, driving the physical plan through `next_batch`
    /// (any batch size ≥ 1) yields exactly the tuple-at-a-time result:
    /// same tuples, same order, same scores.
    #[test]
    fn batch_mode_equals_tuple_mode_for_all_plan_modes(w in workload()) {
        let (db, query) = build_database(&w);
        for mode in ALL_MODES {
            let physical = db.plan(&query, mode).unwrap().physical;

            let tuple_exec = ExecutionContext::new(query.ranking.clone());
            let mut tuple_root = build_operator(&physical, db.catalog(), &tuple_exec).unwrap();
            let tuple_rows = drain(tuple_root.as_mut()).unwrap();

            let batch_exec =
                ExecutionContext::new(query.ranking.clone()).with_batch_size(w.batch_size);
            let mut batch_root = build_operator(&physical, db.catalog(), &batch_exec).unwrap();
            let batch_rows = drain_batched(batch_root.as_mut(), w.batch_size).unwrap();

            prop_assert_eq!(
                tuple_rows.len(),
                batch_rows.len(),
                "mode {:?}, batch size {}: row counts differ",
                mode,
                w.batch_size
            );
            for (i, (t, b)) in tuple_rows.iter().zip(batch_rows.iter()).enumerate() {
                prop_assert_eq!(
                    t.tuple.id(),
                    b.tuple.id(),
                    "mode {:?}, batch size {}: tuple {} differs",
                    mode,
                    w.batch_size,
                    i
                );
                prop_assert_eq!(
                    query.ranking.upper_bound(&t.state),
                    query.ranking.upper_bound(&b.state),
                    "mode {:?}, batch size {}: score {} differs",
                    mode,
                    w.batch_size,
                    i
                );
            }
        }
    }
}

/// `explain_analyze` reports batch statistics for operators that ran through
/// the batched pull path (the default execution path).
#[test]
fn explain_analyze_reports_batches_and_mean_fill() {
    let w = Workload {
        r_rows: (0..40).map(|i| (i % 6, (i as f64) / 40.0, true)).collect(),
        s_rows: (0..40).map(|i| (i % 6, (i as f64) / 40.0)).collect(),
        k: 5,
        batch_size: 8,
    };
    let (db, query) = build_database(&w);
    let result = db.execute_with_mode(&query, PlanMode::Canonical).unwrap();
    let analyzed = result.explain_analyze(Some(&query.ranking));
    assert!(analyzed.contains("actual_rows="), "{analyzed}");
    assert!(analyzed.contains("batches="), "{analyzed}");
    assert!(analyzed.contains("mean_batch_fill="), "{analyzed}");
}
