//! End-to-end integration tests through the `Database` facade and the SQL
//! front end, over the paper's synthetic workload.

use ranksql::executor::oracle_top_k;
use ranksql::workload::{SyntheticConfig, SyntheticWorkload};
use ranksql::{parse_topk_query, Database, PlanMode, Value};

/// Copies a generated workload catalog into a `Database`.
fn into_database(workload: &SyntheticWorkload) -> Database {
    let db = Database::new();
    for name in workload.catalog.table_names() {
        let src = workload.catalog.table(&name).unwrap();
        let dst = db
            .create_table(
                &name,
                ranksql::Schema::new(
                    src.schema()
                        .fields()
                        .iter()
                        .map(|f| ranksql::Field::new(f.name.clone(), f.data_type))
                        .collect(),
                ),
            )
            .unwrap();
        for t in src.scan() {
            dst.insert(t.values().to_vec()).unwrap();
        }
    }
    db
}

#[test]
fn parsed_query_q_matches_oracle_under_all_plan_modes() {
    let workload = SyntheticWorkload::generate(SyntheticConfig {
        table_size: 150,
        join_selectivity: 0.02,
        predicate_cost: 1,
        k: 10,
        ..SyntheticConfig::default()
    })
    .unwrap();
    let db = into_database(&workload);

    // The paper's query Q, straight through the SQL front end.
    let query = parse_topk_query(
        "SELECT * FROM A, B, C \
         WHERE A.jc1 = B.jc1 AND B.jc2 = C.jc2 AND A.b AND B.b \
         ORDER BY f1(A.p1) + f2(A.p2) + f3(B.p1) + f4(B.p2) + f5(C.p1) \
         LIMIT 10",
    )
    .unwrap();

    let oracle = oracle_top_k(&query, db.catalog()).unwrap();
    let expected: Vec<f64> = oracle
        .iter()
        .map(|t| query.ranking.upper_bound(&t.state).value())
        .collect();

    for mode in [
        PlanMode::Canonical,
        PlanMode::Traditional,
        PlanMode::RankAware,
        PlanMode::RankAwareExhaustive,
    ] {
        let result = db.execute_with_mode(&query, mode).unwrap();
        assert_eq!(result.scores(), expected, "mode {mode:?}");
        assert!(result.rows.len() <= 10);
    }
}

#[test]
fn rank_aware_mode_does_less_predicate_work_with_expensive_predicates() {
    let workload = SyntheticWorkload::generate(SyntheticConfig {
        table_size: 150,
        join_selectivity: 0.02,
        predicate_cost: 20,
        k: 5,
        ..SyntheticConfig::default()
    })
    .unwrap();
    let db = into_database(&workload);
    let query = &workload.query;

    let canonical = db.execute_with_mode(query, PlanMode::Canonical).unwrap();
    let rank_aware = db.execute_with_mode(query, PlanMode::RankAware).unwrap();
    assert_eq!(canonical.scores(), rank_aware.scores());
    assert!(
        rank_aware.total_predicate_evaluations() <= canonical.total_predicate_evaluations(),
        "rank-aware: {} evaluations, canonical: {}",
        rank_aware.total_predicate_evaluations(),
        canonical.total_predicate_evaluations()
    );
}

#[test]
fn incremental_k_semantics() {
    // Increasing k only extends the result list; the prefix stays the same.
    let workload = SyntheticWorkload::generate(SyntheticConfig {
        table_size: 120,
        join_selectivity: 0.05,
        predicate_cost: 1,
        k: 3,
        ..SyntheticConfig::default()
    })
    .unwrap();
    let db = into_database(&workload);
    let mut q3 = workload.query.clone();
    q3.k = 3;
    let mut q8 = workload.query.clone();
    q8.k = 8;
    let r3 = db.execute_with_mode(&q3, PlanMode::RankAware).unwrap();
    let r8 = db.execute_with_mode(&q8, PlanMode::RankAware).unwrap();
    assert!(r8.rows.len() >= r3.rows.len());
    for (a, b) in r3.scores().iter().zip(r8.scores().iter()) {
        assert!((a - b).abs() < 1e-9);
    }
}

#[test]
fn projection_through_the_facade() {
    let db = Database::new();
    db.create_table(
        "T",
        ranksql::Schema::new(vec![
            ranksql::Field::new("id", ranksql::DataType::Int64),
            ranksql::Field::new("noise", ranksql::DataType::Utf8),
            ranksql::Field::new("p", ranksql::DataType::Float64),
        ]),
    )
    .unwrap();
    for i in 0..30i64 {
        db.insert(
            "T",
            vec![
                Value::from(i),
                Value::from(format!("row-{i}")),
                Value::from((i as f64) / 30.0),
            ],
        )
        .unwrap();
    }
    let query = parse_topk_query("SELECT T.id FROM T ORDER BY T.p LIMIT 4").unwrap();
    let result = db.execute_with_mode(&query, PlanMode::Canonical).unwrap();
    assert_eq!(result.schema.len(), 1);
    assert_eq!(result.rows.len(), 4);
    assert_eq!(result.rows[0].tuple.value(0), &Value::from(29));
}
