//! Integration tests reproducing the paper's worked examples end to end:
//! the Figure 6 plans over relation S, the Example 4 cost analysis, the
//! Figure 7 / Example 1 trip-planning query, and the Figure 11 plan shapes
//! over the synthetic workload.

use ranksql::executor::{execute_plan, execute_query_plan, oracle_top_k};
use ranksql::workload::micro;
use ranksql::workload::trip::{TripConfig, TripWorkload};
use ranksql::workload::{SyntheticConfig, SyntheticWorkload};
use ranksql::{
    BoolExpr, JoinAlgorithm, LogicalPlan, PlanMode, QueryBuilder, RankPredicate, RankQuery,
};
use ranksql_common::BitSet64;
use ranksql_storage::Catalog;

fn scores(query: &RankQuery, tuples: &[ranksql::expr::RankedTuple]) -> Vec<f64> {
    tuples
        .iter()
        .map(|t| query.ranking.upper_bound(&t.state).value())
        .collect()
}

/// Example 3 / Figure 6: the three equivalent plans over S return the same
/// top-1 (tuple s2 with score 2.55), but process different numbers of tuples.
#[test]
fn figure6_three_plans_agree_and_differ_in_work() {
    let catalog = Catalog::new();
    let s = micro::relation_s(&catalog);
    let query = QueryBuilder::new()
        .table("S")
        .rank_predicate(RankPredicate::attribute("p3", "S.p3"))
        .rank_predicate(RankPredicate::attribute("p4", "S.p4"))
        .rank_predicate(RankPredicate::attribute("p5", "S.p5"))
        .limit(1)
        .build()
        .unwrap();

    // Plan (a): seq-scan + blocking sort.
    let plan_a = LogicalPlan::scan(&s).sort(BitSet64::all(3)).limit(1);
    // Plan (b): idxScan_p3 + µ_p4 + µ_p5.
    let plan_b = LogicalPlan::rank_scan(&s, 0).rank(1).rank(2).limit(1);
    // Plan (c): idxScan_p3 + µ_p5 + µ_p4.
    let plan_c = LogicalPlan::rank_scan(&s, 0).rank(2).rank(1).limit(1);

    let mut per_plan = Vec::new();
    for plan in [&plan_a, &plan_b, &plan_c] {
        let result = execute_query_plan(&query, plan, &catalog).unwrap();
        assert_eq!(result.tuples.len(), 1);
        assert!((scores(&query, &result.tuples)[0] - 2.55).abs() < 1e-9);
        per_plan.push(result);
    }
    // Example 4: plan (a) evaluates every predicate on every tuple (18), plan
    // (b) needs 3 + 2 = 5 evaluations, plan (c) needs 3 + 5 = 8.
    assert_eq!(per_plan[0].total_predicate_evaluations(), 18);
    assert_eq!(per_plan[1].predicate_evaluations, vec![0, 3, 2]);
    assert_eq!(per_plan[2].predicate_evaluations, vec![0, 3, 5]);
}

/// Figure 6 continued: draining the pipelined plan yields exactly the sorted
/// relation of Figure 6(a).
#[test]
fn figure6_full_order_matches_sorted_relation() {
    let catalog = Catalog::new();
    let s = micro::relation_s(&catalog);
    let ctx = micro::context_f2();
    let plan = LogicalPlan::rank_scan(&s, 0).rank(1).rank(2);
    let result = execute_plan(&plan, &catalog, &ctx).unwrap();
    let got: Vec<f64> = result
        .tuples
        .iter()
        .map(|t| ctx.upper_bound(&t.state).value())
        .collect();
    let expected = [2.55, 2.4, 2.05, 1.8, 1.7, 1.6];
    assert_eq!(got.len(), expected.len());
    for (g, e) in got.iter().zip(expected.iter()) {
        assert!((g - e).abs() < 1e-9, "{got:?} != {expected:?}");
    }
}

/// Example 1 / Figure 7: the trip-planning query returns identical answers
/// under the traditional and the rank-aware optimizer, and the rank-aware
/// plan evaluates fewer expensive predicates.
#[test]
fn example1_trip_planning_plans_agree() {
    let workload = TripWorkload::generate(TripConfig {
        hotels: 80,
        restaurants: 60,
        museums: 30,
        ..TripConfig::default()
    })
    .unwrap();
    let query = &workload.query;
    let oracle = oracle_top_k(query, &workload.catalog).unwrap();

    let db = ranksql::Database::new();
    for name in workload.catalog.table_names() {
        let src = workload.catalog.table(&name).unwrap();
        let dst = db
            .create_table(
                &name,
                ranksql::Schema::new(
                    src.schema()
                        .fields()
                        .iter()
                        .map(|f| ranksql::Field::new(f.name.clone(), f.data_type))
                        .collect(),
                ),
            )
            .unwrap();
        for t in src.scan() {
            dst.insert(t.values().to_vec()).unwrap();
        }
    }
    let expected: Vec<f64> = oracle
        .iter()
        .map(|t| query.ranking.upper_bound(&t.state).value())
        .collect();
    let mut evals = Vec::new();
    for mode in [PlanMode::Traditional, PlanMode::RankAware] {
        let result = db.execute_with_mode(query, mode).unwrap();
        assert_eq!(result.scores(), expected, "mode {mode:?}");
        evals.push(result.total_predicate_evaluations());
    }
    assert!(
        evals[1] <= evals[0],
        "rank-aware plan should not evaluate more predicates ({} vs {})",
        evals[1],
        evals[0]
    );
}

/// Figure 11: the four hand-built execution plans for query Q over the
/// synthetic workload all compute the same top-k as the oracle.
#[test]
fn figure11_plans_compute_identical_answers() {
    let workload = SyntheticWorkload::generate(SyntheticConfig {
        table_size: 200,
        join_selectivity: 0.02,
        predicate_cost: 1,
        k: 10,
        ..SyntheticConfig::default()
    })
    .unwrap();
    let query = &workload.query;
    let catalog = &workload.catalog;
    let a = catalog.table("A").unwrap();
    let b = catalog.table("B").unwrap();
    let c = catalog.table("C").unwrap();

    let jc1 = BoolExpr::col_eq_col("A.jc1", "B.jc1");
    let jc2 = BoolExpr::col_eq_col("B.jc2", "C.jc2");
    let fa = BoolExpr::column_is_true("A.b");
    let fb = BoolExpr::column_is_true("B.b");

    // Plan 1: materialise-then-sort with sort-merge joins.
    let plan1 = LogicalPlan::scan(&a)
        .select(fa.clone())
        .join(
            LogicalPlan::scan(&b).select(fb.clone()),
            Some(jc1.clone()),
            JoinAlgorithm::SortMerge,
        )
        .join(
            LogicalPlan::scan(&c),
            Some(jc2.clone()),
            JoinAlgorithm::SortMerge,
        )
        .sort(BitSet64::all(5))
        .limit(query.k);

    // Plan 2: rank-scans + µ + HRJN everywhere.
    let plan2 = LogicalPlan::rank_scan(&a, 0)
        .select(fa.clone())
        .rank(1)
        .join(
            LogicalPlan::rank_scan(&b, 2).select(fb.clone()).rank(3),
            Some(jc1.clone()),
            JoinAlgorithm::HashRankJoin,
        )
        .join(
            LogicalPlan::rank_scan(&c, 4),
            Some(jc2.clone()),
            JoinAlgorithm::HashRankJoin,
        )
        .limit(query.k);

    // Plan 3: like plan 2 but sequential scans + µ for table B.
    let plan3 = LogicalPlan::rank_scan(&a, 0)
        .select(fa.clone())
        .rank(1)
        .join(
            LogicalPlan::scan(&b).select(fb.clone()).rank(2).rank(3),
            Some(jc1.clone()),
            JoinAlgorithm::HashRankJoin,
        )
        .join(
            LogicalPlan::rank_scan(&c, 4),
            Some(jc2.clone()),
            JoinAlgorithm::HashRankJoin,
        )
        .limit(query.k);

    // Plan 4: µ operators above a traditional sort-merge join, then HRJN.
    let plan4 = LogicalPlan::scan(&a)
        .select(fa)
        .join(
            LogicalPlan::scan(&b).select(fb),
            Some(jc1),
            JoinAlgorithm::SortMerge,
        )
        .rank(0)
        .rank(1)
        .rank(2)
        .rank(3)
        .join(
            LogicalPlan::rank_scan(&c, 4),
            Some(jc2),
            JoinAlgorithm::HashRankJoin,
        )
        .limit(query.k);

    let expected = scores(query, &oracle_top_k(query, catalog).unwrap());
    for (i, plan) in [plan1, plan2, plan3, plan4].iter().enumerate() {
        let result = execute_query_plan(query, plan, catalog).unwrap();
        assert_eq!(
            scores(query, &result.tuples),
            expected,
            "plan {} disagreed with the oracle",
            i + 1
        );
    }
}
