//! Cross-thread determinism of morsel-driven parallel execution.
//!
//! The parallel engine promises that execution is a pure *scheduling*
//! choice: for every plan mode, the parallelized plan must produce exactly
//! the ordered top-k result of serial batch execution and of tuple-at-a-time
//! execution — same tuples, same order, same scores — for any worker-thread
//! count, any batch size and any morsel size.  In the spirit of black-box
//! equivalence checkers (the snapshot-isolation checker and HISTEX lineage
//! in PAPERS.md), these properties drive randomized workloads through all
//! five `PlanMode`s and compare the executions pairwise.
//!
//! A companion regression test pins the metrics-aggregation contract: the
//! per-operator `rows_out` / `batches_out` / `mean_batch_fill` series of
//! `explain_analyze` must be *identical* (not merely summable) across any
//! thread count, because morsel partitioning — never the worker count —
//! determines what each operator processes.

use proptest::prelude::*;

use ranksql::executor::{execute_physical_plan, ExecutionContext};
use ranksql::expr::RankPredicate;
use ranksql::{
    BoolExpr, DataType, Database, Field, PlanMode, QueryBuilder, RankQuery, Schema, Value,
};

const ALL_MODES: [PlanMode; 5] = [
    PlanMode::Canonical,
    PlanMode::Traditional,
    PlanMode::RankAware,
    PlanMode::RankAwareExhaustive,
    PlanMode::RankAwareRuleBased,
];

const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// A randomly generated two-table join workload plus execution knobs.
#[derive(Debug, Clone)]
struct Workload {
    /// Rows of table R: (join column, p1 score, boolean flag).
    r_rows: Vec<(i64, f64, bool)>,
    /// Rows of table S: (join column, p2 score).
    s_rows: Vec<(i64, f64)>,
    /// Requested result size.
    k: usize,
    /// Batch size for the parallel executions.
    batch_size: usize,
    /// Morsel size for the parallel executions.
    morsel_size: usize,
}

fn workload() -> impl Strategy<Value = Workload> {
    (
        proptest::collection::vec((0..6i64, 0.0..1.0f64, any::<bool>()), 1..30),
        proptest::collection::vec((0..6i64, 0.0..1.0f64), 1..30),
        1..10usize,
        1..512usize,
        1..64usize,
    )
        .prop_map(|(r_rows, s_rows, k, batch_size, morsel_size)| Workload {
            r_rows,
            s_rows,
            k,
            batch_size,
            morsel_size,
        })
}

fn build_database(w: &Workload) -> (Database, RankQuery) {
    let db = Database::new();
    db.create_table(
        "R",
        Schema::new(vec![
            Field::new("jc", DataType::Int64),
            Field::new("p1", DataType::Float64),
            Field::new("flag", DataType::Bool),
        ]),
    )
    .unwrap();
    db.create_table(
        "S",
        Schema::new(vec![
            Field::new("jc", DataType::Int64),
            Field::new("p2", DataType::Float64),
        ]),
    )
    .unwrap();
    for &(jc, p1, flag) in &w.r_rows {
        db.insert(
            "R",
            vec![Value::from(jc), Value::from(p1), Value::from(flag)],
        )
        .unwrap();
    }
    for &(jc, p2) in &w.s_rows {
        db.insert("S", vec![Value::from(jc), Value::from(p2)])
            .unwrap();
    }
    let query = QueryBuilder::new()
        .tables(["R", "S"])
        .filter(BoolExpr::col_eq_col("R.jc", "S.jc"))
        .rank_predicate(RankPredicate::attribute("p1", "R.p1"))
        .rank_predicate(RankPredicate::attribute("p2", "S.p2"))
        .limit(w.k)
        .build()
        .unwrap();
    (db, query)
}

/// `(tuple id, score)` fingerprint of an ordered result.
fn fingerprint(
    query: &RankQuery,
    tuples: &[ranksql::expr::RankedTuple],
) -> Vec<(ranksql::Tuple, f64)> {
    tuples
        .iter()
        .map(|t| (t.tuple.clone(), query.ranking.upper_bound(&t.state).value()))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 8, .. ProptestConfig::default() })]

    /// Parallel execution ≡ serial batch execution ≡ tuple-mode execution,
    /// for all five plan modes, sweeping thread counts {1, 2, 4, 8} under
    /// random batch and morsel sizes.
    #[test]
    fn parallel_equals_serial_and_tuple_mode_for_all_plan_modes(w in workload()) {
        let (db, query) = build_database(&w);
        for mode in ALL_MODES {
            // Serial reference plan (no exchanges) executed two ways.
            let serial_plan = db
                .session()
                .with_mode(mode)
                .with_threads(1)
                .plan(&query)
                .unwrap()
                .physical;
            prop_assert!(!serial_plan.contains_exchange());

            let batch_exec = ExecutionContext::new(query.ranking.clone());
            let serial = execute_physical_plan(&serial_plan, db.catalog(), &batch_exec).unwrap();
            let reference = fingerprint(&query, &serial.tuples);

            let tuple_exec = ExecutionContext::new(query.ranking.clone()).with_batch_size(1);
            let tuple = execute_physical_plan(&serial_plan, db.catalog(), &tuple_exec).unwrap();
            prop_assert_eq!(
                &fingerprint(&query, &tuple.tuples),
                &reference,
                "mode {:?}: tuple mode diverged from serial batch mode",
                mode
            );

            // Parallelized plan executed across the thread sweep.
            let parallel_plan = db
                .session()
                .with_mode(mode)
                .with_threads(4)
                .plan(&query)
                .unwrap()
                .physical;
            for threads in THREAD_COUNTS {
                let exec = ExecutionContext::new(query.ranking.clone())
                    .with_threads(threads)
                    .with_batch_size(w.batch_size)
                    .with_morsel_size(w.morsel_size);
                let parallel =
                    execute_physical_plan(&parallel_plan, db.catalog(), &exec).unwrap();
                prop_assert_eq!(
                    &fingerprint(&query, &parallel.tuples),
                    &reference,
                    "mode {:?}, threads {}, batch {}, morsel {}: parallel diverged",
                    mode,
                    threads,
                    w.batch_size,
                    w.morsel_size
                );
            }
        }
    }
}

/// Regression: the per-operator actuals of `explain_analyze` (`rows_out`,
/// `batches_out`, `mean_batch_fill`) are identical across any thread count —
/// aggregation across workers must neither lose nor duplicate updates, and
/// batch counts are a function of the (fixed) morsel and batch sizes only.
#[test]
fn per_operator_actuals_are_identical_across_thread_counts() {
    let w = Workload {
        r_rows: (0..120)
            .map(|i| (i % 7, ((i * 37 % 100) as f64) / 100.0, i % 3 != 0))
            .collect(),
        s_rows: (0..90)
            .map(|i| (i % 7, ((i * 61 % 100) as f64) / 100.0))
            .collect(),
        k: 6,
        batch_size: 16,
        morsel_size: 8,
    };
    let (db, query) = build_database(&w);
    let plan = db
        .session()
        .with_mode(PlanMode::Canonical)
        .with_threads(4)
        .plan(&query)
        .unwrap()
        .physical;
    assert!(plan.contains_exchange(), "{}", plan.explain(None));

    let run = |threads: usize| {
        let exec = ExecutionContext::new(query.ranking.clone())
            .with_threads(threads)
            .with_batch_size(w.batch_size)
            .with_morsel_size(w.morsel_size);
        let result = execute_physical_plan(&plan, db.catalog(), &exec).unwrap();
        result.operator_actuals()
    };

    let reference = run(1);
    assert_eq!(reference.len(), plan.node_count());
    assert!(reference.iter().any(|a| a.batches > 0));
    for threads in [2, 4, 8] {
        let actuals = run(threads);
        assert_eq!(actuals.len(), reference.len(), "threads={threads}");
        for (a, r) in actuals.iter().zip(reference.iter()) {
            assert_eq!(a.label, r.label, "threads={threads}");
            assert_eq!(a.rows, r.rows, "threads={threads}, op {}", a.label);
            assert_eq!(a.batches, r.batches, "threads={threads}, op {}", a.label);
            assert!(
                (a.mean_batch_fill - r.mean_batch_fill).abs() < 1e-12,
                "threads={threads}, op {}: {} vs {}",
                a.label,
                a.mean_batch_fill,
                r.mean_batch_fill
            );
        }
    }
}

/// The parallelized `explain_analyze` output names the exchange machinery
/// and stays truthful (per-node actual rows present).
#[test]
fn explain_analyze_reports_exchange_nodes() {
    let w = Workload {
        r_rows: (0..50).map(|i| (i % 5, (i as f64) / 50.0, true)).collect(),
        s_rows: (0..50).map(|i| (i % 5, (i as f64) / 50.0)).collect(),
        k: 5,
        batch_size: 32,
        morsel_size: 16,
    };
    let (db, query) = build_database(&w);
    let result = db
        .session()
        .with_mode(PlanMode::Canonical)
        .with_threads(4)
        .execute(&query)
        .unwrap();
    let analyzed = result.explain_analyze(Some(&query.ranking));
    assert!(analyzed.contains("Exchange"), "{analyzed}");
    assert!(analyzed.contains("Repartition(morsels)"), "{analyzed}");
    assert!(analyzed.contains("actual_rows="), "{analyzed}");
}
