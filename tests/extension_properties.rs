//! Property-based tests for the extensions that go beyond the paper: the
//! MPro multi-predicate rank operator and the histogram-convolution
//! cardinality estimator.
//!
//! * MPro must be *algebraically invisible*: over any relation, any predicate
//!   subset and any `k`, it returns exactly what the equivalent µ chain
//!   returns, in the same order, and never evaluates a predicate more than
//!   once per tuple (its probe count is bounded by the naive
//!   every-predicate-on-every-tuple scheme; against the µ chain it is usually
//!   — but not provably always — lower, because both compare the queue head
//!   against slightly different input bounds).
//! * The histogram estimator must stay within its mathematical contract on
//!   arbitrary data: probabilities in `[0, 1]`, mass conservation under
//!   convolution, monotone tail probabilities, and cardinality estimates that
//!   are finite, non-negative and bounded by the membership cardinality.

use std::sync::Arc;

use proptest::prelude::*;

use ranksql::common::{DataType, Field, Schema, Value};
use ranksql::executor::mpro::MProOp;
use ranksql::executor::operator::{check_rank_order, take};
use ranksql::executor::rank::RankOp;
use ranksql::executor::scan::{RankScan, SeqScan};
use ranksql::executor::{ExecutionContext, PhysicalOperator};
use ranksql::expr::{RankPredicate, RankingContext, ScoringFunction};
use ranksql::optimizer::{HistogramEstimator, SamplingEstimator, ScoreHistogram};
use ranksql::storage::{Catalog, ScoreIndex, Table, TableBuilder};
use ranksql::{BoolExpr, LogicalPlan, QueryBuilder, RankQuery};

// ---------------------------------------------------------------------------
// Generators
// ---------------------------------------------------------------------------

/// A random single-table relation with three predicate-score columns.
#[derive(Debug, Clone)]
struct ScoredTable {
    rows: Vec<(f64, f64, f64)>,
    k: usize,
    /// Whether the pipeline is fed by a rank-scan (ordered) or a sequential
    /// scan (unordered) — MPro must be correct either way.
    use_rank_scan: bool,
}

fn scored_table() -> impl Strategy<Value = ScoredTable> {
    (
        proptest::collection::vec((0u32..=100, 0u32..=100, 0u32..=100), 1..60),
        1usize..12,
        any::<bool>(),
    )
        .prop_map(|(raw, k, use_rank_scan)| ScoredTable {
            rows: raw
                .into_iter()
                .map(|(a, b, c)| (a as f64 / 100.0, b as f64 / 100.0, c as f64 / 100.0))
                .collect(),
            k,
            use_rank_scan,
        })
}

fn build_table(rows: &[(f64, f64, f64)]) -> Arc<Table> {
    let schema = Schema::new(vec![
        Field::new("id", DataType::Int64),
        Field::new("p0", DataType::Float64),
        Field::new("p1", DataType::Float64),
        Field::new("p2", DataType::Float64),
    ])
    .qualify_all("T");
    let mut builder = TableBuilder::new("T", schema);
    for (i, (a, b, c)) in rows.iter().enumerate() {
        builder = builder.row(vec![
            Value::from(i as i64),
            Value::from(*a),
            Value::from(*b),
            Value::from(*c),
        ]);
    }
    Arc::new(builder.build(0).expect("table"))
}

fn ctx3() -> Arc<RankingContext> {
    RankingContext::new(
        vec![
            RankPredicate::attribute("p0", "T.p0"),
            RankPredicate::attribute("p1", "T.p1"),
            RankPredicate::attribute("p2", "T.p2"),
        ],
        ScoringFunction::Sum,
    )
}

fn source(
    table: &Arc<Table>,
    use_rank_scan: bool,
    exec: &ExecutionContext,
) -> Box<dyn PhysicalOperator> {
    if use_rank_scan {
        let idx = Arc::new(
            ScoreIndex::build(exec.ranking().predicate(0), table.schema(), &table.scan())
                .expect("index"),
        );
        Box::new(RankScan::new(Arc::clone(table), idx, 0, exec, "scan").expect("rank-scan"))
    } else {
        Box::new(SeqScan::new(table, exec, "scan"))
    }
}

// ---------------------------------------------------------------------------
// MPro ≡ µ chain
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig { cases: 32, .. ProptestConfig::default() })]

    #[test]
    fn mpro_is_equivalent_to_the_mu_chain(t in scored_table()) {
        let table = build_table(&t.rows);

        // µ chain: µ_p2(µ_p1(source)); when the source is a rank-scan, p0 is
        // already evaluated by it, otherwise every predicate is evaluated by
        // the chain (prepend µ_p0).
        let ctx_chain = ctx3();
        let exec = ExecutionContext::new(Arc::clone(&ctx_chain));
        let mut chain: Box<dyn PhysicalOperator> = source(&table, t.use_rank_scan, &exec);
        if !t.use_rank_scan {
            chain = Box::new(RankOp::new(chain, 0, &exec, "mu0"));
        }
        chain = Box::new(RankOp::new(chain, 1, &exec, "mu1"));
        let mut chain = Box::new(RankOp::new(chain, 2, &exec, "mu2"));
        let chain_top = take(chain.as_mut(), t.k).expect("chain");
        let chain_probes = ctx_chain.counters().total();

        // MPro over the same predicates.
        let ctx_mpro = ctx3();
        let exec2 = ExecutionContext::new(Arc::clone(&ctx_mpro));
        let src = source(&table, t.use_rank_scan, &exec2);
        let schedule = if t.use_rank_scan { vec![1, 2] } else { vec![0, 1, 2] };
        let mut mpro = MProOp::new(src, schedule, &exec2, "mpro");
        let mpro_top = take(&mut mpro, t.k).expect("mpro");
        let mpro_probes = ctx_mpro.counters().total();

        // Same membership, same order.
        prop_assert_eq!(chain_top.len(), mpro_top.len());
        for (a, b) in chain_top.iter().zip(mpro_top.iter()) {
            prop_assert_eq!(a.tuple.id(), b.tuple.id());
        }
        // Both streams respect the rank-relational ordering contract.
        prop_assert_eq!(check_rank_order(&chain_top, &ctx_chain), None);
        prop_assert_eq!(check_rank_order(&mpro_top, &ctx_mpro), None);
        // Each strategy evaluates every predicate at most once per tuple, so
        // neither can exceed the naive bound of the materialise-then-sort
        // scheme (every predicate on every tuple).
        let naive_bound = (t.rows.len() * 3) as u64;
        prop_assert!(chain_probes <= naive_bound);
        prop_assert!(mpro_probes <= naive_bound);
        // Every emitted tuple carries a complete score state.
        for t in &mpro_top {
            prop_assert!(t.state.is_complete());
        }
    }
}

// ---------------------------------------------------------------------------
// ScoreHistogram arithmetic
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, .. ProptestConfig::default() })]

    #[test]
    fn histogram_convolution_conserves_mass_and_support(
        xs in proptest::collection::vec(0.0f64..=1.0, 0..40),
        ys in proptest::collection::vec(0.0f64..=1.0, 0..40),
        buckets in 1usize..100,
    ) {
        let hx = ScoreHistogram::from_scores(&xs, buckets);
        let hy = ScoreHistogram::from_scores(&ys, buckets);
        prop_assert!((hx.total_mass() - 1.0).abs() < 1e-6);
        let c = hx.convolve(&hy, buckets);
        prop_assert!((c.total_mass() - 1.0).abs() < 1e-6);
        prop_assert!(c.lo() >= -1e-9);
        prop_assert!(c.hi() <= 2.0 + 1e-9);
        // The convolution mean is the sum of the means (independence), up to
        // the discretisation error of the bucket midpoints (≈ one and a half
        // bucket widths of the operands plus one of the result).
        let tolerance = 3.0 / buckets as f64 + 1e-9;
        prop_assert!(
            (c.mean() - (hx.mean() + hy.mean())).abs() <= tolerance,
            "mean {} vs {} + {} (tolerance {tolerance})",
            c.mean(),
            hx.mean(),
            hy.mean()
        );
    }

    #[test]
    fn histogram_tail_probability_is_monotone(
        xs in proptest::collection::vec(0.0f64..=1.0, 1..60),
        thresholds in proptest::collection::vec(-0.5f64..=1.5, 2..10),
    ) {
        let h = ScoreHistogram::from_scores(&xs, 32);
        let mut sorted = thresholds.clone();
        sorted.sort_by(f64::total_cmp);
        let probs: Vec<f64> = sorted.iter().map(|&x| h.prob_at_least(x)).collect();
        for w in probs.windows(2) {
            prop_assert!(w[0] >= w[1] - 1e-9, "tail probability must not increase: {probs:?}");
        }
        for p in probs {
            prop_assert!((0.0..=1.0).contains(&p));
        }
    }
}

// ---------------------------------------------------------------------------
// HistogramEstimator vs SamplingEstimator on random relations
// ---------------------------------------------------------------------------

/// A small random join workload shared by both estimators.
#[derive(Debug, Clone)]
struct EstimatorWorkload {
    left: Vec<(i64, f64)>,
    right: Vec<(i64, f64)>,
    k: usize,
}

fn estimator_workload() -> impl Strategy<Value = EstimatorWorkload> {
    (
        proptest::collection::vec((0i64..8, 0u32..=100), 4..80),
        proptest::collection::vec((0i64..8, 0u32..=100), 4..80),
        1usize..10,
    )
        .prop_map(|(l, r, k)| EstimatorWorkload {
            left: l.into_iter().map(|(j, p)| (j, p as f64 / 100.0)).collect(),
            right: r.into_iter().map(|(j, p)| (j, p as f64 / 100.0)).collect(),
            k,
        })
}

fn build_estimator_db(w: &EstimatorWorkload) -> (Catalog, RankQuery) {
    let cat = Catalog::new();
    let l = cat
        .create_table(
            "L",
            Schema::new(vec![
                Field::new("jc", DataType::Int64),
                Field::new("p", DataType::Float64),
            ]),
        )
        .expect("L");
    let r = cat
        .create_table(
            "R",
            Schema::new(vec![
                Field::new("jc", DataType::Int64),
                Field::new("q", DataType::Float64),
            ]),
        )
        .expect("R");
    for (j, p) in &w.left {
        l.insert(vec![Value::from(*j), Value::from(*p)])
            .expect("insert L");
    }
    for (j, q) in &w.right {
        r.insert(vec![Value::from(*j), Value::from(*q)])
            .expect("insert R");
    }
    let query = QueryBuilder::new()
        .tables(["L", "R"])
        .filter(BoolExpr::col_eq_col("L.jc", "R.jc"))
        .rank_predicate(RankPredicate::attribute("lp", "L.p"))
        .rank_predicate(RankPredicate::attribute("rq", "R.q"))
        .limit(w.k)
        .build()
        .expect("query");
    (cat, query)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, .. ProptestConfig::default() })]

    #[test]
    fn both_estimators_produce_sane_cardinalities(w in estimator_workload()) {
        let (cat, query) = build_estimator_db(&w);
        let hist = HistogramEstimator::build(&query, &cat, 0.5, 7).expect("histogram estimator");
        let samp = SamplingEstimator::build(&query, &cat, 0.5, 7).expect("sampling estimator");

        let l = cat.table("L").expect("L");
        let r = cat.table("R").expect("R");
        let plans = vec![
            LogicalPlan::scan(&l),
            LogicalPlan::rank_scan(&l, 0),
            LogicalPlan::rank_scan(&l, 0)
                .join(
                    LogicalPlan::rank_scan(&r, 1),
                    Some(BoolExpr::col_eq_col("L.jc", "R.jc")),
                    ranksql::JoinAlgorithm::HashRankJoin,
                )
                .rank(1),
            LogicalPlan::rank_scan(&l, 0).join(
                LogicalPlan::rank_scan(&r, 1),
                Some(BoolExpr::col_eq_col("L.jc", "R.jc")),
                ranksql::JoinAlgorithm::HashRankJoin,
            ),
            LogicalPlan::scan(&l)
                .join(
                    LogicalPlan::scan(&r),
                    Some(BoolExpr::col_eq_col("L.jc", "R.jc")),
                    ranksql::JoinAlgorithm::Hash,
                )
                .limit(w.k),
        ];
        for plan in &plans {
            let h = hist.estimate_cardinality(plan).expect("histogram estimate");
            let s = samp.estimate_cardinality(plan).expect("sampling estimate");
            prop_assert!(h.is_finite() && h >= 0.0, "histogram estimate {h} for {plan:?}");
            prop_assert!(s.is_finite() && s >= 0.0, "sampling estimate {s} for {plan:?}");
            // The histogram estimate never exceeds the classical membership
            // bound of the plan.
            prop_assert!(
                h <= hist.membership_cardinality(plan) + 1e-6,
                "histogram estimate {h} exceeds membership bound {}",
                hist.membership_cardinality(plan)
            );
        }
        // The rank fraction is a probability and shrinks (weakly) as more
        // predicates are evaluated.
        let f_none = hist.rank_fraction(ranksql::common::BitSet64::EMPTY);
        let f_one = hist.rank_fraction(ranksql::common::BitSet64::singleton(0));
        let f_all = hist.rank_fraction(ranksql::common::BitSet64::all(2));
        for f in [f_none, f_one, f_all] {
            prop_assert!((0.0..=1.0).contains(&f));
        }
        prop_assert!(f_one <= f_none + 1e-9);
        prop_assert!(f_all <= f_one + 1e-9);
    }
}
