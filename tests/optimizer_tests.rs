//! Integration tests for the rank-aware optimizer: Example 5 / Figure 9's
//! enumeration setting, correctness of every optimizer mode against the
//! oracle, the behaviour of the Figure 10 heuristics, and the
//! sampling-based cardinality estimator of Figure 13.

use std::sync::Arc;

use ranksql::executor::{execute_query_plan, oracle_top_k};
use ranksql::optimizer::{CostModel, DpOptimizer, SamplingEstimator};
use ranksql::workload::{SyntheticConfig, SyntheticWorkload};
use ranksql::{
    BoolExpr, JoinAlgorithm, LogicalPlan, OptimizerConfig, OptimizerMode, QueryBuilder,
    RankPredicate, RankQuery,
};
use ranksql_common::BitSet64;
use ranksql_optimizer::RankOptimizer;
use ranksql_storage::Catalog;

fn scores(query: &RankQuery, tuples: &[ranksql::expr::RankedTuple]) -> Vec<f64> {
    tuples
        .iter()
        .map(|t| query.ranking.upper_bound(&t.state).value())
        .collect()
}

fn small_workload() -> SyntheticWorkload {
    SyntheticWorkload::generate(SyntheticConfig {
        table_size: 150,
        join_selectivity: 0.02,
        predicate_cost: 2,
        k: 10,
        ..SyntheticConfig::default()
    })
    .unwrap()
}

/// Every optimizer mode returns the oracle's answers for the paper's query Q.
#[test]
fn optimizer_modes_are_correct_on_the_synthetic_workload() {
    let w = small_workload();
    let expected = scores(&w.query, &oracle_top_k(&w.query, &w.catalog).unwrap());
    for mode in [
        OptimizerMode::Traditional,
        OptimizerMode::RankAwareHeuristic,
        OptimizerMode::RankAwareExhaustive,
    ] {
        let optimizer = RankOptimizer::new(OptimizerConfig {
            mode,
            sample_ratio: 0.05,
            ..OptimizerConfig::default()
        });
        let optimized = optimizer.optimize(&w.query, &w.catalog).unwrap();
        let result = execute_query_plan(&w.query, &optimized.plan, &w.catalog).unwrap();
        assert_eq!(scores(&w.query, &result.tuples), expected, "mode {mode:?}");
    }
}

/// Figure 9 / Example 5: enumerating `R ⋈ S` with predicates p1, p3, p4
/// covers the expected signature lattice and the final plan is complete.
#[test]
fn figure9_signature_lattice() {
    let catalog = Catalog::new();
    let r = catalog
        .create_table(
            "R",
            ranksql::Schema::new(vec![
                ranksql::Field::new("a", ranksql::DataType::Int64),
                ranksql::Field::new("p1", ranksql::DataType::Float64),
            ]),
        )
        .unwrap();
    let s = catalog
        .create_table(
            "S",
            ranksql::Schema::new(vec![
                ranksql::Field::new("a", ranksql::DataType::Int64),
                ranksql::Field::new("p3", ranksql::DataType::Float64),
                ranksql::Field::new("p4", ranksql::DataType::Float64),
            ]),
        )
        .unwrap();
    for i in 0..150i64 {
        r.insert(vec![
            ranksql::Value::from(i % 12),
            ranksql::Value::from(((i * 7) % 100) as f64 / 100.0),
        ])
        .unwrap();
        s.insert(vec![
            ranksql::Value::from(i % 12),
            ranksql::Value::from(((i * 11) % 100) as f64 / 100.0),
            ranksql::Value::from(((i * 13) % 100) as f64 / 100.0),
        ])
        .unwrap();
    }
    let query = QueryBuilder::new()
        .tables(["R", "S"])
        .filter(BoolExpr::col_eq_col("R.a", "S.a"))
        .rank_predicate(RankPredicate::attribute("p1", "R.p1"))
        .rank_predicate(RankPredicate::attribute("p3", "S.p3"))
        .rank_predicate(RankPredicate::attribute("p4", "S.p4"))
        .limit(5)
        .build()
        .unwrap();

    let estimator = Arc::new(SamplingEstimator::build(&query, &catalog, 0.2, 9).unwrap());
    let dp = DpOptimizer::new(&query, &catalog, estimator, CostModel::default(), false);
    let optimized = dp.optimize().unwrap();
    // As in Example 5 the final signature is ({R,S}, {p1,p3,p4}).
    assert_eq!(
        optimized.plan.relations(),
        vec!["R".to_string(), "S".to_string()]
    );
    assert_eq!(optimized.plan.evaluated_predicates(), BitSet64::all(3));
    // Signatures: 2 for R × {∅,{p1}}, 4 for S × subsets of {p3,p4},
    // 8 for RS × subsets of {p1,p3,p4}  → 14 total.
    assert_eq!(optimized.stats.signatures_kept, 14);
    // Correctness.
    let expected = scores(&query, &oracle_top_k(&query, &catalog).unwrap());
    let result = execute_query_plan(&query, &optimized.plan, &catalog).unwrap();
    assert_eq!(scores(&query, &result.tuples), expected);
}

/// The Figure 10 heuristics shrink the search space but keep correct answers.
#[test]
fn heuristics_reduce_search_space() {
    let w = small_workload();
    let estimator = Arc::new(SamplingEstimator::build(&w.query, &w.catalog, 0.05, 3).unwrap());
    let exhaustive = DpOptimizer::new(
        &w.query,
        &w.catalog,
        Arc::clone(&estimator),
        CostModel::default(),
        false,
    )
    .optimize()
    .unwrap();
    let heuristic = DpOptimizer::new(&w.query, &w.catalog, estimator, CostModel::default(), true)
        .optimize()
        .unwrap();
    assert!(heuristic.stats.plans_considered < exhaustive.stats.plans_considered);
    let expected = scores(&w.query, &oracle_top_k(&w.query, &w.catalog).unwrap());
    for plan in [&exhaustive.plan, &heuristic.plan] {
        let result = execute_query_plan(&w.query, plan, &w.catalog).unwrap();
        assert_eq!(scores(&w.query, &result.tuples), expected);
    }
}

/// Figure 13's premise: the sampling-based estimates of per-operator output
/// cardinalities are within an order of magnitude of the real ones for a
/// pipelined ranking plan.
#[test]
fn sampling_estimates_track_real_cardinalities() {
    let w = SyntheticWorkload::generate(SyntheticConfig {
        table_size: 2_000,
        join_selectivity: 0.01,
        predicate_cost: 1,
        k: 10,
        ..SyntheticConfig::default()
    })
    .unwrap();
    let catalog = &w.catalog;
    let query = &w.query;
    let a = catalog.table("A").unwrap();
    let b = catalog.table("B").unwrap();
    let c = catalog.table("C").unwrap();
    // A plan3-like pipeline: seq scans + µ, rank-aware joins.
    let plan = LogicalPlan::rank_scan(&a, 0)
        .select(BoolExpr::column_is_true("A.b"))
        .rank(1)
        .join(
            LogicalPlan::scan(&b)
                .select(BoolExpr::column_is_true("B.b"))
                .rank(2)
                .rank(3),
            Some(BoolExpr::col_eq_col("A.jc1", "B.jc1")),
            JoinAlgorithm::HashRankJoin,
        )
        .join(
            LogicalPlan::rank_scan(&c, 4),
            Some(BoolExpr::col_eq_col("B.jc2", "C.jc2")),
            JoinAlgorithm::HashRankJoin,
        )
        .limit(query.k);

    let estimator = SamplingEstimator::build(query, catalog, 0.05, 17).unwrap();
    let estimated = estimator.estimate_per_operator(&plan).unwrap();
    let real = execute_query_plan(query, &plan, catalog).unwrap();
    let real_cards = real.metrics.output_cardinalities();
    assert_eq!(estimated.len(), real_cards.len());

    // Operators that actually produce tuples should be estimated within
    // roughly an order of magnitude (the paper claims "the same magnitude"
    // for the majority of operators); allow the small tail to be off.
    let mut compared = 0;
    let mut within = 0;
    for ((_, est), (_, real)) in estimated.iter().zip(real_cards.iter()) {
        if *real >= 5 {
            compared += 1;
            let ratio = est.max(0.1) / *real as f64;
            if (0.1..=10.0).contains(&ratio) {
                within += 1;
            }
        }
    }
    assert!(compared > 0);
    assert!(
        within * 2 >= compared,
        "only {within}/{compared} operator estimates were within 10x of the real cardinality"
    );
}
