//! MVCC snapshot isolation: open cursors read the table state at open.
//!
//! PR 7 replaced cache invalidation with versioned table epochs: a cursor
//! pins the sealed columnar blocks plus a frozen delta prefix when it
//! opens, writers append without touching sealed state, and inserts extend
//! (never rebuild) the columnar blocks, indexes and statistics.  This
//! harness pins the user-visible contract:
//!
//! * a cursor opened *before* an insert burst streams byte-identical
//!   results to the pre-insert eager run — across all five plan modes,
//!   both storage backends and thread counts {1, 4}, with the bursts
//!   interleaved between the cursor's chunked pulls;
//! * `fetch_more(k)` *after* the burst still honours the pinned epoch
//!   (the extension equals the canonical top-(k+extra) over the pre-burst
//!   rows, never leaking the new ones);
//! * a session that opens *after* the burst sees every new row;
//! * the same holds with a real concurrent writer thread racing the
//!   cursor across a 1024-row seal boundary.

use proptest::prelude::*;

use ranksql::expr::{RankPredicate, RankedTuple};
use ranksql::{
    BoolExpr, CompareOp, DataType, Database, Field, Params, PlanMode, QueryBuilder, RankQuery,
    ScalarExpr, Schema, StorageBackend, Value,
};

const ALL_MODES: [PlanMode; 5] = [
    PlanMode::Canonical,
    PlanMode::Traditional,
    PlanMode::RankAware,
    PlanMode::RankAwareExhaustive,
    PlanMode::RankAwareRuleBased,
];

const BACKENDS: [StorageBackend; 2] = [StorageBackend::Row, StorageBackend::Columnar];

const THREAD_COUNTS: [usize; 2] = [1, 4];

/// A single-table workload plus the insert bursts fired against it while a
/// cursor is open.  Rows are `(jc, p)`; the `id` column is the insertion
/// index, so every generated row is unique and mismatches are attributable.
#[derive(Debug, Clone)]
struct Workload {
    base_rows: Vec<(i64, f64)>,
    bursts: Vec<Vec<(i64, f64)>>,
    k: usize,
    chunks: Vec<usize>,
    extra: usize,
}

fn workload() -> impl Strategy<Value = Workload> {
    (
        proptest::collection::vec((0..6i64, 0.0..1.0f64), 1..40),
        proptest::collection::vec(
            proptest::collection::vec((0..6i64, 0.0..1.0f64), 1..20),
            1..4,
        ),
        1..8usize,
        proptest::collection::vec(1..5usize, 1..4),
        1..4usize,
    )
        .prop_map(|(base_rows, bursts, k, chunks, extra)| Workload {
            base_rows,
            bursts,
            k,
            chunks,
            extra,
        })
}

/// The filter keeps the pushed-filter path (and, on columnar epochs, the
/// frozen-tail filter) in play: only rows with `jc <= 3` qualify.
fn matches(rows: &[(i64, f64)]) -> usize {
    rows.iter().filter(|(jc, _)| *jc <= 3).count()
}

fn build_database(rows: &[(i64, f64)], backend: StorageBackend, k: usize) -> (Database, RankQuery) {
    let db = Database::new().with_storage_backend(backend);
    db.create_table(
        "T",
        Schema::new(vec![
            Field::new("id", DataType::Int64),
            Field::new("jc", DataType::Int64),
            Field::new("p", DataType::Float64),
        ]),
    )
    .unwrap();
    db.insert_batch(
        "T",
        rows.iter()
            .enumerate()
            .map(|(i, &(jc, p))| vec![Value::from(i as i64), Value::from(jc), Value::from(p)]),
    )
    .unwrap();
    let query = QueryBuilder::new()
        .table("T")
        .filter(BoolExpr::compare(
            ScalarExpr::col("T.jc"),
            CompareOp::LtEq,
            ScalarExpr::lit(3i64),
        ))
        .rank_predicate(RankPredicate::attribute("p", "T.p"))
        .limit(k)
        .build()
        .unwrap();
    (db, query)
}

/// `(tuple, score)` fingerprint of an ordered result.
fn fingerprint(query: &RankQuery, tuples: &[RankedTuple]) -> Vec<(ranksql::Tuple, f64)> {
    tuples
        .iter()
        .map(|t| (t.tuple.clone(), query.ranking.upper_bound(&t.state).value()))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 6, .. ProptestConfig::default() })]

    /// Interleaved insert bursts against an open cursor: the cursor streams
    /// the pre-burst answer byte for byte, `fetch_more` past the original
    /// limit extends over the *pinned* epoch, and a fresh session sees all
    /// the new rows — all modes × backends × threads {1, 4}.
    #[test]
    fn open_cursor_streams_the_pre_burst_snapshot(w in workload()) {
        for backend in BACKENDS {
            for mode in ALL_MODES {
                for threads in THREAD_COUNTS {
                    let (db, query) = build_database(&w.base_rows, backend, w.k);
                    let session = db.session().with_mode(mode).with_threads(threads);
                    // Pre-burst eager reference on the same database.
                    let eager = session.execute(&query).unwrap();
                    let reference = fingerprint(&query, &eager.rows);

                    let mut cursor = session
                        .prepare_query(query.clone())
                        .unwrap()
                        .bind(Params::none())
                        .unwrap()
                        .cursor()
                        .unwrap();

                    // Fire the bursts between the cursor's chunked pulls —
                    // including one *before* the first pull, so a lazily
                    // pinned scan would be caught immediately.
                    let mut streamed = Vec::new();
                    let mut next_id = w.base_rows.len() as i64;
                    let mut bursts = w.bursts.iter();
                    let mut pulls = 0usize;
                    loop {
                        if let Some(burst) = bursts.next() {
                            for &(jc, p) in burst {
                                db.insert(
                                    "T",
                                    vec![Value::from(next_id), Value::from(jc), Value::from(p)],
                                )
                                .unwrap();
                                next_id += 1;
                            }
                        }
                        if cursor.is_exhausted() {
                            break;
                        }
                        let chunk = w.chunks[pulls % w.chunks.len()];
                        pulls += 1;
                        streamed.extend(cursor.take(chunk).unwrap());
                    }
                    for burst in bursts {
                        for &(jc, p) in burst {
                            db.insert(
                                "T",
                                vec![Value::from(next_id), Value::from(jc), Value::from(p)],
                            )
                            .unwrap();
                            next_id += 1;
                        }
                    }
                    prop_assert_eq!(
                        &fingerprint(&query, &streamed),
                        &reference,
                        "{:?}/{:?}/threads {}: cursor leaked post-open inserts",
                        mode,
                        backend,
                        threads
                    );

                    // `fetch_more` after the burst: plans that can extend
                    // must produce the canonical top-(k+extra) of the
                    // *pre-burst* rows; plans that cannot must refuse
                    // cleanly and leave the streamed rows valid.
                    match cursor.fetch_more(w.extra) {
                        Ok(more) => {
                            streamed.extend(more);
                            let (base_db, _) = build_database(&w.base_rows, backend, w.k);
                            let mut q_ref = query.clone();
                            q_ref.k = w.k + w.extra;
                            let pre_burst = base_db
                                .session()
                                .with_mode(PlanMode::Canonical)
                                .with_threads(1)
                                .execute(&q_ref)
                                .unwrap();
                            prop_assert_eq!(
                                &fingerprint(&query, &streamed),
                                &fingerprint(&q_ref, &pre_burst.rows),
                                "{:?}/{:?}/threads {}: fetch_more escaped the pinned epoch",
                                mode,
                                backend,
                                threads
                            );
                        }
                        Err(e) => {
                            prop_assert!(
                                e.to_string().contains("cannot extend"),
                                "unexpected fetch_more error: {e}"
                            );
                        }
                    }

                    // A session opened after the bursts sees every new row.
                    let total: usize =
                        matches(&w.base_rows) + w.bursts.iter().map(|b| matches(b)).sum::<usize>();
                    let mut q_all = query.clone();
                    q_all.k = w.base_rows.len()
                        + w.bursts.iter().map(Vec::len).sum::<usize>()
                        + 1;
                    let fresh = session.execute(&q_all).unwrap();
                    prop_assert_eq!(
                        fresh.rows.len(),
                        total,
                        "{:?}/{:?}/threads {}: fresh session misses inserted rows",
                        mode,
                        backend,
                        threads
                    );
                }
            }
        }
    }
}

/// A real writer thread racing an open cursor across the 1024-row seal
/// boundary: the pre-opened cursor streams the pre-burst answer while the
/// writer appends 1 000 rows (sealing a new columnar block mid-stream),
/// and afterwards a fresh session sees all 2 150 rows.
#[test]
fn concurrent_writer_burst_does_not_disturb_an_open_cursor() {
    const BASE: i64 = 1150;
    const BURST: i64 = 1000;
    for backend in BACKENDS {
        for threads in THREAD_COUNTS {
            let rows: Vec<(i64, f64)> = (0..BASE)
                .map(|i| (i % 6, ((i * 37) % 1000) as f64 / 1000.0))
                .collect();
            let (db, query) = build_database(&rows, backend, 25);
            let session = db
                .session()
                .with_mode(PlanMode::RankAware)
                .with_threads(threads);
            let eager = session.execute(&query).unwrap();
            let reference = fingerprint(&query, &eager.rows);

            let mut cursor = session
                .prepare_query(query.clone())
                .unwrap()
                .bind(Params::none())
                .unwrap()
                .cursor()
                .unwrap();

            let mut streamed = Vec::new();
            std::thread::scope(|s| {
                let writer = s.spawn(|| {
                    for i in 0..BURST {
                        db.insert(
                            "T",
                            vec![
                                Value::from(BASE + i),
                                Value::from(i % 6),
                                Value::from(((i * 61) % 1000) as f64 / 1000.0),
                            ],
                        )
                        .unwrap();
                    }
                });
                while !cursor.is_exhausted() {
                    streamed.extend(cursor.take(7).unwrap());
                }
                writer.join().unwrap();
            });
            assert_eq!(
                fingerprint(&query, &streamed),
                reference,
                "{backend:?}/threads {threads}: concurrent writer leaked into the cursor"
            );

            // The extension still reads the pinned epoch, not the 2150-row
            // table (or the plan refuses cleanly — either way no leak).
            if let Ok(more) = cursor.fetch_more(5) {
                streamed.extend(more);
                let (base_db, _) = build_database(&rows, backend, 25);
                let mut q_ref = query.clone();
                q_ref.k = 30;
                let pre_burst = base_db
                    .session()
                    .with_mode(PlanMode::Canonical)
                    .with_threads(1)
                    .execute(&q_ref)
                    .unwrap();
                assert_eq!(
                    fingerprint(&query, &streamed),
                    fingerprint(&q_ref, &pre_burst.rows),
                    "{backend:?}/threads {threads}: fetch_more escaped the pinned epoch"
                );
            }

            // A fresh session sees the full post-burst table.
            let mut q_all = query.clone();
            q_all.k = (BASE + BURST) as usize + 1;
            let fresh = session.execute(&q_all).unwrap();
            let expected = (0..BASE).filter(|i| i % 6 <= 3).count()
                + (0..BURST).filter(|i| i % 6 <= 3).count();
            assert_eq!(
                fresh.rows.len(),
                expected,
                "{backend:?}/threads {threads}: fresh session misses writer rows"
            );
        }
    }
}
