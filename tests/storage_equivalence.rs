//! Cross-backend equivalence of the storage layer.
//!
//! The columnar backend (`ColumnTable` + zone maps, PR 5) and the
//! disk-backed paged backend (buffer pool + WAL, PR 8) promise that the
//! physical layout is a pure *access-path* choice: for every plan mode,
//! thread count, batch size and morsel size, planning against
//! `StorageBackend::Columnar` or `StorageBackend::Paged` must produce
//! exactly the ordered top-k result of the row backend — same tuples, same
//! order, same scores.  The proptest below drives randomized workloads
//! through all five `PlanMode`s and compares the three backends pairwise.
//!
//! Companion regression tests pin the zone-map contract: score pruning on a
//! selective top-k reduces `tuples_scanned` (and skips whole blocks) while
//! the result stays byte-identical, pushed-down filters show up in
//! `explain` as `ColumnScan(..)[σ ..]` annotations, and on the paged
//! backend a pruned block is a page never read (`pages_pruned` /
//! `pages_faulted`).

use proptest::prelude::*;

use ranksql::expr::RankPredicate;
use ranksql::{
    BoolExpr, CompareOp, DataType, Database, Field, PagedOptions, PlanMode, QueryBuilder,
    RankQuery, ScalarExpr, Schema, StorageBackend, Value,
};

/// A process-unique scratch directory for paged databases, removed on drop.
struct TempDir(std::path::PathBuf);

impl TempDir {
    fn new(tag: &str) -> TempDir {
        static NEXT: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        let n = NEXT.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let dir = std::env::temp_dir().join(format!("ranksql-eq-{tag}-{}-{n}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        TempDir(dir)
    }

    fn path(&self) -> &std::path::Path {
        &self.0
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

const ALL_MODES: [PlanMode; 5] = [
    PlanMode::Canonical,
    PlanMode::Traditional,
    PlanMode::RankAware,
    PlanMode::RankAwareExhaustive,
    PlanMode::RankAwareRuleBased,
];

/// A randomly generated two-table join workload plus execution knobs.
#[derive(Debug, Clone)]
struct Workload {
    r_rows: Vec<(i64, f64, bool)>,
    s_rows: Vec<(i64, f64)>,
    k: usize,
    batch_size: usize,
    morsel_size: usize,
}

fn workload() -> impl Strategy<Value = Workload> {
    (
        proptest::collection::vec((0..6i64, 0.0..1.0f64, any::<bool>()), 1..30),
        proptest::collection::vec((0..6i64, 0.0..1.0f64), 1..30),
        1..10usize,
        1..512usize,
        1..64usize,
    )
        .prop_map(|(r_rows, s_rows, k, batch_size, morsel_size)| Workload {
            r_rows,
            s_rows,
            k,
            batch_size,
            morsel_size,
        })
}

fn build_database(w: &Workload, backend: StorageBackend) -> (Database, RankQuery) {
    let db = Database::new().with_storage_backend(backend);
    let query = populate(&db, w);
    (db, query)
}

/// Like [`build_database`] but disk-backed: tables and rows go through the
/// WAL protocol into `dir`, and scans fault pages through the buffer pool.
fn build_paged_database(w: &Workload, dir: &std::path::Path) -> (Database, RankQuery) {
    let db = Database::open_paged(dir).unwrap();
    let query = populate(&db, w);
    (db, query)
}

fn populate(db: &Database, w: &Workload) -> RankQuery {
    db.create_table(
        "R",
        Schema::new(vec![
            Field::new("jc", DataType::Int64),
            Field::new("p1", DataType::Float64),
            Field::new("flag", DataType::Bool),
        ]),
    )
    .unwrap();
    db.create_table(
        "S",
        Schema::new(vec![
            Field::new("jc", DataType::Int64),
            Field::new("p2", DataType::Float64),
        ]),
    )
    .unwrap();
    for &(jc, p1, flag) in &w.r_rows {
        db.insert(
            "R",
            vec![Value::from(jc), Value::from(p1), Value::from(flag)],
        )
        .unwrap();
    }
    for &(jc, p2) in &w.s_rows {
        db.insert("S", vec![Value::from(jc), Value::from(p2)])
            .unwrap();
    }
    QueryBuilder::new()
        .tables(["R", "S"])
        .filter(BoolExpr::col_eq_col("R.jc", "S.jc"))
        .filter(BoolExpr::compare(
            ScalarExpr::col("R.p1"),
            CompareOp::GtEq,
            ScalarExpr::lit(0.1),
        ))
        .rank_predicate(RankPredicate::attribute("p1", "R.p1"))
        .rank_predicate(RankPredicate::attribute("p2", "S.p2"))
        .limit(w.k)
        .build()
        .unwrap()
}

/// `(tuple, score)` fingerprint of an ordered result (byte-identical order).
fn fingerprint(result: &ranksql::QueryResult) -> Vec<(ranksql::Tuple, f64)> {
    result
        .rows
        .iter()
        .zip(result.scores())
        .map(|(t, s)| (t.tuple.clone(), s))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 8, .. ProptestConfig::default() })]

    /// Columnar and paged backends ≡ row backend for all five plan modes,
    /// at 1 and 4 worker threads, under random batch and morsel sizes.
    #[test]
    fn columnar_and_paged_equal_row_for_all_plan_modes_and_thread_counts(w in workload()) {
        let (row_db, query) = build_database(&w, StorageBackend::Row);
        let (col_db, _) = build_database(&w, StorageBackend::Columnar);
        let dir = TempDir::new("prop");
        let (paged_db, _) = build_paged_database(&w, dir.path());
        for mode in ALL_MODES {
            for threads in [1usize, 4] {
                let run = |db: &Database| {
                    db.session()
                        .with_mode(mode)
                        .with_threads(threads)
                        .with_batch_size(w.batch_size)
                        .with_morsel_size(w.morsel_size)
                        .execute(&query)
                        .unwrap()
                };
                let row = run(&row_db);
                let col = run(&col_db);
                let paged = run(&paged_db);
                prop_assert_eq!(
                    fingerprint(&col),
                    fingerprint(&row),
                    "mode {:?}, threads {}, batch {}, morsel {}: columnar diverged from row",
                    mode,
                    threads,
                    w.batch_size,
                    w.morsel_size
                );
                prop_assert_eq!(
                    fingerprint(&paged),
                    fingerprint(&row),
                    "mode {:?}, threads {}, batch {}, morsel {}: paged diverged from row",
                    mode,
                    threads,
                    w.batch_size,
                    w.morsel_size
                );
            }
        }
    }
}

/// A single-table database large enough to span many columnar blocks, with
/// a score column whose high values cluster in a few blocks — the shape
/// zone-map score pruning exploits.
fn clustered_db(backend: StorageBackend, rows: i64) -> (Database, RankQuery) {
    let db = Database::new().with_storage_backend(backend);
    db.create_table(
        "T",
        Schema::new(vec![
            Field::new("id", DataType::Int64),
            Field::new("p", DataType::Float64),
        ]),
    )
    .unwrap();
    // Scores fall with the row index: the best scores live in the first
    // block, so once the top-k heap fills there, every later block's zone
    // max is strictly below the threshold.
    db.insert_batch(
        "T",
        (0..rows).map(|i| vec![Value::from(i), Value::from((rows - i) as f64 / rows as f64)]),
    )
    .unwrap();
    let query = QueryBuilder::new()
        .table("T")
        .rank_predicate(RankPredicate::attribute("p", "T.p"))
        .limit(5)
        .build()
        .unwrap();
    (db, query)
}

/// Regression: zone-map score pruning on a selective top-k changes
/// `tuples_scanned` (and only that) — results are byte-identical to the
/// row backend, and whole blocks are demonstrably skipped.
#[test]
fn zone_map_pruning_reduces_tuples_scanned_without_changing_results() {
    const ROWS: i64 = 8192; // 8 columnar blocks
    let (row_db, query) = clustered_db(StorageBackend::Row, ROWS);
    let (col_db, _) = clustered_db(StorageBackend::Columnar, ROWS);

    // Traditional mode plans SortLimit(σ/π(scan)) — the zone-prune spine.
    let run = |db: &Database| {
        db.session()
            .with_mode(PlanMode::Traditional)
            .with_threads(1)
            .execute(&query)
            .unwrap()
    };
    let row = run(&row_db);
    let col = run(&col_db);

    assert_eq!(fingerprint(&col), fingerprint(&row), "results must agree");
    assert_eq!(row.tuples_scanned, ROWS as u64, "row backend scans all");
    assert!(
        col.tuples_scanned < row.tuples_scanned,
        "zone-map pruning must reduce tuples_scanned: columnar {} vs row {}",
        col.tuples_scanned,
        row.tuples_scanned
    );
    assert!(
        col.blocks_pruned > 0,
        "whole blocks must be skipped (got {})",
        col.blocks_pruned
    );
    assert_eq!(row.blocks_pruned, 0, "the row backend has no blocks");

    // The plan advertises the pruning annotation.
    let plan = col_db
        .session()
        .with_mode(PlanMode::Traditional)
        .with_threads(1)
        .plan(&query)
        .unwrap()
        .physical;
    let text = plan.explain(Some(&query.ranking));
    assert!(text.contains("ColumnScan(T)"), "{text}");
    assert!(text.contains("[zone-prune]"), "{text}");
}

/// Zone pruning also composes with the morsel-parallel exchange path: the
/// per-partition top-k heaps share one threshold cell, results stay
/// identical to serial row execution.
#[test]
fn zone_map_pruning_is_safe_under_parallel_execution() {
    const ROWS: i64 = 8192;
    let (row_db, query) = clustered_db(StorageBackend::Row, ROWS);
    let (col_db, _) = clustered_db(StorageBackend::Columnar, ROWS);
    let reference = fingerprint(
        &row_db
            .session()
            .with_mode(PlanMode::Traditional)
            .with_threads(1)
            .execute(&query)
            .unwrap(),
    );
    for threads in [2usize, 4] {
        let col = col_db
            .session()
            .with_mode(PlanMode::Traditional)
            .with_threads(threads)
            .with_morsel_size(512)
            .execute(&query)
            .unwrap();
        assert_eq!(fingerprint(&col), reference, "threads={threads}");
        assert!(
            col.tuples_scanned <= ROWS as u64,
            "threads={threads}: scanned {}",
            col.tuples_scanned
        );
    }
}

/// Regression: `blocks_pruned` counts *distinct* blocks, not prune events.
/// Before the per-(scan, block) dedup bitmap, a block overlapping several
/// morsels was counted once per morsel, so the same query reported more
/// pruning under more parallelism.
#[test]
fn blocks_pruned_is_deduplicated_across_morsels() {
    const ROWS: i64 = 8192; // 8 columnar blocks of 1024 rows
    let (col_db, _) = clustered_db(StorageBackend::Columnar, ROWS);
    // `id < 1000` admits only block 0: blocks 1..=7 fail the zone check.
    let query = QueryBuilder::new()
        .table("T")
        .filter(BoolExpr::compare(
            ScalarExpr::col("T.id"),
            CompareOp::Lt,
            ScalarExpr::lit(1000i64),
        ))
        .rank_predicate(RankPredicate::attribute("p", "T.p"))
        .limit(5)
        .build()
        .unwrap();
    let serial = col_db
        .session()
        .with_mode(PlanMode::Traditional)
        .with_threads(1)
        .execute(&query)
        .unwrap();
    assert_eq!(serial.blocks_pruned, 7, "blocks 1..=7 fail σ id < 1000");
    for threads in [2usize, 4] {
        let parallel = col_db
            .session()
            .with_mode(PlanMode::Traditional)
            .with_threads(threads)
            .with_morsel_size(512) // every block spans two morsels
            .execute(&query)
            .unwrap();
        assert_eq!(
            parallel.blocks_pruned, serial.blocks_pruned,
            "threads={threads}: a block overlapping two 512-row morsels must count once"
        );
    }
}

/// Pushed-down filters: `Filter(SeqScan)` fuses into `ColumnScan[σ ..]` on
/// the columnar backend, zone maps skip blocks the filter cannot match, and
/// results equal the row backend's.
#[test]
fn pushed_filters_fuse_prune_and_agree_with_row_backend() {
    const ROWS: i64 = 8192;
    let (row_db, _) = clustered_db(StorageBackend::Row, ROWS);
    let (col_db, _) = clustered_db(StorageBackend::Columnar, ROWS);
    // `id < 1000` lives entirely in the first columnar block.
    let query = QueryBuilder::new()
        .table("T")
        .filter(BoolExpr::compare(
            ScalarExpr::col("T.id"),
            CompareOp::Lt,
            ScalarExpr::lit(1000i64),
        ))
        .rank_predicate(RankPredicate::attribute("p", "T.p"))
        .limit(5)
        .build()
        .unwrap();
    let run = |db: &Database| {
        db.session()
            .with_mode(PlanMode::Traditional)
            .with_threads(1)
            .execute(&query)
            .unwrap()
    };
    let row = run(&row_db);
    let col = run(&col_db);
    assert_eq!(fingerprint(&col), fingerprint(&row));
    assert!(
        col.tuples_scanned <= 1024,
        "only the first block may be examined, scanned {}",
        col.tuples_scanned
    );
    let text = col.physical.explain(None);
    assert!(text.contains("[σ T.id < 1000]"), "{text}");
}

/// The clustered single-table shape of [`clustered_db`], but disk-backed
/// with an explicit buffer-pool budget.  8192 rows seal into 8 columnar
/// blocks of two 16 KiB pages each (one i64 + one f64 column), so
/// `pool_pages < 16` means the dataset does not fit in memory.
fn clustered_paged_db(dir: &std::path::Path, rows: i64, pool_pages: u64) -> (Database, RankQuery) {
    let db = Database::open_paged_with(dir, PagedOptions { pool_pages }).unwrap();
    db.create_table(
        "T",
        Schema::new(vec![
            Field::new("id", DataType::Int64),
            Field::new("p", DataType::Float64),
        ]),
    )
    .unwrap();
    db.insert_batch(
        "T",
        (0..rows).map(|i| vec![Value::from(i), Value::from((rows - i) as f64 / rows as f64)]),
    )
    .unwrap();
    let query = QueryBuilder::new()
        .table("T")
        .rank_predicate(RankPredicate::attribute("p", "T.p"))
        .limit(5)
        .build()
        .unwrap();
    (db, query)
}

/// The paged backend's pruning contract: with the buffer pool far below
/// dataset size, a zone-pruned block is a page never read — the selective
/// top-k faults a fraction of the pages the unpruned full scan does, while
/// the results stay byte-identical to the row backend.
#[test]
fn zone_pruning_on_the_paged_backend_turns_pruned_blocks_into_unread_pages() {
    const ROWS: i64 = 8192; // 8 sealed blocks = 16 data pages
    let dir = TempDir::new("prune");
    let (paged_db, query) = clustered_paged_db(dir.path(), ROWS, 4);
    let (row_db, _) = clustered_db(StorageBackend::Row, ROWS);

    let run = |db: &Database, q: &RankQuery| {
        db.session()
            .with_mode(PlanMode::Traditional)
            .with_threads(1)
            .execute(q)
            .unwrap()
    };
    let topk = run(&paged_db, &query);
    let row = run(&row_db, &query);
    assert_eq!(fingerprint(&topk), fingerprint(&row), "results must agree");
    assert!(
        topk.pages_pruned > 0,
        "score pruning must skip whole on-disk blocks (pages_pruned = 0)"
    );

    // An unselective query (k > rows: the threshold never rises enough to
    // prune) must fault essentially the whole table through the 4-page
    // pool, dwarfing the selective query's faults.
    let full_query = QueryBuilder::new()
        .table("T")
        .rank_predicate(RankPredicate::attribute("p", "T.p"))
        .limit(ROWS as usize + 1)
        .build()
        .unwrap();
    let full = run(&paged_db, &full_query);
    assert_eq!(full.pages_pruned, 0, "an unselective scan prunes nothing");
    assert!(
        topk.pages_faulted < full.pages_faulted,
        "pruning must reduce pages faulted: top-k {} vs full scan {}",
        topk.pages_faulted,
        full.pages_faulted
    );

    // The I/O counters surface in explain_analyze.
    let text = full.explain_analyze(Some(&query.ranking));
    assert!(text.contains("paged storage: pages_faulted="), "{text}");

    // The row backend touches no pages at all.
    assert_eq!(row.pages_faulted, 0);
    assert_eq!(row.pages_pruned, 0);
}

/// Durability round trip: dropping the database handle and reopening the
/// directory recovers every table to the same rows, and queries return
/// byte-identical results before and after.
#[test]
fn paged_database_reopens_with_identical_results() {
    const ROWS: i64 = 3000; // 2 sealed blocks + a 952-row WAL tail
    let dir = TempDir::new("reopen");
    let before = {
        let (db, query) = clustered_paged_db(dir.path(), ROWS, 64);
        let r = db
            .session()
            .with_mode(PlanMode::Traditional)
            .with_threads(1)
            .execute(&query)
            .unwrap();
        (fingerprint(&r), query)
    };
    // The handle is gone; reopen from disk alone.
    let db = Database::open_paged(dir.path()).unwrap();
    assert_eq!(
        db.catalog().table("T").unwrap().row_count(),
        ROWS as usize,
        "recovery must land on the last durable epoch"
    );
    let after = db
        .session()
        .with_mode(PlanMode::Traditional)
        .with_threads(1)
        .execute(&before.1)
        .unwrap();
    assert_eq!(
        fingerprint(&after),
        before.0,
        "results diverged across reopen"
    );
}

/// Satellite regression: a NaN-scoring row must never change pruning
/// results.  `TopKThreshold::raise` ignores NaN (and the total order sorts
/// NaN last), so the top-k over a table containing a NaN row equals the
/// top-k without it — on every backend, with pruning still active.
#[test]
fn nan_scoring_rows_never_change_pruning_results() {
    const ROWS: i64 = 4096;
    let score = |i: i64| (ROWS - i) as f64 / ROWS as f64;
    let rows_with_nan = (0..ROWS).map(|i| {
        let p = if i == 100 { f64::NAN } else { score(i) };
        vec![Value::from(i), Value::from(p)]
    });
    let schema = || {
        Schema::new(vec![
            Field::new("id", DataType::Int64),
            Field::new("p", DataType::Float64),
        ])
    };
    let query = QueryBuilder::new()
        .table("T")
        .rank_predicate(RankPredicate::attribute("p", "T.p"))
        .limit(5)
        .build()
        .unwrap();
    let run = |db: &Database| {
        db.session()
            .with_mode(PlanMode::Traditional)
            .with_threads(1)
            .execute(&query)
            .unwrap()
    };

    // Reference: the same table *without* the NaN row (it is replaced by a
    // worst-possible score, which can never reach the top 5 either).
    let reference = {
        let db = Database::new();
        db.create_table("T", schema()).unwrap();
        db.insert_batch(
            "T",
            (0..ROWS).map(|i| {
                let p = if i == 100 { 0.0 } else { score(i) };
                vec![Value::from(i), Value::from(p)]
            }),
        )
        .unwrap();
        run(&db).scores()
    };

    let row_db = Database::new();
    row_db.create_table("T", schema()).unwrap();
    row_db.insert_batch("T", rows_with_nan.clone()).unwrap();
    let col_db = Database::new().with_storage_backend(StorageBackend::Columnar);
    col_db.create_table("T", schema()).unwrap();
    col_db.insert_batch("T", rows_with_nan).unwrap();

    let row = run(&row_db);
    let col = run(&col_db);
    assert_eq!(fingerprint(&col), fingerprint(&row), "backends diverged");
    assert_eq!(row.scores(), reference, "the NaN row changed the top-k");
    assert!(
        row.scores().iter().all(|s| !s.is_nan()),
        "a NaN-scoring row leaked into the result"
    );
    // The NaN row lives in sealed block 0 — the block every plan must still
    // read (it holds the true top scores), so pruning of the *other* blocks
    // must stay fully effective.
    assert!(
        col.blocks_pruned > 0,
        "NaN in a zone must not disable pruning (blocks_pruned = 0)"
    );
}

/// Prepared statements key the plan cache per backend: the same shape
/// planned against row and columnar storage must not share an entry.
#[test]
fn plan_cache_keys_separate_backends() {
    let (db, query) = clustered_db(StorageBackend::Row, 64);
    let row_key = db
        .session()
        .prepare_query(query.clone())
        .unwrap()
        .cache_key()
        .to_owned();
    let col_key = db
        .session()
        .with_storage_backend(StorageBackend::Columnar)
        .prepare_query(query.clone())
        .unwrap()
        .cache_key()
        .to_owned();
    let paged_key = db
        .session()
        .with_storage_backend(StorageBackend::Paged)
        .prepare_query(query)
        .unwrap()
        .cache_key()
        .to_owned();
    assert_ne!(row_key, col_key);
    assert_ne!(col_key, paged_key);
    assert!(row_key.contains("backend=row"), "{row_key}");
    assert!(col_key.contains("backend=columnar"), "{col_key}");
    assert!(paged_key.contains("backend=paged"), "{paged_key}");
}
