#!/usr/bin/env python3
"""Compare a BENCH_*.json run against the committed baseline.

Three checks:

1. **Baseline ratios** — every benchmark shared by both documents is
   compared as `current / baseline`.  Ratios outside `1 ± tolerance` print
   a warning (advisory); a ratio above `1 + tolerance` in one of the *hard*
   groups — the scan groups, whose regressions this PR's storage work must
   never reintroduce — fails the script.
2. **Presence** — a hard group that is missing or empty in the current run
   fails the script: a renamed group or a drifted output format must never
   turn the gate green by producing nothing to compare.  The same applies
   to *every* group the baseline records: a baseline group absent from the
   current run is a hard failure with a `::error` annotation (it used to
   vanish silently, because the ratio loop only walks the current run's
   groups).
3. **Within-run ratios** — machine-independent sanity of the perf claims,
   compared inside the *same run* so runner speed cancels out:
   `columnar_vs_row/columnar/scan_filter` must beat
   `columnar_vs_row/row/scan_filter` by at least `--min-columnar-speedup`,
   and the branch-free compare kernel `columnar_vs_row/kernel/select_f64`
   must beat the per-row branchy baseline
   `columnar_vs_row/row/kernel_select_f64` by at least
   `--min-kernel-speedup` (both default 1.15×; the benches demonstrate
   ~2×+, so the floors leave headroom for noisy runners).

CI runners differ from the machine that recorded the baseline, so the
default tolerance is deliberately loose (±25 %, overridable with
`BENCH_GATE_TOLERANCE`) and only sustained scan regressions hard-fail.
Regenerate the baseline with `scripts/bench-json.sh bench/baseline.json`
when a deliberate performance change shifts the numbers.

Usage:
    python3 scripts/bench_compare.py bench/baseline.json BENCH_PR7.json \
        [--tolerance 0.25] [--hard-groups seq_scan_hot_path,columnar_vs_row]
"""

import argparse
import json
import os
import sys

DEFAULT_HARD_GROUPS = [
    "seq_scan_hot_path",
    "columnar_vs_row",
    "ablation_sketch",
    "ablation_write_path",
]


def load_groups(path: str, role: str) -> dict:
    """Loads `{"groups": {group: {bench: ns}}}`, failing loudly on malformed
    input: a truncated upload, an empty file, or a drifted output format must
    turn the gate red, not evaporate into "nothing to compare"."""
    try:
        with open(path) as f:
            doc = json.load(f)
    except OSError as e:
        print(f"::error title=bench gate::cannot read {role} {path}: {e}")
        raise SystemExit(1)
    except json.JSONDecodeError as e:
        print(f"::error title=bench gate::{role} {path} is not valid JSON: {e}")
        raise SystemExit(1)
    if not isinstance(doc, dict) or not isinstance(doc.get("groups"), dict):
        print(
            f"::error title=bench gate::{role} {path} has no `groups` object "
            "(drifted bench-json output format?)"
        )
        raise SystemExit(1)
    groups = doc["groups"]
    if not groups:
        print(f"::error title=bench gate::{role} {path} has an empty `groups` object")
        raise SystemExit(1)
    for group, benches in groups.items():
        if not isinstance(benches, dict) or not all(
            isinstance(ns, (int, float)) and ns > 0 for ns in benches.values()
        ):
            print(
                f"::error title=bench gate::{role} {path}: group `{group}` is not a "
                "map of bench name to positive ns/iter"
            )
            raise SystemExit(1)
    return groups


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("baseline")
    ap.add_argument("current")
    ap.add_argument(
        "--tolerance",
        type=float,
        default=float(os.environ.get("BENCH_GATE_TOLERANCE", "0.25")),
    )
    ap.add_argument("--hard-groups", default=",".join(DEFAULT_HARD_GROUPS))
    ap.add_argument("--min-columnar-speedup", type=float, default=1.15)
    ap.add_argument("--min-kernel-speedup", type=float, default=1.15)
    ap.add_argument("--min-write-path-speedup", type=float, default=10.0)
    args = ap.parse_args()
    hard = {g.strip() for g in args.hard_groups.split(",") if g.strip()}

    baseline = load_groups(args.baseline, "baseline")
    current = load_groups(args.current, "current run")

    failures = []
    warnings = []

    # 2. Presence: hard groups must have measurements in the current run.
    for group in sorted(hard):
        if not current.get(group):
            failures.append(
                f"hard group `{group}` produced no measurements in the current run "
                "(renamed group or drifted bench output format?)"
            )

    # 2b. Coverage: every group the baseline pins must appear in the
    # current run.  A baseline-only group used to slip through silently —
    # the ratio loop below iterates the *current* groups, so a dropped
    # [[bench]] target, a renamed group or a truncated run read as
    # "nothing regressed".  Vanishing from the measurement set is a hard
    # failure, not an advisory.
    for group in sorted(baseline):
        if not current.get(group):
            print(
                "::error title=bench gate::baseline group "
                f"`{group}` produced no measurements in the current run"
            )
            failures.append(
                f"baseline group `{group}` is missing from the current run "
                "(dropped bench target, renamed group, or truncated output?)"
            )

    # 1. Baseline ratios.
    for group, benches in sorted(current.items()):
        base_group = baseline.get(group, {})
        for name, ns in sorted(benches.items()):
            base = base_group.get(name)
            if not base:
                print(f"  new   {group}/{name}: {ns:.0f} ns/iter (no baseline)")
                continue
            ratio = ns / base
            marker = "ok    "
            if ratio > 1 + args.tolerance:
                marker = "SLOWER"
                (failures if group in hard else warnings).append(
                    f"{group}/{name}: {ratio:.2f}x of baseline ({ns:.0f} vs {base:.0f} ns)"
                )
            elif ratio < 1 - args.tolerance:
                marker = "faster"
            print(f"  {marker} {group}/{name}: {ratio:5.2f}x ({ns:.0f} vs {base:.0f} ns)")

    # 3. Within-run speedups (machine-independent).  The bench names are
    # load-bearing: if one disappears (rename, output drift) its check must
    # fail rather than silently evaporate.
    cvr = current.get("columnar_vs_row", {})
    for label, base_name, fast_name, floor in [
        ("columnar/scan_filter", "row/scan_filter", "columnar/scan_filter",
         args.min_columnar_speedup),
        ("kernel/select_f64", "row/kernel_select_f64", "kernel/select_f64",
         args.min_kernel_speedup),
    ]:
        base = cvr.get(base_name)
        fast = cvr.get(fast_name)
        if base and fast:
            speedup = base / fast
            print(f"  within-run {label} speedup: {speedup:.2f}x")
            if speedup < floor:
                failures.append(
                    f"columnar_vs_row within-run {label} speedup {speedup:.2f}x "
                    f"is below the {floor:.2f}x floor"
                )
        elif cvr:
            failures.append(
                f"columnar_vs_row is missing {base_name} or {fast_name} — "
                f"the within-run {label} speedup gate has nothing to compare "
                "(renamed benches?)"
            )

    # The PR-7 write-path claim, also within-run: an epoch-extending warm
    # insert must beat the invalidate-and-rebuild cliff (insert + stats +
    # columnar rebuild) by a wide margin.  The measured gap is three to
    # four orders of magnitude; the 10x default floor only catches the
    # write path collapsing back into a rebuild.
    awp = current.get("ablation_write_path", {})
    if awp:
        warm = awp.get("warm/insert")
        rebuild = awp.get("rebuild/insert")
        if warm and rebuild:
            speedup = rebuild / warm
            print(f"  within-run warm-insert vs rebuild-cliff speedup: {speedup:.1f}x")
            if speedup < args.min_write_path_speedup:
                failures.append(
                    f"ablation_write_path warm/insert is only {speedup:.2f}x faster than "
                    f"rebuild/insert (floor {args.min_write_path_speedup:.2f}x) — the "
                    "epoch write path is paying for a rebuild again"
                )
        else:
            failures.append(
                "ablation_write_path is missing warm/insert or rebuild/insert — "
                "the write-path speedup gate has nothing to compare (renamed benches?)"
            )

    for w in warnings:
        # GitHub Actions annotation; harmless noise elsewhere.
        print(f"::warning title=bench regression (advisory)::{w}")
    if failures:
        for f_ in failures:
            print(f"::error title=scan-group bench regression::{f_}")
        print(
            f"FAIL: {len(failures)} hard failure(s) (tolerance {args.tolerance:.0%})",
            file=sys.stderr,
        )
        return 1
    print(f"OK: no hard regressions ({len(warnings)} advisory warning(s))")
    return 0


if __name__ == "__main__":
    sys.exit(main())
