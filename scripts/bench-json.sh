#!/usr/bin/env bash
# Regenerate a BENCH_*.json summary (and, by extension, bench/baseline.json)
# with one command:
#
#     scripts/bench-json.sh                 # writes BENCH_PR10.json
#     scripts/bench-json.sh bench/baseline.json
#
# Runs the pinned criterion groups of the bench-regression CI job
# (operators_micro: seq_scan_hot_path, batch_vs_tuple, prepared_vs_cold,
# columnar_vs_row incl. the kernel benches; the ablation_sketch
# NDV-accuracy sweep; the ablation_write_path epoch-vs-rebuild write
# benches; the ablation_buffer_pool paged-backend pool-size sweep; and the
# server_throughput wire-vs-in-process front-end benches) and converts the
# concatenated harness output into the stable JSON schema via
# scripts/bench_to_json.py.
set -euo pipefail
cd "$(dirname "$0")/.."

OUT="${1:-BENCH_PR10.json}"

{
    cargo bench -p ranksql-bench --bench operators_micro
    cargo bench -p ranksql-bench --bench ablation_sketch
    cargo bench -p ranksql-bench --bench ablation_write_path
    cargo bench -p ranksql-bench --bench ablation_buffer_pool
    cargo bench -p ranksql-bench --bench server_throughput
} \
    | tee /dev/stderr \
    | python3 scripts/bench_to_json.py --out "$OUT"

echo "wrote $OUT" >&2
