#!/usr/bin/env python3
"""Convert the bench harness's stdout into the stable BENCH_*.json schema.

The vendored criterion shim prints one line per benchmark:

    bench <group>/<name>: <N> ns/iter (<k> iterations)

This script filters those lines down to the pinned benchmark groups and
emits a JSON document:

    {
      "schema_version": 1,
      "groups": {
        "<group>": { "<name>": <ns_per_iter>, ... },
        ...
      }
    }

Usage:
    { cargo bench -p ranksql-bench --bench operators_micro && \
      cargo bench -p ranksql-bench --bench ablation_sketch && \
      cargo bench -p ranksql-bench --bench ablation_write_path; } | \
        python3 scripts/bench_to_json.py --out BENCH_PR7.json

Pass `--groups a,b,c` to override the default pinned groups; pass several
bench outputs by concatenating them on stdin.
"""

import argparse
import json
import re
import sys

# The groups the CI regression gate tracks (keep in sync with
# .github/workflows/ci.yml and bench/baseline.json).
DEFAULT_GROUPS = [
    "seq_scan_hot_path",
    "batch_vs_tuple",
    "prepared_vs_cold",
    "columnar_vs_row",
    "ablation_sketch",
    "ablation_write_path",
    "ablation_buffer_pool",
    "server_throughput",
]

LINE = re.compile(
    r"^bench\s+(?P<group>[A-Za-z0-9_]+)/(?P<name>\S+):\s+"
    r"(?P<ns>[0-9.]+)\s+ns/iter\s+\((?P<iters>\d+)\s+iterations\)"
)


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--out", default="-", help="output file (default stdout)")
    ap.add_argument(
        "--groups",
        default=",".join(DEFAULT_GROUPS),
        help="comma-separated benchmark groups to keep",
    )
    args = ap.parse_args()
    keep = {g.strip() for g in args.groups.split(",") if g.strip()}

    groups: dict = {}
    for line in sys.stdin:
        m = LINE.match(line.strip())
        if not m or m.group("group") not in keep:
            continue
        groups.setdefault(m.group("group"), {})[m.group("name")] = float(m.group("ns"))

    doc = {"schema_version": 1, "groups": groups}
    text = json.dumps(doc, indent=2, sort_keys=True) + "\n"
    if args.out == "-":
        sys.stdout.write(text)
    else:
        with open(args.out, "w") as f:
            f.write(text)
    missing = keep - groups.keys()
    if missing:
        print(f"warning: no measurements for groups: {sorted(missing)}", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
