//! RankSQL — rank-aware relational query processing in Rust.
//!
//! This is the umbrella crate of the workspace: it re-exports the public API
//! of every component ([`core`], [`algebra`], [`executor`], [`optimizer`],
//! [`storage`], [`expr`], [`common`], [`workload`], [`server`]) so
//! applications can
//! depend on a single crate.  The crate front page below is the repository
//! README, included verbatim so its quickstart snippet is compiled and run
//! as a doctest; see `ARCHITECTURE.md` in the repository for the crate DAG
//! and execution model, and the `examples/` directory for runnable
//! end-to-end programs.
#![doc = include_str!("../README.md")]
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use ranksql_algebra as algebra;
pub use ranksql_common as common;
pub use ranksql_core as core;
pub use ranksql_executor as executor;
pub use ranksql_expr as expr;
pub use ranksql_optimizer as optimizer;
pub use ranksql_server as server;
pub use ranksql_storage as storage;
pub use ranksql_verify as verify;
pub use ranksql_workload as workload;

pub use ranksql_common::{DataType, Field, RankSqlError, Result, Schema, Score, Tuple, Value};
pub use ranksql_core::{
    parse_topk_query, BoolExpr, BoundQuery, CompareOp, Cursor, CursorRows, Database, JoinAlgorithm,
    LogicalPlan, OptimizerConfig, OptimizerMode, Params, ParseError, PlanCacheLookup,
    PlanCacheStats, PlanMode, PreparedQuery, QueryBuilder, QueryResult, RankPredicate, RankQuery,
    RankingContext, ScalarExpr, ScoringFunction, Session, SessionSettings,
};
pub use ranksql_optimizer::{OptimizedPlan, RankOptimizer};
pub use ranksql_storage::{PagedOptions, PagedStore, StorageBackend};
pub use ranksql_verify::{validate_logical, validate_physical, Diagnostic, Rule, Severity};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn umbrella_reexports_compose() {
        let db = Database::new();
        db.create_table(
            "T",
            Schema::new(vec![
                Field::new("x", DataType::Int64),
                Field::new("p", DataType::Float64),
            ]),
        )
        .unwrap();
        db.insert("T", vec![Value::from(1), Value::from(0.4)])
            .unwrap();
        db.insert("T", vec![Value::from(2), Value::from(0.8)])
            .unwrap();
        let q = parse_topk_query("SELECT * FROM T ORDER BY T.p LIMIT 1").unwrap();
        let r = db.execute_with_mode(&q, PlanMode::Canonical).unwrap();
        assert_eq!(r.rows[0].tuple.value(0), &Value::from(2));
    }
}
