//! RankSQL — rank-aware relational query processing in Rust.
//!
//! This is the umbrella crate of the workspace: it re-exports the public API
//! of every component so applications can depend on a single crate.  See the
//! [README](https://github.com/ranksql/ranksql-rs) and `DESIGN.md` for the
//! architecture, and the `examples/` directory for runnable end-to-end
//! programs.
//!
//! * [`core`](ranksql_core) — the [`Database`] facade, [`QueryBuilder`] and
//!   the SQL-ish top-k parser.
//! * [`algebra`](ranksql_algebra) — the rank-relational algebra: logical
//!   plans and the algebraic laws of Figure 5.
//! * [`executor`](ranksql_executor) — pipelined rank-aware physical
//!   operators (µ, rank-scan, HRJN/NRJN, rank-aware set operations).
//! * [`optimizer`](ranksql_optimizer) — two-dimensional plan enumeration and
//!   sampling-based cardinality estimation.
//! * [`storage`](ranksql_storage) — the in-memory tables, indexes and
//!   statistics the engine runs on.
//! * [`workload`](ranksql_workload) — generators for the paper's datasets.

#![warn(missing_docs)]

pub use ranksql_algebra as algebra;
pub use ranksql_common as common;
pub use ranksql_core as core;
pub use ranksql_executor as executor;
pub use ranksql_expr as expr;
pub use ranksql_optimizer as optimizer;
pub use ranksql_storage as storage;
pub use ranksql_workload as workload;

pub use ranksql_common::{DataType, Field, RankSqlError, Result, Schema, Score, Tuple, Value};
pub use ranksql_core::{
    parse_topk_query, BoolExpr, CompareOp, Database, JoinAlgorithm, LogicalPlan, OptimizerConfig,
    OptimizerMode, PlanMode, QueryBuilder, QueryResult, RankPredicate, RankQuery, RankingContext,
    ScalarExpr, ScoringFunction,
};
pub use ranksql_optimizer::{OptimizedPlan, RankOptimizer};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn umbrella_reexports_compose() {
        let db = Database::new();
        db.create_table(
            "T",
            Schema::new(vec![
                Field::new("x", DataType::Int64),
                Field::new("p", DataType::Float64),
            ]),
        )
        .unwrap();
        db.insert("T", vec![Value::from(1), Value::from(0.4)])
            .unwrap();
        db.insert("T", vec![Value::from(2), Value::from(0.8)])
            .unwrap();
        let q = parse_topk_query("SELECT * FROM T ORDER BY T.p LIMIT 1").unwrap();
        let r = db.execute_with_mode(&q, PlanMode::Canonical).unwrap();
        assert_eq!(r.rows[0].tuple.value(0), &Value::from(2));
    }
}
